//! # deco-runtime — one engine handle for the whole executor zoo
//!
//! Every executor in this workspace is observationally identical — the
//! serial reference runner, the barrier engine, the barrier-free async
//! engine, and the sharded engine all promise the same outputs, rounds,
//! messages, and errors for every protocol. What differed until now was
//! the *API*: each algorithm shipped a `foo` + `foo_with<E: Executor>`
//! pair, and picking an engine meant naming a concrete executor type at
//! every call site. This crate collapses that zoo behind one value:
//!
//! * [`Engine`] — an enum over the concrete executors, itself an
//!   [`Executor`] by static dispatch per arm. Adding a backend is one new
//!   arm, not another `_with` fan-out across the API surface.
//! * [`Runtime`] — the handle algorithms take (`fn(..., rt: &Runtime)`):
//!   an [`Engine`] plus cross-cutting run policy (the round budget for
//!   open-ended protocols).
//! * [`RuntimeBuilder`] — explicit settings (threads / mode / shards /
//!   transport / max-rounds) layered over the `DECO_ENGINE_*` environment:
//!   builder settings always win, unset ones fall back to the environment
//!   ([`RuntimeBuilder::from_env`] delegates to the pure parsers in
//!   [`deco_engine::config`]), and a clean slate selects the serial
//!   reference executor.
//!
//! ```
//! use deco_runtime::{Engine, Runtime};
//!
//! // Explicit: two barrier worker threads, async substrate off.
//! let rt = Runtime::builder().threads(2).build();
//! assert_eq!(rt.descriptor(), "barrier(threads=2)");
//!
//! // A clean builder (and a clean environment) is the serial reference.
//! assert!(matches!(Runtime::builder().build().engine(), Engine::Serial(_)));
//! ```
//!
//! The facade is pure selection — it never changes what runs. The
//! differential suites hold every [`Engine`] arm to bit-identical
//! observables, so swapping arms (or letting the environment pick) is
//! always safe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use deco_engine::config::{
    self, parse_mode, parse_shards, parse_threads, parse_trace, parse_transport,
    DescriptorParseError, EngineEnvError, EngineSelection, ShardTransportKind,
};
use deco_engine::{EngineMode, ParallelExecutor, ShardedExecutor};
use deco_local::network::Network;
use deco_local::runner::{NodeProgram, Protocol, RunError, RunOutcome};
use deco_local::{Executor, SerialExecutor};

/// Default round budget for open-ended protocols run through a [`Runtime`]
/// (fixed-schedule protocols compute their own). Far above any plausible
/// run — randomized baselines halt in `O(log n)` expected rounds — while
/// still turning a diverging protocol into a structured
/// [`RunError::RoundLimitExceeded`] instead of a hang.
pub const DEFAULT_MAX_ROUNDS: u64 = 1 << 20;

/// One value that is whichever executor the caller (or the environment)
/// picked. Implements [`Executor`] by static dispatch per arm — no
/// generics, no trait objects, no `_with` variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The serial reference executor — always available, always correct,
    /// and the oracle every other arm is differentially tested against.
    Serial(SerialExecutor),
    /// The in-process parallel engine; its [`EngineMode`] selects the
    /// barrier substrate or the barrier-free async substrate.
    Parallel(ParallelExecutor),
    /// The sharded engine: the network partitioned over shard workers
    /// coupled only by the per-round cut exchange.
    Sharded(ShardedExecutor),
}

impl Engine {
    /// The serial reference engine.
    pub fn serial() -> Engine {
        Engine::Serial(SerialExecutor)
    }

    /// The engine the `DECO_ENGINE_*` variables select: serial when none
    /// of them is set, otherwise the configured parallel or sharded
    /// engine. See [`RuntimeBuilder::from_env`] for the exact layering.
    ///
    /// # Errors
    ///
    /// Propagates the [`EngineEnvError`] naming the malformed variable and
    /// its offending value.
    pub fn from_env() -> Result<Engine, EngineEnvError> {
        Ok(Runtime::from_env()?.into_engine())
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::serial()
    }
}

impl From<SerialExecutor> for Engine {
    fn from(e: SerialExecutor) -> Engine {
        Engine::Serial(e)
    }
}

impl From<ParallelExecutor> for Engine {
    fn from(e: ParallelExecutor) -> Engine {
        Engine::Parallel(e)
    }
}

impl From<ShardedExecutor> for Engine {
    fn from(e: ShardedExecutor) -> Engine {
        Engine::Sharded(e)
    }
}

impl From<EngineSelection> for Engine {
    fn from(sel: EngineSelection) -> Engine {
        match sel {
            EngineSelection::Parallel(e) => Engine::Parallel(e),
            EngineSelection::Sharded(e) => Engine::Sharded(e),
        }
    }
}

/// The stable one-line descriptor: `serial`, or the
/// [`EngineSelection`] descriptor of the parallel / sharded arm
/// (`barrier(threads=2)`, `async(threads=auto)`,
/// `sharded(shards=4,threads=2,transport=process)`).
impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Serial(_) => f.write_str("serial"),
            Engine::Parallel(e) => EngineSelection::Parallel(*e).fmt(f),
            Engine::Sharded(e) => EngineSelection::Sharded(*e).fmt(f),
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = DescriptorParseError;

    fn from_str(s: &str) -> Result<Engine, DescriptorParseError> {
        if s == "serial" {
            return Ok(Engine::serial());
        }
        s.parse::<EngineSelection>().map(Engine::from)
    }
}

impl Executor for Engine {
    fn execute<P>(
        &self,
        net: &Network<'_>,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<RunOutcome<<P::Program as NodeProgram>::Output>, RunError>
    where
        P: Protocol,
        P::Program: Send,
        <P::Program as NodeProgram>::Msg: Send + Sync,
        <P::Program as NodeProgram>::Output: Send,
    {
        match self {
            Engine::Serial(e) => e.execute(net, protocol, max_rounds),
            Engine::Parallel(e) => e.execute(net, protocol, max_rounds),
            Engine::Sharded(e) => e.execute(net, protocol, max_rounds),
        }
    }

    fn execute_branches<T, F>(&self, weights: &[usize], run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self {
            Engine::Serial(e) => e.execute_branches(weights, run),
            Engine::Parallel(e) => e.execute_branches(weights, run),
            Engine::Sharded(e) => e.execute_branches(weights, run),
        }
    }
}

/// The handle every algorithm and pipeline entry point takes: an
/// [`Engine`] plus cross-cutting run policy. Plain `Copy` data — share it,
/// store it, pass it by reference; it holds no threads or other resources
/// (workers are scoped to each execution).
///
/// A `Runtime` is itself an [`Executor`], so code written against the
/// executor contract accepts one directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runtime {
    engine: Engine,
    max_rounds: u64,
    shard_timeout_ms: u64,
}

impl Runtime {
    /// A runtime on the serial reference executor with default policy.
    pub fn serial() -> Runtime {
        Runtime::new(Engine::serial())
    }

    /// A runtime on `engine` with default policy.
    pub fn new(engine: Engine) -> Runtime {
        Runtime {
            engine,
            max_rounds: DEFAULT_MAX_ROUNDS,
            shard_timeout_ms: config::DEFAULT_SHARD_TIMEOUT_MS,
        }
    }

    /// A fresh [`RuntimeBuilder`] with nothing set.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// The runtime the `DECO_ENGINE_*` / `DECO_SHARD_TRANSPORT` variables
    /// select — shorthand for `Runtime::builder().from_env()?.build()`. On
    /// a clean environment (none of the variables set) this is the serial
    /// default.
    ///
    /// # Errors
    ///
    /// The [`EngineEnvError`] of the first malformed variable, carrying
    /// the variable name and the offending value verbatim — report it and
    /// bail rather than running on an engine the caller did not pin.
    pub fn from_env() -> Result<Runtime, EngineEnvError> {
        Ok(Runtime::builder().from_env()?.build())
    }

    /// The engine this runtime executes on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Consumes the runtime, returning its engine.
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// The round budget for open-ended protocols run through this runtime
    /// (randomized baselines and other protocols without a fixed
    /// schedule). Exceeding it is [`RunError::RoundLimitExceeded`].
    pub fn max_rounds(&self) -> u64 {
        self.max_rounds
    }

    /// The per-frame receive deadline, in milliseconds, that framed shard
    /// runs made through this runtime enforce on every worker response
    /// (`0` disables the deadline). Layered like every other knob:
    /// [`RuntimeBuilder::shard_timeout_ms`] wins, else
    /// `DECO_SHARD_TIMEOUT_MS`, else 5000. The typed in-process executor
    /// path never blocks on a pipe, so the budget only matters to framed
    /// transports.
    pub fn shard_timeout_ms(&self) -> u64 {
        self.shard_timeout_ms
    }

    /// The [`FramedPolicy`](deco_engine::shard::framed::FramedPolicy) this
    /// runtime hands to framed shard coordinators: default retry budget,
    /// deadline from [`Runtime::shard_timeout_ms`].
    pub fn framed_policy(&self) -> deco_engine::shard::framed::FramedPolicy {
        deco_engine::shard::framed::FramedPolicy::default().with_timeout_ms(self.shard_timeout_ms)
    }

    /// The stable one-line engine descriptor (see the [`Engine`]
    /// `Display`): embed it in reports and table headers so measurements
    /// stay attributable to the engine that produced them.
    pub fn descriptor(&self) -> String {
        self.engine.to_string()
    }
}

impl Default for Runtime {
    fn default() -> Runtime {
        Runtime::serial()
    }
}

impl From<Engine> for Runtime {
    fn from(engine: Engine) -> Runtime {
        Runtime::new(engine)
    }
}

impl From<SerialExecutor> for Runtime {
    fn from(e: SerialExecutor) -> Runtime {
        Runtime::new(e.into())
    }
}

impl From<ParallelExecutor> for Runtime {
    fn from(e: ParallelExecutor) -> Runtime {
        Runtime::new(e.into())
    }
}

impl From<ShardedExecutor> for Runtime {
    fn from(e: ShardedExecutor) -> Runtime {
        Runtime::new(e.into())
    }
}

impl From<EngineSelection> for Runtime {
    fn from(sel: EngineSelection) -> Runtime {
        Runtime::new(sel.into())
    }
}

impl Executor for Runtime {
    fn execute<P>(
        &self,
        net: &Network<'_>,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<RunOutcome<<P::Program as NodeProgram>::Output>, RunError>
    where
        P: Protocol,
        P::Program: Send,
        <P::Program as NodeProgram>::Msg: Send + Sync,
        <P::Program as NodeProgram>::Output: Send,
    {
        self.engine.execute(net, protocol, max_rounds)
    }

    fn execute_branches<T, F>(&self, weights: &[usize], run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.engine.execute_branches(weights, run)
    }
}

/// Builds a [`Runtime`] from explicit settings layered over the
/// environment. Each knob is independently tri-state: set by the builder
/// (always wins), set by its environment variable (used when the builder
/// left it unset and [`RuntimeBuilder::from_env`] ran), or absent. Engine
/// selection follows the settings that are present:
///
/// * `shards > 0` → the sharded engine (`threads` = threads per shard,
///   `transport` = cross-shard transport preference; `mode` is ignored —
///   the cut exchange is clock-driven by design);
/// * otherwise, any of `threads` / `mode` present → the in-process
///   parallel engine (`threads` 0 or unset = hardware auto);
/// * nothing present → the serial reference executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeBuilder {
    threads: Option<usize>,
    mode: Option<EngineMode>,
    shards: Option<usize>,
    transport: Option<ShardTransportKind>,
    max_rounds: Option<u64>,
    shard_timeout_ms: Option<u64>,
    trace: Option<deco_trace::TraceMode>,
}

impl RuntimeBuilder {
    /// Requests a worker thread count (0 = hardware auto). Selects the
    /// parallel engine unless sharding is also requested, in which case
    /// this is the thread count *per shard*.
    pub fn threads(mut self, threads: usize) -> RuntimeBuilder {
        self.threads = Some(threads);
        self
    }

    /// Selects the round substrate of the parallel engine (barrier or
    /// async). Ignored when sharding.
    pub fn mode(mut self, mode: EngineMode) -> RuntimeBuilder {
        self.mode = Some(mode);
        self
    }

    /// Requests sharded execution over `shards` shards (0 = unsharded).
    pub fn shards(mut self, shards: usize) -> RuntimeBuilder {
        self.shards = Some(shards);
        self
    }

    /// Sets the cross-shard transport preference recorded on the sharded
    /// engine (consumed by framed entry points and descriptors; the
    /// general executor path always runs the typed in-process substrate).
    pub fn transport(mut self, transport: ShardTransportKind) -> RuntimeBuilder {
        self.transport = Some(transport);
        self
    }

    /// Sets the round budget for open-ended protocols
    /// ([`Runtime::max_rounds`]).
    pub fn max_rounds(mut self, max_rounds: u64) -> RuntimeBuilder {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Sets the per-frame receive deadline for framed shard runs, in
    /// milliseconds (`0` = no deadline; see [`Runtime::shard_timeout_ms`]).
    pub fn shard_timeout_ms(mut self, ms: u64) -> RuntimeBuilder {
        self.shard_timeout_ms = Some(ms);
        self
    }

    /// Selects the trace sink [`build`](RuntimeBuilder::build) installs
    /// process-globally: [`deco_trace::TraceMode::Off`] (the default — the
    /// zero-cost path), `Ring`, or `Jsonl` (path from `DECO_TRACE_PATH`,
    /// default `trace.jsonl`). Unset builders fall back to the `DECO_TRACE`
    /// environment variable via [`RuntimeBuilder::from_env`].
    pub fn trace(mut self, mode: deco_trace::TraceMode) -> RuntimeBuilder {
        self.trace = Some(mode);
        self
    }

    /// Fills every knob the builder has *not* set from its environment
    /// variable, parsing with the pure parsers of [`deco_engine::config`]:
    /// `DECO_ENGINE_THREADS`, `DECO_ENGINE_ASYNC`, `DECO_ENGINE_SHARDS`,
    /// `DECO_SHARD_TRANSPORT`, `DECO_SHARD_TIMEOUT_MS`, `DECO_TRACE`.
    /// Explicit builder settings take precedence variable by variable —
    /// `.threads(4).from_env()` honors `DECO_ENGINE_SHARDS` while ignoring
    /// `DECO_ENGINE_THREADS`.
    ///
    /// # Errors
    ///
    /// The [`EngineEnvError`] of the first malformed *consulted* variable
    /// (a variable overridden by the builder is never read, so it cannot
    /// fail the build).
    pub fn from_env(mut self) -> Result<RuntimeBuilder, EngineEnvError> {
        fn fill<T>(
            slot: &mut Option<T>,
            var: &'static str,
            parse: impl Fn(&str) -> Result<T, EngineEnvError>,
        ) -> Result<(), EngineEnvError> {
            if slot.is_none() {
                if let Some(raw) = std::env::var_os(var) {
                    *slot = Some(parse(&raw.to_string_lossy())?);
                }
            }
            Ok(())
        }
        fill(&mut self.threads, config::ENV_THREADS, parse_threads)?;
        fill(&mut self.mode, config::ENV_ASYNC, parse_mode)?;
        fill(&mut self.shards, config::ENV_SHARDS, parse_shards)?;
        fill(&mut self.transport, config::ENV_TRANSPORT, parse_transport)?;
        // The timeout parser is tri-state itself (empty = default), so it
        // does not fit the plain `fill` shape: an empty variable leaves
        // the knob unset and the build falls back to the default budget.
        if self.shard_timeout_ms.is_none() {
            if let Some(raw) = std::env::var_os(config::ENV_SHARD_TIMEOUT) {
                self.shard_timeout_ms = config::parse_timeout_ms(&raw.to_string_lossy())?;
            }
        }
        fill(&mut self.trace, config::ENV_TRACE, parse_trace)?;
        Ok(self)
    }

    /// Builds the runtime (see the type-level docs for the selection
    /// rules).
    pub fn build(self) -> Runtime {
        // The only selection logic the builder adds over EngineConfig is
        // the serial default: with no engine knob present at all, the
        // reference executor wins. Everything engine-shaped delegates to
        // deco-engine's own EngineConfig::selection, so there is exactly
        // one place that turns (threads, mode, shards, transport) into a
        // concrete executor.
        let engine =
            if self.threads.is_none() && self.mode.is_none() && self.shards.unwrap_or(0) == 0 {
                Engine::serial()
            } else {
                config::EngineConfig {
                    threads: self.threads.unwrap_or(0),
                    mode: self.mode.unwrap_or_default(),
                    shards: self.shards.unwrap_or(0),
                    transport: self.transport.unwrap_or_default(),
                }
                .selection()
                .into()
            };
        // Tracing is a process-global sink, not per-runtime state (the
        // Runtime stays Copy). Only an *explicit* selection touches the
        // global — a builder with no trace knob leaves whatever sink a
        // caller installed directly via deco_trace::install in place.
        if let Some(mode) = self.trace {
            if let Err(err) = deco_trace::install(deco_trace::TraceConfig::from_mode(mode)) {
                eprintln!("warning: could not install {mode} trace sink: {err}");
            }
        }
        Runtime {
            engine,
            max_rounds: self.max_rounds.unwrap_or(DEFAULT_MAX_ROUNDS),
            shard_timeout_ms: self
                .shard_timeout_ms
                .unwrap_or(config::DEFAULT_SHARD_TIMEOUT_MS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_is_the_serial_default() {
        let rt = Runtime::builder().build();
        assert_eq!(rt, Runtime::serial());
        assert_eq!(rt.descriptor(), "serial");
        assert_eq!(rt.max_rounds(), DEFAULT_MAX_ROUNDS);
    }

    #[test]
    fn builder_selects_engines_from_present_knobs() {
        assert_eq!(
            *Runtime::builder().threads(3).build().engine(),
            Engine::Parallel(ParallelExecutor::with_threads(3))
        );
        // threads=0 is an explicit request for the parallel auto engine,
        // not the serial default.
        assert_eq!(
            *Runtime::builder().threads(0).build().engine(),
            Engine::Parallel(ParallelExecutor::auto())
        );
        assert_eq!(
            *Runtime::builder().mode(EngineMode::Async).build().engine(),
            Engine::Parallel(ParallelExecutor::auto().with_mode(EngineMode::Async))
        );
        assert_eq!(
            *Runtime::builder()
                .shards(4)
                .threads(2)
                .transport(ShardTransportKind::Process)
                .build()
                .engine(),
            Engine::Sharded(
                ShardedExecutor::new(4)
                    .with_threads_per_shard(2)
                    .with_transport(ShardTransportKind::Process)
            )
        );
        // shards=0 explicitly means "not sharded"; with nothing else set
        // that is the serial default.
        assert_eq!(
            *Runtime::builder().shards(0).build().engine(),
            Engine::serial()
        );
    }

    #[test]
    fn shard_timeout_knob_defaults_and_overrides() {
        assert_eq!(
            Runtime::builder().build().shard_timeout_ms(),
            config::DEFAULT_SHARD_TIMEOUT_MS
        );
        let rt = Runtime::builder().shard_timeout_ms(250).build();
        assert_eq!(rt.shard_timeout_ms(), 250);
        assert_eq!(rt.framed_policy().timeout_ms, 250);
        // 0 = explicit "no deadline", distinct from unset.
        assert_eq!(
            Runtime::builder()
                .shard_timeout_ms(0)
                .build()
                .shard_timeout_ms(),
            0
        );
        // The knob never selects an engine.
        assert_eq!(
            Runtime::builder()
                .shard_timeout_ms(250)
                .build()
                .descriptor(),
            "serial"
        );
    }

    #[test]
    fn builder_installs_and_uninstalls_the_trace_sink() {
        // Process-global: this test owns the sink for its duration (the
        // other tests in this file never set a trace knob, so they don't
        // touch it).
        assert!(!deco_trace::enabled());
        let rt = Runtime::builder()
            .trace(deco_trace::TraceMode::Ring)
            .build();
        assert!(deco_trace::enabled());
        assert_eq!(rt.descriptor(), "serial"); // trace knob never selects an engine
        let _ = Runtime::builder().build();
        assert!(
            deco_trace::enabled(),
            "trace-less builder leaves the sink alone"
        );
        let _ = Runtime::builder().trace(deco_trace::TraceMode::Off).build();
        assert!(!deco_trace::enabled());
    }

    #[test]
    fn engine_descriptors_round_trip_including_serial() {
        let engines = [
            Engine::serial(),
            Engine::Parallel(ParallelExecutor::with_threads(2)),
            Engine::Parallel(ParallelExecutor::auto().with_mode(EngineMode::Async)),
            Engine::Sharded(
                ShardedExecutor::new(4)
                    .with_threads_per_shard(2)
                    .with_transport(ShardTransportKind::Process),
            ),
        ];
        for engine in engines {
            let descriptor = engine.to_string();
            let parsed: Engine = descriptor.parse().expect("descriptor parses");
            assert_eq!(parsed, engine, "{descriptor} must round-trip");
        }
        assert!("turbo(threads=2)".parse::<Engine>().is_err());
    }

    #[test]
    fn runtime_from_concrete_executors() {
        assert_eq!(Runtime::from(SerialExecutor), Runtime::serial());
        assert_eq!(
            *Runtime::from(ParallelExecutor::with_threads(2)).engine(),
            Engine::Parallel(ParallelExecutor::with_threads(2))
        );
        assert_eq!(
            *Runtime::from(ShardedExecutor::new(2)).engine(),
            Engine::Sharded(ShardedExecutor::new(2))
        );
        assert_eq!(
            Engine::from(EngineSelection::Parallel(ParallelExecutor::auto())),
            Engine::Parallel(ParallelExecutor::auto())
        );
    }

    #[test]
    fn runtime_executes_on_every_arm() {
        use deco_engine::protocols::FloodMax;
        use deco_graph::generators;
        use deco_local::network::IdAssignment;

        let g = generators::cycle(24);
        let net = Network::new(&g, IdAssignment::Shuffled(3));
        let oracle = SerialExecutor
            .execute(&net, &FloodMax { radius: 3 }, 20)
            .unwrap();
        for rt in [
            Runtime::serial(),
            Runtime::from(ParallelExecutor::with_threads(2)),
            Runtime::from(ParallelExecutor::with_threads(2).with_mode(EngineMode::Async)),
            Runtime::from(ShardedExecutor::new(2)),
        ] {
            let out = rt.execute(&net, &FloodMax { radius: 3 }, 20).unwrap();
            assert_eq!(out.outputs, oracle.outputs, "{}", rt.descriptor());
            assert_eq!(out.rounds, oracle.rounds, "{}", rt.descriptor());
            assert_eq!(out.messages, oracle.messages, "{}", rt.descriptor());
            assert_eq!(rt.execute_branches(&[1, 1, 1], |i| i * 2), vec![0, 2, 4]);
        }
    }
}
