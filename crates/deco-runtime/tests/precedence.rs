//! Builder-vs-environment precedence: explicit [`RuntimeBuilder`] settings
//! must override each `DECO_ENGINE_*` / `DECO_SHARD_TRANSPORT` variable
//! *individually*, and a clean environment must select the serial default.
//!
//! Environment variables are process-global, and the test harness runs
//! tests on concurrent threads, so every test that touches the engine
//! variables goes through [`with_env`], which serializes on one mutex and
//! restores the prior environment on exit — including variables the CI
//! matrix itself pins (these tests must pass identically on every CI leg).

use deco_engine::config::{
    DEFAULT_SHARD_TIMEOUT_MS, ENV_ASYNC, ENV_SHARDS, ENV_SHARD_TIMEOUT, ENV_THREADS, ENV_TRANSPORT,
};
use deco_engine::{EngineMode, ParallelExecutor, ShardTransportKind, ShardedExecutor};
use deco_runtime::{Engine, Runtime, DEFAULT_MAX_ROUNDS};
use std::sync::{Mutex, MutexGuard};

static ENV_LOCK: Mutex<()> = Mutex::new(());

const VARS: [&str; 5] = [
    ENV_THREADS,
    ENV_ASYNC,
    ENV_SHARDS,
    ENV_TRANSPORT,
    ENV_SHARD_TIMEOUT,
];

/// Runs `body` with the engine environment set to exactly `vars` (every
/// other engine variable removed), restoring the prior environment after.
fn with_env<T>(vars: &[(&str, &str)], body: impl FnOnce() -> T) -> T {
    let guard: MutexGuard<'_, ()> = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let saved: Vec<(&str, Option<std::ffi::OsString>)> =
        VARS.iter().map(|&v| (v, std::env::var_os(v))).collect();
    for &v in &VARS {
        std::env::remove_var(v);
    }
    for &(k, val) in vars {
        std::env::set_var(k, val);
    }
    let out = body();
    for (v, val) in saved {
        match val {
            Some(val) => std::env::set_var(v, val),
            None => std::env::remove_var(v),
        }
    }
    drop(guard);
    out
}

#[test]
fn clean_env_selects_the_serial_default() {
    let rt = with_env(&[], || Runtime::from_env().expect("clean env parses"));
    assert_eq!(rt, Runtime::serial());
    assert_eq!(rt.descriptor(), "serial");
    assert_eq!(rt.max_rounds(), DEFAULT_MAX_ROUNDS);
}

#[test]
fn env_alone_selects_each_engine() {
    let rt = with_env(&[(ENV_THREADS, "2")], || Runtime::from_env().unwrap());
    assert_eq!(
        *rt.engine(),
        Engine::Parallel(ParallelExecutor::with_threads(2))
    );
    // An explicitly empty / zero variable still opts into the parallel
    // engine at the hardware-auto width.
    let rt = with_env(&[(ENV_THREADS, "0")], || Runtime::from_env().unwrap());
    assert_eq!(*rt.engine(), Engine::Parallel(ParallelExecutor::auto()));
    let rt = with_env(&[(ENV_ASYNC, "1")], || Runtime::from_env().unwrap());
    assert_eq!(
        *rt.engine(),
        Engine::Parallel(ParallelExecutor::auto().with_mode(EngineMode::Async))
    );
    let rt = with_env(
        &[
            (ENV_SHARDS, "3"),
            (ENV_THREADS, "2"),
            (ENV_TRANSPORT, "process"),
        ],
        || Runtime::from_env().unwrap(),
    );
    assert_eq!(
        *rt.engine(),
        Engine::Sharded(
            ShardedExecutor::new(3)
                .with_threads_per_shard(2)
                .with_transport(ShardTransportKind::Process)
        )
    );
}

#[test]
fn builder_threads_overrides_env_threads() {
    let rt = with_env(&[(ENV_THREADS, "2")], || {
        Runtime::builder()
            .threads(4)
            .from_env()
            .expect("env parses")
            .build()
    });
    assert_eq!(
        *rt.engine(),
        Engine::Parallel(ParallelExecutor::with_threads(4))
    );
}

#[test]
fn builder_mode_overrides_env_async() {
    let rt = with_env(&[(ENV_ASYNC, "1")], || {
        Runtime::builder()
            .mode(EngineMode::Barrier)
            .from_env()
            .expect("env parses")
            .build()
    });
    assert_eq!(*rt.engine(), Engine::Parallel(ParallelExecutor::auto()));
}

#[test]
fn builder_shards_overrides_env_shards() {
    // Builder says unsharded; the environment says 4 shards. Builder wins
    // on that knob while the environment still supplies the thread width.
    let rt = with_env(&[(ENV_SHARDS, "4"), (ENV_THREADS, "2")], || {
        Runtime::builder()
            .shards(0)
            .from_env()
            .expect("env parses")
            .build()
    });
    assert_eq!(
        *rt.engine(),
        Engine::Parallel(ParallelExecutor::with_threads(2))
    );
    // And the reverse: builder shards over an unsharded environment.
    let rt = with_env(&[(ENV_THREADS, "2")], || {
        Runtime::builder()
            .shards(3)
            .from_env()
            .expect("env parses")
            .build()
    });
    assert_eq!(
        *rt.engine(),
        Engine::Sharded(ShardedExecutor::new(3).with_threads_per_shard(2))
    );
}

#[test]
fn builder_transport_overrides_env_transport() {
    let rt = with_env(&[(ENV_SHARDS, "2"), (ENV_TRANSPORT, "process")], || {
        Runtime::builder()
            .transport(ShardTransportKind::Channel)
            .from_env()
            .expect("env parses")
            .build()
    });
    assert_eq!(
        *rt.engine(),
        Engine::Sharded(ShardedExecutor::new(2).with_transport(ShardTransportKind::Channel))
    );
}

#[test]
fn builder_never_reads_an_overridden_malformed_variable() {
    // The overridden variable is malformed, but the builder set it
    // explicitly, so from_env must not even read it…
    let rt = with_env(&[(ENV_THREADS, "three")], || {
        Runtime::builder()
            .threads(2)
            .from_env()
            .expect("overridden variable is never consulted")
            .build()
    });
    assert_eq!(
        *rt.engine(),
        Engine::Parallel(ParallelExecutor::with_threads(2))
    );
    // …while an unset knob with a malformed variable is a structured
    // error naming the variable and the offending value.
    let err = with_env(&[(ENV_THREADS, "three")], || {
        Runtime::builder().from_env().unwrap_err()
    });
    assert_eq!(err.var, ENV_THREADS);
    assert_eq!(err.value, "three");
}

#[test]
fn builder_timeout_overrides_env_timeout() {
    // Builder wins on the timeout knob while the environment still picks
    // the engine.
    let rt = with_env(&[(ENV_SHARDS, "2"), (ENV_SHARD_TIMEOUT, "9000")], || {
        Runtime::builder()
            .shard_timeout_ms(250)
            .from_env()
            .expect("env parses")
            .build()
    });
    assert_eq!(rt.shard_timeout_ms(), 250);
    assert_eq!(*rt.engine(), Engine::Sharded(ShardedExecutor::new(2)));
    // Environment alone fills the unset knob…
    let rt = with_env(&[(ENV_SHARD_TIMEOUT, "750")], || {
        Runtime::from_env().unwrap()
    });
    assert_eq!(rt.shard_timeout_ms(), 750);
    // …an *empty* variable means "use the default"…
    let rt = with_env(&[(ENV_SHARD_TIMEOUT, "")], || Runtime::from_env().unwrap());
    assert_eq!(rt.shard_timeout_ms(), DEFAULT_SHARD_TIMEOUT_MS);
    // …0 disables the deadline entirely…
    let rt = with_env(&[(ENV_SHARD_TIMEOUT, "0")], || Runtime::from_env().unwrap());
    assert_eq!(rt.shard_timeout_ms(), 0);
    // …and a malformed value is a structured error naming the variable
    // (which the binaries turn into exit status 2).
    let err = with_env(&[(ENV_SHARD_TIMEOUT, "soon")], || {
        Runtime::from_env().unwrap_err()
    });
    assert_eq!(err.var, ENV_SHARD_TIMEOUT);
    assert_eq!(err.value, "soon");
}

#[test]
fn max_rounds_is_builder_policy_not_env() {
    let rt = with_env(&[(ENV_THREADS, "2")], || {
        Runtime::builder()
            .max_rounds(77)
            .from_env()
            .expect("env parses")
            .build()
    });
    assert_eq!(rt.max_rounds(), 77);
    assert_eq!(
        *rt.engine(),
        Engine::Parallel(ParallelExecutor::with_threads(2))
    );
}
