//! The many-small-components family: topology pin + serial-oracle
//! differential for the barrier-free engine's showcase workload.
//!
//! The digest test plays the same role as the SparseRandom pinned-ID
//! regression in `deco-local`: the family is a pure function of the
//! scenario seed, and every differential sweep quantifies over it — if the
//! generator drifts, every suite silently starts testing a different
//! graph. Bump the constant deliberately, never by accident.

use deco_engine::protocols::{FloodMax, PortEcho, StaggeredSum};
use deco_engine::{AsyncExecutor, Executor, GraphSpec, IdFlavor, Scenario, SerialExecutor};
use deco_graph::Graph;

/// FNV-1a over the node count and the edge list — the canonical topology
/// digest (node order matters: ports and IDs key off it).
fn topology_digest(g: &Graph) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    mix(g.num_nodes() as u64);
    for [u, v] in g.edge_list() {
        mix(u.index() as u64);
        mix(v.index() as u64);
    }
    h
}

/// The scenario the pinned tests quantify over: the standard matrix's
/// many-components spec under the matrix's 2026 base seed.
fn showcase_scenario() -> Scenario {
    Scenario::new(
        GraphSpec::ManySmallComponents {
            components: 18,
            max_size: 7,
        },
        IdFlavor::Shuffled,
        2026,
    )
}

#[test]
fn many_components_topology_is_pinned() {
    let g = showcase_scenario().graph();
    assert_eq!(
        topology_digest(&g),
        6379347593389772167,
        "many-small-components topology shifted: every sweep covering the \
         family now tests a different graph — bump deliberately"
    );
}

#[test]
fn many_components_matches_the_serial_oracle() {
    let scenario = showcase_scenario();
    let g = scenario.graph();
    let net = scenario.network(&g);
    for threads in [1usize, 2, 4] {
        let engine = AsyncExecutor::with_threads(threads);
        for radius in [0u64, 3, 9] {
            let serial = SerialExecutor
                .execute(&net, &FloodMax { radius }, 50)
                .unwrap();
            let asynch = engine.execute(&net, &FloodMax { radius }, 50).unwrap();
            assert_eq!(serial.outputs, asynch.outputs, "t={threads} r={radius}");
            assert_eq!(serial.rounds, asynch.rounds, "t={threads} r={radius}");
            assert_eq!(serial.messages, asynch.messages, "t={threads} r={radius}");
        }
        let serial = SerialExecutor
            .execute(&net, &PortEcho { rounds: 3 }, 10)
            .unwrap();
        let asynch = engine.execute(&net, &PortEcho { rounds: 3 }, 10).unwrap();
        assert_eq!(serial.outputs, asynch.outputs, "port digests, t={threads}");
        let serial = SerialExecutor
            .execute(&net, &StaggeredSum { spread: 5 }, 20)
            .unwrap();
        let asynch = engine
            .execute(&net, &StaggeredSum { spread: 5 }, 20)
            .unwrap();
        assert_eq!(serial.outputs, asynch.outputs, "staggered, t={threads}");
        assert_eq!(serial.messages, asynch.messages, "staggered, t={threads}");
    }
}

#[test]
fn many_components_show_rounds_in_flight() {
    // Components halt on wildly different local rounds (FloodMax keeps
    // every node busy for `radius` rounds, but StaggeredSum's deadlines
    // depend on IDs): the async stats must show genuine drift — more than
    // one round in flight on average — and the deterministic barrier-wait
    // tally must match the per-node halt rounds.
    let scenario = showcase_scenario();
    let g = scenario.graph();
    let net = scenario.network(&g);
    let (out, stats) = AsyncExecutor::with_threads(2)
        .execute_with_stats(&net, &StaggeredSum { spread: 11 }, 50)
        .unwrap();
    assert_eq!(stats.global_rounds, out.rounds);
    assert!(
        stats.mean_rounds_in_flight > 1.0,
        "skewed components must overlap rounds, got {}",
        stats.mean_rounds_in_flight
    );
    assert!(stats.barrier_wait_eliminated > 0);
}
