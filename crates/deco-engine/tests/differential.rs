//! Differential suite: the parallel engine, the barrier-free async engine,
//! AND the sharded engine must be observationally identical to the serial
//! reference runner — same outputs, same round count, same message count,
//! same errors — on every scenario of the matrix, for every protocol, at
//! several thread and shard counts. Four executors, one contract.
//!
//! This is what makes any engine safe to substitute anywhere: parallelism,
//! the flat-mailbox substrate, dropping the global round barrier, and even
//! partitioning the network across shards with a cut exchange are pure
//! implementation detail.

use deco_engine::protocols::{FloodMax, PortEcho, StaggeredSum};
use deco_engine::{
    EngineMode, EngineSelection, Executor, ParallelExecutor, ScenarioMatrix, SerialExecutor,
    ShardedExecutor,
};
use deco_local::network::{IdAssignment, Network};
use deco_local::runner::{NodeProgram, Protocol, RunOutcome};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const THREADS_PER_SHARD: [usize; 2] = [1, 2];

/// The engine lineup every differential run exercises: barrier and async
/// modes at each pinned thread count, the sharded engine at each shard ×
/// threads-per-shard combination, plus the CI-pinned env executor
/// (`DECO_ENGINE_THREADS` × `DECO_ENGINE_ASYNC` × `DECO_ENGINE_SHARDS`;
/// auto barrier when unset), so the workflow's matrix reaches every run.
fn engine_lineup() -> Vec<(String, EngineSelection)> {
    let mut executors: Vec<(String, EngineSelection)> = Vec::new();
    for &t in &THREAD_COUNTS {
        executors.push((
            format!("barrier/t={t}"),
            EngineSelection::Parallel(ParallelExecutor::with_threads(t)),
        ));
        executors.push((
            format!("async/t={t}"),
            EngineSelection::Parallel(
                ParallelExecutor::with_threads(t).with_mode(EngineMode::Async),
            ),
        ));
    }
    for &s in &SHARD_COUNTS {
        for &t in &THREADS_PER_SHARD {
            executors.push((
                format!("shard/s={s}/t={t}"),
                EngineSelection::Sharded(ShardedExecutor::new(s).with_threads_per_shard(t)),
            ));
        }
    }
    executors.push((
        "env".to_string(),
        EngineSelection::from_env().expect("engine env vars parse"),
    ));
    executors
}

fn assert_identical<O>(name: &str, serial: &RunOutcome<O>, engine: &RunOutcome<O>)
where
    O: PartialEq + std::fmt::Debug,
{
    assert_eq!(serial.outputs, engine.outputs, "[{name}] outputs diverge");
    assert_eq!(
        serial.rounds, engine.rounds,
        "[{name}] round counts diverge"
    );
    assert_eq!(
        serial.messages, engine.messages,
        "[{name}] message counts diverge"
    );
}

/// Runs one protocol on one network under serial + engine(threads…) and
/// demands identical observable behavior.
fn differential<P>(name: &str, net: &Network<'_>, protocol: &P, max_rounds: u64)
where
    P: Protocol,
    P::Program: Send,
    <P::Program as NodeProgram>::Msg: Send + Sync,
    <P::Program as NodeProgram>::Output: Send + PartialEq + std::fmt::Debug,
{
    let serial = SerialExecutor.execute(net, protocol, max_rounds);
    for (label, exec) in engine_lineup() {
        let engine = exec.execute(net, protocol, max_rounds);
        match (&serial, &engine) {
            (Ok(s), Ok(e)) => assert_identical(&format!("{name} {label}"), s, e),
            (Err(se), Err(ee)) => {
                assert_eq!(se, ee, "[{name} {label}] errors diverge")
            }
            (s, e) => panic!(
                "[{name} {label}] one executor failed: serial ok={} engine ok={}",
                s.is_ok(),
                e.is_ok()
            ),
        }
    }
}

#[test]
fn full_matrix_flood_max() {
    let matrix = ScenarioMatrix::standard(2026);
    assert!(matrix.len() >= 40);
    for s in matrix.iter() {
        let g = s.graph();
        let net = s.network(&g);
        differential(
            &format!("{}/flood", s.name),
            &net,
            &FloodMax { radius: 5 },
            50,
        );
    }
}

#[test]
fn full_matrix_port_echo() {
    let matrix = ScenarioMatrix::standard(99);
    for s in matrix.iter() {
        let g = s.graph();
        let net = s.network(&g);
        differential(
            &format!("{}/echo", s.name),
            &net,
            &PortEcho { rounds: 3 },
            10,
        );
    }
}

#[test]
fn full_matrix_staggered_halting() {
    let matrix = ScenarioMatrix::standard(7);
    for s in matrix.iter() {
        let g = s.graph();
        let net = s.network(&g);
        differential(
            &format!("{}/staggered", s.name),
            &net,
            &StaggeredSum { spread: 6 },
            20,
        );
    }
}

#[test]
fn zero_round_programs_across_matrix() {
    let matrix = ScenarioMatrix::smoke(41);
    for s in matrix.iter() {
        let g = s.graph();
        let net = s.network(&g);
        differential(
            &format!("{}/zero-round", s.name),
            &net,
            &FloodMax { radius: 0 },
            5,
        );
    }
}

#[test]
fn round_limit_errors_across_matrix() {
    let matrix = ScenarioMatrix::smoke(17);
    for s in matrix.iter() {
        let g = s.graph();
        let net = s.network(&g);
        // Radius far beyond the limit: both executors must fail identically.
        differential(
            &format!("{}/limit", s.name),
            &net,
            &FloodMax { radius: 1000 },
            4,
        );
    }
}

#[test]
fn disconnected_graph_with_isolated_nodes() {
    use deco_engine::GraphSpec;
    let g = GraphSpec::TwoClusters { n: 10, d: 3 }.build(5);
    for assignment in [
        IdAssignment::Sequential,
        IdAssignment::Reversed,
        IdAssignment::Shuffled(3),
        IdAssignment::SparseRandom(4),
    ] {
        let net = Network::new(&g, assignment);
        differential("two-clusters/flood", &net, &FloodMax { radius: 6 }, 50);
        differential(
            "two-clusters/staggered",
            &net,
            &StaggeredSum { spread: 4 },
            20,
        );
    }
}

/// A real randomized protocol from the algorithm stack: Luby list coloring
/// carries per-node RNG state, dynamic halting, and message-dependent
/// control flow — the hardest stock protocol to get delivery right for.
#[test]
fn luby_protocol_differential() {
    use deco_algos::luby::LubyListColoring;
    use deco_graph::generators;

    let g = generators::random_regular(60, 6, 13);
    let lists: Vec<Vec<u32>> = g.nodes().map(|_| (0..12).collect()).collect();
    let net = Network::new(&g, IdAssignment::Shuffled(5));
    let protocol = LubyListColoring { lists, seed: 21 };
    differential("luby/regular(60,6)", &net, &protocol, 10_000);
}

/// Engine-at-scale sanity: a graph large enough to cross the threading
/// threshold, so multi-threaded chunks genuinely interleave.
#[test]
fn large_graph_crosses_parallel_threshold() {
    use deco_graph::generators;
    let g = generators::random_regular(4000, 16, 3);
    assert!(g.degree_sum() >= 4096, "must exercise the threaded path");
    let net = Network::new(&g, IdAssignment::SparseRandom(8));
    differential("large-regular/flood", &net, &FloodMax { radius: 4 }, 10);
    differential("large-regular/echo", &net, &PortEcho { rounds: 3 }, 10);
    // Mid-run halting across genuinely threaded chunks: nodes halt at
    // different rounds, so chunk-local halted bookkeeping is exercised.
    differential(
        "large-regular/staggered",
        &net,
        &StaggeredSum { spread: 7 },
        20,
    );
}
