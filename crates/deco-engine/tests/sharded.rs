//! Sharded-engine integration suite.
//!
//! Three layers of protection around the shard subsystem:
//!
//! 1. **Pinned partition digests** — one [`ShardPlan::digest`] per scenario
//!    family × shard count. The partitioner is a pure function of graph and
//!    shard count; a digest shift means every sharded differential sweep
//!    silently runs a different partition, so shifts must be deliberate
//!    (bump the constants in the same commit that changes the partitioner).
//! 2. **Framed transport differentials** — the framed coordinator/worker
//!    protocol over every framed transport (in-process channel, the
//!    `deco-shardd` subprocess pipe, TCP dial-in, Unix-domain dial-in) must
//!    reproduce the serial runner bit for bit (outputs, rounds, messages,
//!    errors) at 1/2/4 shards × 1/2 threads per shard.
//!    `DECO_SHARD_TRANSPORT` (`channel` / `process` / `tcp` / `uds`, unset
//!    = all) narrows the sweep so CI can attribute failures to a transport.
//! 3. **Cross-transport agreement** — every pair of transports running the
//!    same workload must agree with each other exactly, byte accounting
//!    included (they run the same worker code over the same frames; this
//!    pins that claim).

use deco_engine::protocols::{FloodMax, PortEcho, StaggeredSum};
use deco_engine::shard::framed::{
    run_framed, ChannelTransport, FramedError, FramedRun, ProcessTransport, ProtocolSpec,
    ShardTransport,
};
use deco_engine::shard::net::TcpTransport;
#[cfg(unix)]
use deco_engine::shard::net::UdsTransport;
use deco_engine::{Executor, GraphSpec, IdFlavor, Scenario, SerialExecutor, ShardPlan};
use deco_local::network::Network;
use deco_local::runner::{RunError, RunOutcome};

/// The worker binary built alongside this test crate.
fn shardd_bin() -> &'static str {
    env!("CARGO_BIN_EXE_deco-shardd")
}

/// Which framed transports this process should exercise.
#[derive(Debug, Clone, Copy)]
struct Enabled {
    channel: bool,
    process: bool,
    tcp: bool,
    uds: bool,
}

/// `DECO_SHARD_TRANSPORT` narrows CI matrix legs; unset — or `threads`,
/// which names the typed in-process substrate every other suite already
/// covers — runs all four framed transports. Parsing goes through the same
/// [`deco_engine::config::parse_transport`] the runtime facade uses, so a
/// typo in a CI matrix cell fails loudly with the variable name and the
/// offending value instead of silently widening the leg.
fn transports_enabled() -> Enabled {
    let all = Enabled {
        channel: true,
        process: true,
        tcp: true,
        uds: cfg!(unix),
    };
    let only = |kind: deco_engine::ShardTransportKind| Enabled {
        channel: kind == deco_engine::ShardTransportKind::Channel,
        process: kind == deco_engine::ShardTransportKind::Process,
        tcp: kind == deco_engine::ShardTransportKind::Tcp,
        uds: kind == deco_engine::ShardTransportKind::Uds && cfg!(unix),
    };
    match std::env::var("DECO_SHARD_TRANSPORT") {
        Err(_) => all,
        Ok(raw) => match deco_engine::config::parse_transport(&raw).unwrap_or_else(|e| {
            panic!("{e}");
        }) {
            deco_engine::ShardTransportKind::Threads => all,
            kind => only(kind),
        },
    }
}

#[test]
fn partition_digests_are_pinned_per_family() {
    // Regenerate by printing `ShardPlan::new(&scenario.graph(), shards)
    // .digest()` for each row; bump deliberately, never by accident.
    let pins: [(GraphSpec, usize, u64); 20] = [
        (GraphSpec::Path { n: 33 }, 2, 0x4e3da74a1e527187),
        (GraphSpec::Path { n: 33 }, 4, 0xb0b9e81fa0074fb3),
        (GraphSpec::Cycle { n: 48 }, 2, 0xfceeaafd598a5e2e),
        (GraphSpec::Cycle { n: 48 }, 4, 0x3aae13682c941540),
        (GraphSpec::Complete { n: 13 }, 2, 0x7b81c8248b2376e0),
        (GraphSpec::Complete { n: 13 }, 4, 0xa111926c4e79447b),
        (GraphSpec::Grid { w: 8, h: 5 }, 2, 0xb00d830c0ac9a5fb),
        (GraphSpec::Grid { w: 8, h: 5 }, 4, 0x0bca33209be523ae),
        (
            GraphSpec::RandomRegular { n: 64, d: 8 },
            2,
            0x55c8c96046252ce8,
        ),
        (
            GraphSpec::RandomRegular { n: 64, d: 8 },
            4,
            0x11a8494e1594de9b,
        ),
        (GraphSpec::Gnp { n: 80, p: 0.08 }, 2, 0x35114a27240a6684),
        (GraphSpec::Gnp { n: 80, p: 0.08 }, 4, 0xda674622ef0675d1),
        (GraphSpec::PowerLaw { n: 100 }, 2, 0x732545858ca81be1),
        (GraphSpec::PowerLaw { n: 100 }, 4, 0xc07b9a8cbf4bfa7e),
        (GraphSpec::RandomTree { n: 90 }, 2, 0xfc415c3e2bcb1a93),
        (GraphSpec::RandomTree { n: 90 }, 4, 0xa05c1073b8823af4),
        (
            GraphSpec::TwoClusters { n: 24, d: 4 },
            2,
            0x6713b520a9de4ef5,
        ),
        (
            GraphSpec::TwoClusters { n: 24, d: 4 },
            4,
            0x4b18fa8c38d4041d,
        ),
        (
            GraphSpec::ManySmallComponents {
                components: 18,
                max_size: 7,
            },
            2,
            0xba7b004cc4fb5af7,
        ),
        (
            GraphSpec::ManySmallComponents {
                components: 18,
                max_size: 7,
            },
            4,
            0xce0a1bdd3dd61b33,
        ),
    ];
    for (spec, shards, expected) in pins {
        let scenario = Scenario::new(spec.clone(), IdFlavor::Sequential, 2026);
        let plan = ShardPlan::new(&scenario.graph(), shards);
        assert_eq!(
            plan.digest(),
            expected,
            "partition digest shifted for {} at {shards} shards",
            spec.label()
        );
    }
}

fn serial_oracle(
    net: &Network<'_>,
    spec: ProtocolSpec,
    max_rounds: u64,
) -> Result<RunOutcome<u64>, RunError> {
    match spec {
        ProtocolSpec::FloodMax { radius } => {
            SerialExecutor.execute(net, &FloodMax { radius }, max_rounds)
        }
        ProtocolSpec::PortEcho { rounds } => {
            SerialExecutor.execute(net, &PortEcho { rounds }, max_rounds)
        }
        ProtocolSpec::StaggeredSum { spread } => {
            SerialExecutor.execute(net, &StaggeredSum { spread }, max_rounds)
        }
    }
}

fn framed_result<T: ShardTransport>(
    transport: &T,
    g: &deco_graph::Graph,
    ids: &[u64],
    spec: ProtocolSpec,
    shards: usize,
    threads: usize,
    max_rounds: u64,
) -> Result<FramedRun, RunError> {
    match run_framed(transport, g, ids, spec, shards, threads, max_rounds) {
        Ok(run) => Ok(run),
        Err(FramedError::Run(e)) => Err(e),
        Err(FramedError::Shard(e)) => panic!("[{}] {e}", transport.label()),
        Err(FramedError::Io(e)) => panic!("[{}] transport failed: {e}", transport.label()),
    }
}

/// Runs `spec` over the scenario on every enabled transport at the given
/// shard/thread grid and demands serial-identical observables.
fn framed_differential(scenario: &Scenario, spec: ProtocolSpec, max_rounds: u64) {
    let g = scenario.graph();
    let net = scenario.network(&g);
    let ids = net.ids().to_vec();
    let serial = serial_oracle(&net, spec, max_rounds);
    let enabled = transports_enabled();
    for &shards in &[1usize, 2, 4] {
        for &threads in &[1usize, 2] {
            let mut runs: Vec<(String, Result<FramedRun, RunError>)> = Vec::new();
            if enabled.channel {
                runs.push((
                    "channel".into(),
                    framed_result(
                        &ChannelTransport,
                        &g,
                        &ids,
                        spec,
                        shards,
                        threads,
                        max_rounds,
                    ),
                ));
            }
            if enabled.process {
                runs.push((
                    "process".into(),
                    framed_result(
                        &ProcessTransport::new(shardd_bin()),
                        &g,
                        &ids,
                        spec,
                        shards,
                        threads,
                        max_rounds,
                    ),
                ));
            }
            if enabled.tcp {
                runs.push((
                    "tcp".into(),
                    framed_result(
                        &TcpTransport::spawn(shardd_bin()),
                        &g,
                        &ids,
                        spec,
                        shards,
                        threads,
                        max_rounds,
                    ),
                ));
            }
            #[cfg(unix)]
            if enabled.uds {
                runs.push((
                    "uds".into(),
                    framed_result(
                        &UdsTransport::spawn(shardd_bin()),
                        &g,
                        &ids,
                        spec,
                        shards,
                        threads,
                        max_rounds,
                    ),
                ));
            }
            for (label, run) in &runs {
                let name = format!(
                    "{}/{} {label} s={shards} t={threads}",
                    scenario.name,
                    spec.label()
                );
                match (&serial, run) {
                    (Ok(s), Ok(r)) => {
                        assert_eq!(s.outputs, r.outcome.outputs, "[{name}] outputs diverge");
                        assert_eq!(s.rounds, r.outcome.rounds, "[{name}] rounds diverge");
                        assert_eq!(s.messages, r.outcome.messages, "[{name}] messages diverge");
                    }
                    (Err(se), Err(re)) => assert_eq!(se, re, "[{name}] errors diverge"),
                    (s, r) => panic!(
                        "[{name}] one side failed: serial ok={} framed ok={}",
                        s.is_ok(),
                        r.is_ok()
                    ),
                }
            }
            // Cross-transport agreement: every enabled transport that ran
            // must agree with the first one exactly, byte-for-byte.
            let ok_runs: Vec<(&String, &FramedRun)> = runs
                .iter()
                .filter_map(|(l, r)| r.as_ref().ok().map(|run| (l, run)))
                .collect();
            if let Some((first_label, first)) = ok_runs.first() {
                for (label, run) in &ok_runs[1..] {
                    let pair = format!("{first_label} vs {label} s={shards} t={threads}");
                    assert_eq!(first.outcome.outputs, run.outcome.outputs, "[{pair}]");
                    assert_eq!(first.cut_edges, run.cut_edges, "[{pair}]");
                    assert_eq!(
                        first.exchange_bytes, run.exchange_bytes,
                        "[{pair}] same frames, same bytes"
                    );
                    assert_eq!(
                        first.total_bytes, run.total_bytes,
                        "[{pair}] same frames, same bytes"
                    );
                }
            }
        }
    }
}

#[test]
fn framed_flood_matches_serial_on_all_transports() {
    let scenario = Scenario::new(
        GraphSpec::RandomRegular { n: 48, d: 6 },
        IdFlavor::Shuffled,
        7,
    );
    framed_differential(&scenario, ProtocolSpec::FloodMax { radius: 5 }, 50);
}

#[test]
fn framed_port_echo_matches_serial_on_all_transports() {
    let scenario = Scenario::new(GraphSpec::Grid { w: 7, h: 5 }, IdFlavor::SparseRandom, 11);
    framed_differential(&scenario, ProtocolSpec::PortEcho { rounds: 3 }, 10);
}

#[test]
fn framed_staggered_matches_serial_on_all_transports() {
    let scenario = Scenario::new(
        GraphSpec::ManySmallComponents {
            components: 10,
            max_size: 6,
        },
        IdFlavor::Reversed,
        13,
    );
    framed_differential(&scenario, ProtocolSpec::StaggeredSum { spread: 6 }, 30);
}

#[test]
fn framed_round_limit_errors_on_all_transports() {
    let scenario = Scenario::new(GraphSpec::Cycle { n: 20 }, IdFlavor::Sequential, 3);
    framed_differential(&scenario, ProtocolSpec::FloodMax { radius: 500 }, 4);
}

#[test]
fn subprocess_transport_truly_runs_out_of_process() {
    if !transports_enabled().process {
        return; // a CI leg pinned to another transport
    }
    // Not a differential: this pins that ProcessTransport actually spawns
    // children (launch succeeds against the real binary and the run
    // completes through real pipes).
    let scenario = Scenario::new(GraphSpec::Cycle { n: 30 }, IdFlavor::Sequential, 1);
    let g = scenario.graph();
    let net = scenario.network(&g);
    let run = framed_result(
        &ProcessTransport::new(shardd_bin()),
        &g,
        net.ids(),
        ProtocolSpec::FloodMax { radius: 4 },
        3,
        1,
        50,
    )
    .expect("run succeeds");
    assert_eq!(run.shards, 3);
    assert!(run.total_bytes > 0);
    let serial = serial_oracle(&net, ProtocolSpec::FloodMax { radius: 4 }, 50).unwrap();
    assert_eq!(serial.outputs, run.outcome.outputs);
}

#[test]
fn socket_transports_truly_run_out_of_process() {
    // Spawn-mode TCP (and UDS on Unix): real `deco-shardd` children dial
    // the coordinator back over real sockets and the run reproduces the
    // serial oracle.
    let enabled = transports_enabled();
    let scenario = Scenario::new(GraphSpec::Cycle { n: 30 }, IdFlavor::Sequential, 1);
    let g = scenario.graph();
    let net = scenario.network(&g);
    let serial = serial_oracle(&net, ProtocolSpec::FloodMax { radius: 4 }, 50).unwrap();
    if enabled.tcp {
        let run = framed_result(
            &TcpTransport::spawn(shardd_bin()),
            &g,
            net.ids(),
            ProtocolSpec::FloodMax { radius: 4 },
            3,
            1,
            50,
        )
        .expect("tcp run succeeds");
        assert_eq!(run.shards, 3);
        assert_eq!(serial.outputs, run.outcome.outputs);
    }
    #[cfg(unix)]
    if enabled.uds {
        let run = framed_result(
            &UdsTransport::spawn(shardd_bin()),
            &g,
            net.ids(),
            ProtocolSpec::FloodMax { radius: 4 },
            3,
            1,
            50,
        )
        .expect("uds run succeeds");
        assert_eq!(run.shards, 3);
        assert_eq!(serial.outputs, run.outcome.outputs);
    }
}

#[test]
fn sharded_descriptors_round_trip_socket_transports() {
    // The descriptor grammar is an API: these exact strings appear in CI
    // matrix legs and experiment reports, so they are pinned verbatim.
    use deco_engine::config::EngineSelection;
    use deco_engine::ShardTransportKind;
    for (desc, shards, threads, kind) in [
        (
            "sharded(shards=4,threads=1,transport=tcp)",
            4,
            1,
            ShardTransportKind::Tcp,
        ),
        (
            "sharded(shards=2,threads=2,transport=uds)",
            2,
            2,
            ShardTransportKind::Uds,
        ),
    ] {
        let sel: EngineSelection = desc.parse().unwrap_or_else(|e| panic!("{desc}: {e}"));
        assert_eq!(sel.to_string(), desc, "descriptor must round-trip");
        match sel {
            EngineSelection::Sharded(e) => {
                assert_eq!(e.shards(), shards);
                assert_eq!(e.threads_per_shard(), threads);
                assert_eq!(e.transport(), kind);
            }
            other => panic!("{desc} parsed as {other:?}"),
        }
    }
}
