//! Substrate property sweep: for every scenario family in the standard
//! matrix, the bulk CSR `Builder` reproduces the per-edge `GraphBuilder`'s
//! graph exactly, and the binary snapshot round-trips it bit for bit.
//!
//! The comparison digests the *whole* CSR — edge list (EdgeId order),
//! per-node adjacency (neighbor + edge per port, port order), and the
//! mirror back-port table — because engines depend on all three: EdgeId
//! order fixes color attribution, port order fixes inbox order, and the
//! back-port table is the O(1) delivery path.

use deco_engine::ScenarioMatrix;
use deco_graph::{io, Builder, Graph};

/// Everything observable about a graph's CSR, in one comparable value:
/// edge endpoints, per-port `(neighbor, edge)` pairs, mirror back-ports.
type Digest = (Vec<[u32; 2]>, Vec<Vec<(u32, u32)>>, Vec<Vec<u32>>);

fn digest(g: &Graph) -> Digest {
    let edges = g.edge_list().iter().map(|[u, v]| [u.0, v.0]).collect();
    let adjacency = g
        .nodes()
        .map(|v| {
            g.adjacent(v)
                .iter()
                .map(|a| (a.neighbor.0, a.edge.0))
                .collect()
        })
        .collect();
    let back_ports = g.nodes().map(|v| g.back_ports(v).to_vec()).collect();
    (edges, adjacency, back_ports)
}

#[test]
fn bulk_builder_matches_graph_builder_across_all_families() {
    let matrix = ScenarioMatrix::standard(2031);
    let mut checked = 0;
    for s in matrix.iter() {
        let g = s.graph();
        let mut b = Builder::with_capacity(g.num_nodes(), g.num_edges());
        for [u, v] in g.edge_list() {
            b.add_edge(u.index(), v.index()).expect("edge is simple");
        }
        let rebuilt = b.build().expect("edge set is valid");
        assert_eq!(digest(&g), digest(&rebuilt), "{}", s.name);
        checked += 1;
    }
    assert!(checked >= 40, "matrix should be broad, got {checked}");
}

#[test]
fn snapshot_round_trips_every_family() {
    let matrix = ScenarioMatrix::standard(907);
    for s in matrix.iter() {
        let g = s.graph();
        let mut bytes = Vec::new();
        io::write_snapshot(&g, &mut bytes).expect("vec write");
        let loaded = io::read_snapshot(&bytes[..]).expect("own snapshot loads");
        assert_eq!(digest(&g), digest(&loaded), "{}", s.name);

        // Re-serializing the loaded graph reproduces the same bytes — the
        // format has one canonical encoding per graph.
        let mut again = Vec::new();
        io::write_snapshot(&loaded, &mut again).expect("vec write");
        assert_eq!(bytes, again, "{}", s.name);
    }
}
