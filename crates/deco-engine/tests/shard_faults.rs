//! Fault-injection suite for the hardened framed shard coordinator.
//!
//! Every test drives a real framed run through a
//! [`FaultTransport`](deco_engine::shard::fault::FaultTransport) with a
//! *deterministic* fault plan and demands one of exactly two outcomes:
//!
//! * **Transient faults** (dropped frames, delays, late duplicates) —
//!   the run recovers and its observables are **bit-identical** to a clean
//!   run: outputs, rounds, messages, and both byte counters (retransmitted
//!   frames are never counted, so byte accounting is fault-invariant).
//! * **Fatal faults** (truncation, kills, stalls past the retry budget) —
//!   the run terminates within the deadline budget with the exact
//!   structured [`ShardFailed`] the plan predicts. Never a hang, never a
//!   panic.
//!
//! A seeded sweep then walks a swath of the fault space and holds every
//! plan to the transient-or-structured dichotomy, and the four-way
//! differential pushes an injected fault through all four framed
//! transports (channel, process, TCP, Unix-domain) at once.

use deco_engine::protocols::FloodMax;
use deco_engine::shard::fault::{FaultPlan, FaultTransport};
use deco_engine::shard::framed::{
    run_framed, run_framed_with, ChannelTransport, FramedError, FramedPolicy, FramedRun,
    ProcessTransport, ProtocolSpec, ShardFailure,
};
use deco_engine::shard::net::TcpTransport;
#[cfg(unix)]
use deco_engine::shard::net::UdsTransport;
use deco_engine::{Executor, GraphSpec, IdFlavor, Scenario, SerialExecutor};
use std::time::{Duration, Instant};

/// The worker binary built alongside this test crate.
fn shardd_bin() -> &'static str {
    env!("CARGO_BIN_EXE_deco-shardd")
}

const SHARDS: usize = 2;
const MAX_ROUNDS: u64 = 50;
const SPEC: ProtocolSpec = ProtocolSpec::FloodMax { radius: 4 };

fn scenario() -> Scenario {
    Scenario::new(GraphSpec::Cycle { n: 24 }, IdFlavor::Shuffled, 5)
}

/// A clean reference run over the channel transport (every transport is
/// byte-identical to it — `tests/sharded.rs` pins that).
fn clean_run() -> FramedRun {
    let scenario = scenario();
    let g = scenario.graph();
    let net = scenario.network(&g);
    run_framed(
        &ChannelTransport,
        &g,
        net.ids(),
        SPEC,
        SHARDS,
        1,
        MAX_ROUNDS,
    )
    .expect("clean run succeeds")
}

/// Runs the standard workload through `plan` over the channel transport.
fn faulted_run(plan: FaultPlan, policy: FramedPolicy) -> Result<FramedRun, FramedError> {
    let scenario = scenario();
    let g = scenario.graph();
    let net = scenario.network(&g);
    run_framed_with(
        &FaultTransport::new(ChannelTransport, plan),
        &g,
        net.ids(),
        SPEC,
        SHARDS,
        1,
        MAX_ROUNDS,
        policy,
    )
}

fn assert_bit_identical(clean: &FramedRun, run: &FramedRun, what: &str) {
    assert_eq!(
        clean.outcome.outputs, run.outcome.outputs,
        "[{what}] outputs"
    );
    assert_eq!(clean.outcome.rounds, run.outcome.rounds, "[{what}] rounds");
    assert_eq!(
        clean.outcome.messages, run.outcome.messages,
        "[{what}] messages"
    );
    assert_eq!(clean.cut_edges, run.cut_edges, "[{what}] cut edges");
    assert_eq!(
        clean.exchange_bytes, run.exchange_bytes,
        "[{what}] exchange bytes (retransmits must not be counted)"
    );
    assert_eq!(
        clean.total_bytes, run.total_bytes,
        "[{what}] total bytes (retransmits must not be counted)"
    );
}

fn policy(timeout_ms: u64, retries: u32) -> FramedPolicy {
    FramedPolicy::default()
        .with_timeout_ms(timeout_ms)
        .with_retries(retries)
}

#[test]
fn dropped_request_recovers_bit_identically() {
    // Request 2 (the first SendReq) to shard 0 vanishes; the coordinator
    // times out, retransmits, and the worker executes it as new.
    let clean = clean_run();
    let run = faulted_run(FaultPlan::new().drop_request(0, 2), policy(150, 2))
        .expect("transient fault must recover");
    assert_bit_identical(&clean, &run, "drop request");
}

#[test]
fn dropped_response_recovers_bit_identically() {
    // Response 2 (the first CutOut) from shard 0 vanishes *after* the
    // worker executed the round. The retransmitted request is deduped by
    // sequence number and answered from the response cache — the round
    // runs exactly once, so recovery is bit-identical.
    let clean = clean_run();
    let run = faulted_run(FaultPlan::new().drop_response(0, 2), policy(150, 2))
        .expect("transient fault must recover");
    assert_bit_identical(&clean, &run, "drop response");
}

#[test]
fn delay_under_the_deadline_is_jitter() {
    let clean = clean_run();
    let run = faulted_run(FaultPlan::new().delay_response(0, 2, 30), policy(500, 2))
        .expect("sub-deadline delay must recover");
    assert_bit_identical(&clean, &run, "short delay");
}

#[test]
fn delay_past_the_deadline_recovers_through_the_late_duplicate() {
    // The response outlives the budget: the coordinator times out and
    // retransmits; the late frame then arrives as a duplicate of the same
    // sequence number, which the coordinator accepts (same seq, same
    // payload) — still bit-identical.
    let clean = clean_run();
    let run = faulted_run(FaultPlan::new().delay_response(0, 2, 200), policy(100, 2))
        .expect("late duplicate must recover");
    assert_bit_identical(&clean, &run, "late duplicate");
}

#[test]
fn truncated_response_is_a_pinned_malformed_failure() {
    let start = Instant::now();
    let err = faulted_run(FaultPlan::new().truncate_response(0, 2), policy(150, 2))
        .expect_err("torn frame is fatal");
    match err {
        FramedError::Shard(e) => {
            assert_eq!(e.shard, 0);
            assert_eq!(e.cause, ShardFailure::Malformed);
        }
        other => panic!("expected ShardFailed, got {other}"),
    }
    assert!(start.elapsed() < Duration::from_secs(10), "no hang");
}

#[test]
fn killed_shard_is_a_pinned_disconnect() {
    let start = Instant::now();
    let err = faulted_run(FaultPlan::new().kill_shard(1, 2), policy(150, 2))
        .expect_err("severed shard is fatal");
    match err {
        FramedError::Shard(e) => {
            assert_eq!(e.shard, 1);
            assert_eq!(e.cause, ShardFailure::Disconnected);
        }
        other => panic!("expected ShardFailed, got {other}"),
    }
    assert!(start.elapsed() < Duration::from_secs(10), "no hang");
}

#[test]
fn stalled_shard_times_out_within_the_retry_budget() {
    // Drop the response to the original request AND to both retransmits:
    // to the coordinator this is a shard that went silent. With
    // timeout=150ms and retries=2 the failure must land in well under the
    // 10 s bound — and be blamed on the right shard with the right budget.
    let start = Instant::now();
    let err = faulted_run(
        FaultPlan::new()
            .drop_response(0, 2)
            .drop_response(0, 3)
            .drop_response(0, 4),
        policy(150, 2),
    )
    .expect_err("silent shard is fatal");
    match err {
        FramedError::Shard(e) => {
            assert_eq!(e.shard, 0);
            assert_eq!(e.cause, ShardFailure::Timeout { budget_ms: 150 });
        }
        other => panic!("expected ShardFailed, got {other}"),
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "stall must resolve within the budget, took {elapsed:?}"
    );
}

#[test]
fn seeded_fault_sweep_never_hangs_or_panics() {
    // A swath of the fault space: every seeded plan must either recover
    // bit-identically or fail with a structured ShardFailed — and always
    // terminate promptly. (A plan whose fatal op addresses a frame the run
    // never reaches is a clean run; that is fine and asserted identical.)
    let clean = clean_run();
    let start = Instant::now();
    for seed in 0..32u64 {
        let plan = FaultPlan::seeded(seed, SHARDS);
        match faulted_run(plan.clone(), policy(120, 1)) {
            Ok(run) => assert_bit_identical(&clean, &run, &format!("seed {seed} {plan:?}")),
            Err(FramedError::Shard(_)) => {}
            Err(other) => panic!("seed {seed} {plan:?}: unstructured failure: {other}"),
        }
    }
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "sweep must stay inside its deadline budget"
    );
}

#[test]
fn four_way_differential_recovers_through_injected_faults() {
    // The same transient plan injected over every framed transport: all
    // four recoveries must match the serial oracle and each other exactly.
    let scenario = scenario();
    let g = scenario.graph();
    let net = scenario.network(&g);
    let serial = SerialExecutor
        .execute(&net, &FloodMax { radius: 4 }, MAX_ROUNDS)
        .expect("oracle succeeds");
    let plan = || {
        FaultPlan::new()
            .drop_response(0, 2)
            .delay_response(1, 3, 20)
    };
    let pol = policy(400, 2);
    let mut runs: Vec<(&str, FramedRun)> = Vec::new();
    let run = |r: Result<FramedRun, FramedError>, label: &str| {
        r.unwrap_or_else(|e| panic!("[{label}] must recover: {e}"))
    };
    runs.push((
        "channel",
        run(
            run_framed_with(
                &FaultTransport::new(ChannelTransport, plan()),
                &g,
                net.ids(),
                SPEC,
                SHARDS,
                1,
                MAX_ROUNDS,
                pol,
            ),
            "channel",
        ),
    ));
    runs.push((
        "process",
        run(
            run_framed_with(
                &FaultTransport::new(ProcessTransport::new(shardd_bin()), plan()),
                &g,
                net.ids(),
                SPEC,
                SHARDS,
                1,
                MAX_ROUNDS,
                pol,
            ),
            "process",
        ),
    ));
    runs.push((
        "tcp",
        run(
            run_framed_with(
                &FaultTransport::new(TcpTransport::spawn(shardd_bin()), plan()),
                &g,
                net.ids(),
                SPEC,
                SHARDS,
                1,
                MAX_ROUNDS,
                pol,
            ),
            "tcp",
        ),
    ));
    #[cfg(unix)]
    runs.push((
        "uds",
        run(
            run_framed_with(
                &FaultTransport::new(UdsTransport::spawn(shardd_bin()), plan()),
                &g,
                net.ids(),
                SPEC,
                SHARDS,
                1,
                MAX_ROUNDS,
                pol,
            ),
            "uds",
        ),
    ));
    let (first_label, first) = &runs[0];
    assert_eq!(serial.outputs, first.outcome.outputs, "[{first_label}]");
    assert_eq!(serial.rounds, first.outcome.rounds, "[{first_label}]");
    assert_eq!(serial.messages, first.outcome.messages, "[{first_label}]");
    for (label, run) in &runs[1..] {
        assert_bit_identical(first, run, &format!("{first_label} vs {label}"));
    }
}

#[test]
fn fault_decorator_composes_with_socket_transports() {
    // FaultTransport over a *socket* transport: the fault layer sits above
    // the FrameReader pump, so injected drops trigger real retransmissions
    // across a real TCP stream — and recovery is still bit-identical.
    let clean = clean_run();
    let scenario = scenario();
    let g = scenario.graph();
    let net = scenario.network(&g);
    let run = run_framed_with(
        &FaultTransport::new(
            TcpTransport::in_process(),
            FaultPlan::new().drop_response(1, 2),
        ),
        &g,
        net.ids(),
        SPEC,
        SHARDS,
        1,
        MAX_ROUNDS,
        policy(300, 2),
    )
    .expect("transient fault over tcp must recover");
    assert_bit_identical(&clean, &run, "fault over tcp");
}

#[test]
fn wedged_subprocess_worker_is_killed_on_timeout() {
    // Satellite fix: ProcessTransport used to have no read deadline — a
    // wedged `deco-shardd` child (here: `--stall`, which reads and
    // discards frames without ever answering) hung the coordinator
    // forever. Now the same timeout budget applies, the failure is
    // structured, and dropping the connection kills the child.
    let scenario = scenario();
    let g = scenario.graph();
    let net = scenario.network(&g);
    let start = Instant::now();
    let err = run_framed_with(
        &ProcessTransport::new(shardd_bin()).with_args(["--stall"]),
        &g,
        net.ids(),
        SPEC,
        SHARDS,
        1,
        MAX_ROUNDS,
        policy(150, 1),
    )
    .expect_err("a wedged worker must time out, not hang");
    match err {
        FramedError::Shard(e) => {
            assert_eq!(e.shard, 0, "the first awaited response is shard 0's");
            assert_eq!(e.cause, ShardFailure::Timeout { budget_ms: 150 });
        }
        other => panic!("expected ShardFailed, got {other}"),
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "timeout must fire within the budget, took {elapsed:?}"
    );
}
