//! # deco-engine — high-throughput round execution for LOCAL protocols
//!
//! The serial runner in `deco-local` defines the model; this crate makes it
//! fast without changing a single observable bit:
//!
//! * [`mailbox`] — CSR-packed flat mailbox arenas with a precomputed
//!   mirror table: O(1) message delivery, zero per-round allocation,
//!   double-buffered across rounds — plus the per-port two-round
//!   [`mailbox::RingBuffer`] the barrier-free engine runs on.
//! * [`engine`] — [`ParallelExecutor`], which runs the send and receive
//!   phases across scoped threads over degree-balanced node ranges, and
//!   fans out callers' independent branch computations (the Theorem 4.1
//!   solver's parallel recursion) the same way via
//!   [`Executor::execute_branches`]. Parallelism is observationally
//!   invisible: outputs, round counts, message counts, and errors are
//!   identical to the serial runner for every protocol, network, and
//!   thread count (enforced by the differential suite in `tests/`).
//! * [`async_engine`] — [`AsyncExecutor`], the barrier-free executor:
//!   every node advances on its own component-local round counter
//!   ([`clock::RoundClock`]) the moment its neighbors' messages are
//!   present, with adjacent nodes at most one completed round apart (the
//!   ring buffer's depth-1 lookahead invariant). Same observational
//!   contract, proven by the three-way differential suite; disconnected
//!   and skewed-component workloads are where it shines.
//! * [`shard`] — sharded execution: a [`shard::ShardPlan`] partitions the
//!   network into degree-balanced shards, cut edges surface as ghost
//!   ports fed by a per-round cut exchange, and
//!   [`shard::ShardedExecutor`] runs the whole thing as a drop-in
//!   [`Executor`]. The [`shard::framed`] layer speaks the same roles over
//!   length-prefixed byte frames through in-process channels or
//!   `deco-shardd` subprocesses — true multi-process execution behind the
//!   same observational contract.
//! * [`scenario`] — the scenario matrix: graph families × sizes ×
//!   ID-assignment flavors enumerated from one base seed, with per-scenario
//!   named RNG streams (ixa-style), so sweeps and benchmarks share one
//!   declared source of workloads.
//! * [`protocols`] — stock substrate-stressing protocols used by the
//!   differential suite and the benches.
//! * [`config`] — structured parsing of the `DECO_ENGINE_*` environment
//!   variables CI pins its executor matrix with; malformed values are
//!   [`config::EngineEnvError`] values, never silent fallbacks.
//!
//! Threading is built on `std::thread::scope` (the build environment has no
//! crates.io access, so `rayon` is unavailable; see `par.rs` for the exact
//! swap-in point if that changes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_engine;
pub mod clock;
pub mod config;
pub mod engine;
pub mod mailbox;
pub mod par;
pub mod protocols;
pub mod scenario;
pub mod shard;

pub use async_engine::{AsyncExecutor, AsyncStats};
pub use clock::RoundClock;
pub use config::{EngineConfig, EngineEnvError, EngineSelection, ShardTransportKind};
pub use engine::{EngineMode, ParallelExecutor};
pub use mailbox::MailboxPlan;
pub use scenario::{GraphSpec, IdFlavor, Scenario, ScenarioMatrix};
pub use shard::{ShardPlan, ShardedExecutor};

// Re-exported so engine users name the contract without importing
// deco-local explicitly.
pub use deco_local::{Executor, SerialExecutor};
