//! Flat CSR-packed mailbox arenas.
//!
//! The engine lays every port of every node out in one flat arena — slot
//! `offset(v) + j` is node `v`'s port `j` — and precomputes, once per
//! execution, the *mirror* of each slot: the arena index of the same edge at
//! the other endpoint. Delivery then needs no data movement at all: the
//! inbox of `(v, j)` *is* the outbox slot `mirror[offset(v) + j]`, read in
//! O(1).
//!
//! Message storage is the dense [`PortArena`] (payload slots plus bitmap
//! presence words — see [`deco_local::arena`]) rather than `Vec<Option<M>>`:
//! a port costs `size_of::<M>()` bytes plus one bit, and the deliver path
//! checks a presence bit instead of branching on an `Option` discriminant.
//!
//! Two arenas are kept and swapped every round (double buffering). Today
//! the phases alternate strictly, every active slot is rewritten each
//! round, and only the current buffer is ever read — functionally one arena
//! would suffice. The second buffer exists so a pipelined mode can overlap
//! `send(r+1)` with `receive(r)` without reallocation; until that lands its
//! cost is one extra arena allocated once per execution.
//!
//! ```
//! use deco_engine::MailboxPlan;
//! use deco_graph::generators;
//!
//! let g = generators::cycle(4);
//! let plan = MailboxPlan::new(&g);
//! // One slot per port: 2m in total.
//! assert_eq!(plan.num_slots(), g.degree_sum());
//! // The mirror table is a fixed-point-free involution: following it
//! // twice from any slot returns to the same slot, and delivery is the
//! // single lookup `arena[plan.mirror(k)]`.
//! for k in 0..plan.num_slots() {
//!     assert_ne!(plan.mirror(k), k);
//!     assert_eq!(plan.mirror(plan.mirror(k)), k);
//! }
//! ```

use deco_graph::{Graph, NodeId};
use deco_local::arena::PortArena;
use std::sync::Mutex;

/// Precomputed arena geometry for one graph: per-node slot offsets and the
/// slot-level mirror table.
#[derive(Debug, Clone)]
pub struct MailboxPlan {
    /// `offsets[v] .. offsets[v+1]` is node `v`'s slot range (CSR prefix
    /// sums over degrees); `offsets[n]` is the arena length `2m`.
    offsets: Vec<usize>,
    /// `mirror[offsets[v] + j]` is the arena slot of the same edge at the
    /// other endpoint. An involution without fixed points.
    mirror: Vec<usize>,
}

impl MailboxPlan {
    /// Builds the plan for `g` in O(n + m) from the graph's precomputed
    /// CSR offsets and mirror-port table.
    pub fn new(g: &Graph) -> MailboxPlan {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        for v in g.nodes() {
            offsets.push(g.adjacency_offset(v));
        }
        offsets.push(g.degree_sum());
        let mut mirror = vec![0usize; offsets[n]];
        for v in g.nodes() {
            let base = offsets[v.index()];
            for (j, (adj, &back)) in g.adjacent(v).iter().zip(g.back_ports(v)).enumerate() {
                mirror[base + j] = offsets[adj.neighbor.index()] + back as usize;
            }
        }
        MailboxPlan { offsets, mirror }
    }

    /// Total number of slots (`2m`).
    #[inline]
    pub fn num_slots(&self) -> usize {
        *self.offsets.last().expect("offsets always has n+1 entries")
    }

    /// First slot of node `v`.
    #[inline]
    pub fn offset(&self, v: NodeId) -> usize {
        self.offsets[v.index()]
    }

    /// Slot range of node `v`.
    #[inline]
    pub fn slots(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v.index()]..self.offsets[v.index() + 1]
    }

    /// The mirror slot of arena slot `k` (same edge, other endpoint).
    #[inline]
    pub fn mirror(&self, k: usize) -> usize {
        self.mirror[k]
    }

    /// The raw offsets array (`n + 1` prefix sums).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

/// A pair of flat message arenas, swapped across rounds.
#[derive(Debug)]
pub struct DoubleBuffer<M> {
    cur: PortArena<M>,
    prev: PortArena<M>,
}

impl<M: Clone + Default> DoubleBuffer<M> {
    /// Allocates both arenas with `slots` entries, all vacant.
    pub fn new(slots: usize) -> DoubleBuffer<M> {
        DoubleBuffer {
            cur: PortArena::new(slots),
            prev: PortArena::new(slots),
        }
    }

    /// The buffer the current round writes (send) and reads (receive).
    #[inline]
    pub fn current(&self) -> &PortArena<M> {
        &self.cur
    }

    /// Mutable view of the current buffer, for the send phase.
    #[inline]
    pub fn current_mut(&mut self) -> &mut PortArena<M> {
        &mut self.cur
    }

    /// Swaps the buffers at a round boundary.
    #[inline]
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.prev);
    }

    /// Heap bytes across both arenas (the scale reports' memory column).
    pub fn heap_bytes(&self) -> usize {
        self.cur.heap_bytes() + self.prev.heap_bytes()
    }
}

/// Per-port two-round ring buffers for the barrier-free engine.
///
/// Slot `k` of the [`MailboxPlan`] names a directed port: node `v`'s port
/// `j` at `offset(v) + j`, read by `v` and written by the neighbor behind
/// it (through [`MailboxPlan::mirror`]). The async engine drops the global
/// barrier, so one arena entry per port is no longer enough — a sender may
/// already be publishing round `r + 1` while the receiver is still reading
/// round `r`. It *is* enough to keep exactly two entries per port, indexed
/// by round parity, because of the depth-1 lookahead invariant enforced by
/// the scheduler's capacity predicate (see [`crate::clock`]): a node may
/// publish round `r` only when every active neighbor has consumed round
/// `r - 2`, so the parity slot being overwritten is always dead.
///
/// Each entry is a tiny mutex-protected cell: exactly one sender writes it
/// and one receiver reads it, and the lock/unlock pair is what hands the
/// message across threads (the clock's atomics only *announce* presence —
/// see the module docs of [`crate::clock`]). The mutexes are uncontended by
/// construction except for the momentary overlap of a sender's round
/// `r + 2` write with a receiver's round-`r` read on the *other* parity.
#[derive(Debug)]
pub struct RingBuffer<M> {
    /// `slots[k]` holds the two-round ring of plan slot `k`: payload
    /// `vals[r % 2]` plus a two-bit presence mask, the per-port shape of
    /// the same dense-arena diet [`PortArena`] applies globally (an
    /// `[Option<M>; 2]` would pay the niche tag twice per port).
    slots: Vec<Mutex<ParityCell<M>>>,
}

/// One port's two-round ring: dense payloads plus a presence bit per
/// parity. A vacant parity may hold a stale payload from round `r - 2`;
/// the mask bit is authoritative.
#[derive(Debug, Default)]
struct ParityCell<M> {
    vals: [M; 2],
    mask: u8,
}

impl<M: Clone + Default> RingBuffer<M> {
    /// Allocates rings for `slots` ports (the plan's
    /// [`MailboxPlan::num_slots`]), all empty.
    pub fn new(slots: usize) -> RingBuffer<M> {
        RingBuffer {
            slots: (0..slots)
                .map(|_| Mutex::new(ParityCell::default()))
                .collect(),
        }
    }

    /// Publishes the round-`r` message for plan slot `k`, overwriting the
    /// (dead, by the depth-1 invariant) round-`r - 2` entry. `None` is a
    /// real value — "this port is silent in round `r`" — and must be
    /// written too, or the stale `r - 2` message would resurface.
    pub fn publish(&self, k: usize, r: u64, msg: Option<M>) {
        let p = (r % 2) as usize;
        let mut cell = self.slots[k].lock().expect("ring slot poisoned");
        match msg {
            Some(m) => {
                cell.vals[p] = m;
                cell.mask |= 1 << p;
            }
            None => cell.mask &= !(1 << p),
        }
    }

    /// Takes the round-`r` message of plan slot `k`. Callers must have
    /// observed the sender's round-`r` publication through the clock first.
    /// Taking (rather than cloning) keeps the slot clean for halted-sender
    /// ports, whose rings are never written again.
    pub fn take(&self, k: usize, r: u64) -> Option<M> {
        let p = (r % 2) as usize;
        let mut cell = self.slots[k].lock().expect("ring slot poisoned");
        if cell.mask & (1 << p) != 0 {
            cell.mask &= !(1 << p);
            Some(std::mem::take(&mut cell.vals[p]))
        } else {
            None
        }
    }

    /// Number of port rings.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Heap bytes of the ring storage: one mutex-protected two-parity dense
    /// cell per port.
    pub fn heap_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Mutex<ParityCell<M>>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    #[test]
    fn mirror_is_a_fixed_point_free_involution() {
        for g in [
            generators::cycle(7),
            generators::complete(6),
            generators::star(5),
            generators::random_regular(24, 5, 3),
            generators::disjoint_union(&[generators::path(4), generators::cycle(3)]),
        ] {
            let plan = MailboxPlan::new(&g);
            assert_eq!(plan.num_slots(), g.degree_sum());
            for k in 0..plan.num_slots() {
                assert_ne!(plan.mirror(k), k, "a slot never mirrors itself");
                assert_eq!(plan.mirror(plan.mirror(k)), k, "mirror is an involution");
            }
        }
    }

    #[test]
    fn mirror_connects_the_two_endpoints_of_each_edge() {
        let g = generators::random_regular(16, 4, 9);
        let plan = MailboxPlan::new(&g);
        for v in g.nodes() {
            for (j, adj) in g.adjacent(v).iter().enumerate() {
                let k = plan.offset(v) + j;
                let mk = plan.mirror(k);
                // The mirror slot lies in the neighbor's range and names the
                // same edge from the other side.
                assert!(plan.slots(adj.neighbor).contains(&mk));
                let back_port = mk - plan.offset(adj.neighbor);
                assert_eq!(g.adjacent(adj.neighbor)[back_port].edge, adj.edge);
            }
        }
    }

    #[test]
    fn ring_buffer_keeps_two_rounds_by_parity() {
        let ring: RingBuffer<u32> = RingBuffer::new(2);
        assert_eq!(ring.num_slots(), 2);
        ring.publish(0, 1, Some(10));
        ring.publish(0, 2, Some(20));
        // Both rounds coexist (different parity)…
        assert_eq!(ring.take(0, 1), Some(10));
        assert_eq!(ring.take(0, 2), Some(20));
        // …and taking empties the slot.
        assert_eq!(ring.take(0, 1), None);
    }

    #[test]
    fn ring_buffer_publishes_silence_over_stale_rounds() {
        let ring: RingBuffer<u32> = RingBuffer::new(1);
        ring.publish(0, 3, Some(7));
        // Round 5 is silent on this port; it must mask round 3's entry.
        ring.publish(0, 5, None);
        assert_eq!(ring.take(0, 5), None);
    }

    #[test]
    fn double_buffer_swaps() {
        let mut buf: DoubleBuffer<u32> = DoubleBuffer::new(3);
        buf.current_mut().set(1, 7);
        buf.swap();
        assert_eq!(buf.current().count_present(), 0);
        buf.swap();
        assert_eq!(buf.current().clone_out(1), Some(7));
    }

    #[test]
    fn ring_buffer_stale_parity_is_unobservable() {
        // A round-r+2 silence must fully mask the round-r payload even
        // though the dense cell still physically holds the stale bytes.
        let ring: RingBuffer<u32> = RingBuffer::new(1);
        ring.publish(0, 4, Some(9));
        ring.publish(0, 6, None);
        assert_eq!(ring.take(0, 6), None);
    }
}
