//! The scenario matrix: one declared source of truth for workloads.
//!
//! Correctness sweeps and benchmarks used to each hand-roll their own
//! `(graph family, size, ID assignment, seed)` combinations, which made
//! coverage impossible to audit. A [`Scenario`] bundles those choices; a
//! [`ScenarioMatrix`] enumerates the cross product of graph families ×
//! sizes × ID-assignment flavors from a single base seed.
//!
//! Seeding follows the design of ixa's random module: every random
//! quantity draws from a *named stream* ([`Scenario::stream`]) whose seed
//! is derived deterministically from `(base seed, scenario name, stream
//! label)`. Two scenarios never share a stream, adding a stream never
//! shifts an existing one, and rerunning the matrix reproduces every graph
//! and ID assignment bit for bit — on any platform (the generators and
//! hashers underneath are deterministic by construction).
//!
//! ```
//! use deco_engine::ScenarioMatrix;
//!
//! let matrix = ScenarioMatrix::smoke(7);
//! let scenario = matrix.iter().next().unwrap();
//! // Building twice reproduces the same workload bit for bit…
//! let (a, b) = (scenario.graph(), scenario.graph());
//! assert_eq!(a.edge_list(), b.edge_list());
//! assert_eq!(scenario.network(&a).ids(), scenario.network(&b).ids());
//! // …and every scenario name is unique across the matrix.
//! assert_eq!(
//!     matrix.iter().map(|s| &s.name).collect::<std::collections::HashSet<_>>().len(),
//!     matrix.len(),
//! );
//! ```

use deco_graph::{generators, Graph};
use deco_local::network::{IdAssignment, Network};
use rand::prelude::*;

/// A graph family + size, buildable from a seed.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSpec {
    /// Path `P_n`.
    Path {
        /// Number of nodes.
        n: usize,
    },
    /// Cycle `C_n`.
    Cycle {
        /// Number of nodes (≥ 3).
        n: usize,
    },
    /// Complete graph `K_n`.
    Complete {
        /// Number of nodes.
        n: usize,
    },
    /// Complete bipartite `K_{a,b}`.
    CompleteBipartite {
        /// Left side size.
        a: usize,
        /// Right side size.
        b: usize,
    },
    /// `w × h` grid.
    Grid {
        /// Width.
        w: usize,
        /// Height.
        h: usize,
    },
    /// `d`-dimensional hypercube.
    Hypercube {
        /// Dimension.
        d: u32,
    },
    /// Random `d`-regular graph on `n` nodes.
    RandomRegular {
        /// Number of nodes.
        n: usize,
        /// Degree.
        d: usize,
    },
    /// Erdős–Rényi `G(n, p)`.
    Gnp {
        /// Number of nodes.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Chung–Lu power-law graph.
    PowerLaw {
        /// Number of nodes.
        n: usize,
    },
    /// RMAT/Kronecker graph on `2^scale` nodes — the scale-out family the
    /// million-edge substrate targets; heavy-tailed degrees stress the
    /// degree-balanced chunking of every parallel engine.
    Kronecker {
        /// Log2 of the node count.
        scale: u32,
        /// Distinct-edge target per node (`edge_factor << scale` edges).
        edge_factor: usize,
    },
    /// Uniform random labelled tree.
    RandomTree {
        /// Number of nodes.
        n: usize,
    },
    /// Disconnected stress case: two independent random-regular components
    /// plus a sprinkling of isolated nodes.
    TwoClusters {
        /// Nodes per cluster.
        n: usize,
        /// Degree within each cluster.
        d: usize,
    },
    /// Barrier-free stress case: a disjoint union of many small components
    /// of mixed shapes (paths, cycles, stars, cliques) and mixed sizes,
    /// plus isolated nodes. Component-local round clocks drift the most
    /// here — every component halts on its own schedule — which makes this
    /// the showcase family for the async engine and a delivery-correctness
    /// stress for every executor.
    ManySmallComponents {
        /// Number of non-trivial components (isolated nodes come extra).
        components: usize,
        /// Largest component size; sizes are drawn from `2..=max_size`.
        max_size: usize,
    },
}

impl GraphSpec {
    /// Canonical label, used in scenario names and reports.
    pub fn label(&self) -> String {
        match self {
            GraphSpec::Path { n } => format!("path(n={n})"),
            GraphSpec::Cycle { n } => format!("cycle(n={n})"),
            GraphSpec::Complete { n } => format!("complete(n={n})"),
            GraphSpec::CompleteBipartite { a, b } => format!("bipartite(a={a},b={b})"),
            GraphSpec::Grid { w, h } => format!("grid({w}x{h})"),
            GraphSpec::Hypercube { d } => format!("hypercube(d={d})"),
            GraphSpec::RandomRegular { n, d } => format!("regular(n={n},d={d})"),
            GraphSpec::Gnp { n, p } => format!("gnp(n={n},p={p})"),
            GraphSpec::PowerLaw { n } => format!("powerlaw(n={n})"),
            GraphSpec::Kronecker { scale, edge_factor } => {
                format!("kronecker(s={scale},ef={edge_factor})")
            }
            GraphSpec::RandomTree { n } => format!("tree(n={n})"),
            GraphSpec::TwoClusters { n, d } => format!("two-clusters(n={n},d={d})"),
            GraphSpec::ManySmallComponents {
                components,
                max_size,
            } => format!("many-components(k={components},s={max_size})"),
        }
    }

    /// Builds the graph; `seed` feeds the random families and is ignored by
    /// the structured ones.
    pub fn build(&self, seed: u64) -> Graph {
        match *self {
            GraphSpec::Path { n } => generators::path(n),
            GraphSpec::Cycle { n } => generators::cycle(n),
            GraphSpec::Complete { n } => generators::complete(n),
            GraphSpec::CompleteBipartite { a, b } => generators::complete_bipartite(a, b),
            GraphSpec::Grid { w, h } => generators::grid(w, h),
            GraphSpec::Hypercube { d } => generators::hypercube(d),
            GraphSpec::RandomRegular { n, d } => generators::random_regular(n, d, seed),
            GraphSpec::Gnp { n, p } => generators::gnp(n, p, seed),
            GraphSpec::PowerLaw { n } => {
                generators::power_law(n, 2.5, (n as f64).sqrt().min(64.0), seed)
            }
            GraphSpec::Kronecker { scale, edge_factor } => {
                generators::kronecker(scale, edge_factor, seed)
            }
            GraphSpec::RandomTree { n } => generators::random_tree(n, seed),
            GraphSpec::TwoClusters { n, d } => generators::disjoint_union(&[
                generators::random_regular(n, d, seed),
                generators::random_regular(n, d, seed ^ 0xA5A5_A5A5),
                Graph::empty(3),
            ]),
            GraphSpec::ManySmallComponents {
                components,
                max_size,
            } => many_small_components(components, max_size, seed),
        }
    }
}

/// Builds the [`GraphSpec::ManySmallComponents`] family: `components`
/// small graphs of seed-drawn shape and size, one isolated node appended
/// after every third component. Deterministic: depends only on the
/// arguments (the generated topology is pinned by a digest regression
/// test, in the style of the SparseRandom ID pin — shifting it silently
/// would shift every differential sweep that covers the family).
fn many_small_components(components: usize, max_size: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_size = max_size.max(2);
    let mut parts = Vec::with_capacity(components + components / 3);
    for i in 0..components {
        let size = rng.gen_range(2..=max_size);
        let part = match rng.gen_range(0..4u32) {
            0 => generators::path(size),
            1 if size >= 3 => generators::cycle(size),
            2 => generators::star(size - 1),
            _ => generators::complete(size.min(5)),
        };
        parts.push(part);
        if i % 3 == 2 {
            parts.push(Graph::empty(1));
        }
    }
    generators::disjoint_union(&parts)
}

/// ID-assignment flavor, the matrix axis; concrete seeds are derived per
/// scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdFlavor {
    /// `IdAssignment::Sequential`.
    Sequential,
    /// `IdAssignment::Reversed`.
    Reversed,
    /// `IdAssignment::Shuffled` with a scenario-derived seed.
    Shuffled,
    /// `IdAssignment::SparseRandom` with a scenario-derived seed.
    SparseRandom,
}

impl IdFlavor {
    /// All flavors, in canonical order.
    pub const ALL: [IdFlavor; 4] = [
        IdFlavor::Sequential,
        IdFlavor::Reversed,
        IdFlavor::Shuffled,
        IdFlavor::SparseRandom,
    ];

    fn label(self) -> &'static str {
        match self {
            IdFlavor::Sequential => "seq",
            IdFlavor::Reversed => "rev",
            IdFlavor::Shuffled => "shuf",
            IdFlavor::SparseRandom => "sparse",
        }
    }
}

/// One fully specified workload: graph family × size × ID flavor, plus the
/// matrix base seed all of its random streams derive from.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique name: `<spec label>/<id flavor>`.
    pub name: String,
    /// The graph family and size.
    pub spec: GraphSpec,
    /// The ID-assignment flavor.
    pub id_flavor: IdFlavor,
    base_seed: u64,
}

impl Scenario {
    /// Creates a scenario; `base_seed` is normally supplied by the matrix.
    pub fn new(spec: GraphSpec, id_flavor: IdFlavor, base_seed: u64) -> Scenario {
        Scenario {
            name: format!("{}/{}", spec.label(), id_flavor.label()),
            spec,
            id_flavor,
            base_seed,
        }
    }

    /// The seed of this scenario's named stream `label` — an FNV-1a hash of
    /// `(base seed, scenario name, label)`. Stable across platforms and
    /// insertion orders (ixa-style named streams).
    pub fn stream_seed(&self, label: &str) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        for b in self
            .base_seed
            .to_le_bytes()
            .iter()
            .chain(self.name.as_bytes())
            .chain([0xFFu8].iter())
            .chain(label.as_bytes())
        {
            h = (h ^ u64::from(*b)).wrapping_mul(PRIME);
        }
        h
    }

    /// A fresh RNG on this scenario's named stream `label`.
    pub fn stream(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.stream_seed(label))
    }

    /// Builds the scenario's graph (stream `"graph"`).
    pub fn graph(&self) -> Graph {
        self.spec.build(self.stream_seed("graph"))
    }

    /// The concrete ID assignment (stream `"ids"` for the seeded flavors).
    pub fn id_assignment(&self) -> IdAssignment {
        match self.id_flavor {
            IdFlavor::Sequential => IdAssignment::Sequential,
            IdFlavor::Reversed => IdAssignment::Reversed,
            IdFlavor::Shuffled => IdAssignment::Shuffled(self.stream_seed("ids")),
            IdFlavor::SparseRandom => IdAssignment::SparseRandom(self.stream_seed("ids")),
        }
    }

    /// Builds the network over an already-built `graph` of this scenario.
    pub fn network<'g>(&self, graph: &'g Graph) -> Network<'g> {
        Network::new(graph, self.id_assignment())
    }
}

/// An enumerated set of scenarios — the declared coverage of a sweep.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    scenarios: Vec<Scenario>,
}

impl ScenarioMatrix {
    /// The standard matrix: every structured and random family at small and
    /// medium sizes, crossed with every ID flavor.
    pub fn standard(base_seed: u64) -> ScenarioMatrix {
        let specs = vec![
            GraphSpec::Path { n: 2 },
            GraphSpec::Path { n: 33 },
            GraphSpec::Cycle { n: 48 },
            GraphSpec::Complete { n: 13 },
            GraphSpec::CompleteBipartite { a: 7, b: 9 },
            GraphSpec::Grid { w: 8, h: 5 },
            GraphSpec::Hypercube { d: 5 },
            GraphSpec::RandomRegular { n: 64, d: 8 },
            GraphSpec::RandomRegular { n: 120, d: 16 },
            GraphSpec::Gnp { n: 80, p: 0.08 },
            GraphSpec::PowerLaw { n: 100 },
            GraphSpec::Kronecker {
                scale: 7,
                edge_factor: 4,
            },
            GraphSpec::RandomTree { n: 90 },
            GraphSpec::TwoClusters { n: 24, d: 4 },
            GraphSpec::ManySmallComponents {
                components: 18,
                max_size: 7,
            },
        ];
        ScenarioMatrix::cross(specs, base_seed)
    }

    /// A small matrix for fast smoke tests: one size per family, all ID
    /// flavors.
    pub fn smoke(base_seed: u64) -> ScenarioMatrix {
        let specs = vec![
            GraphSpec::Path { n: 6 },
            GraphSpec::Cycle { n: 9 },
            GraphSpec::Complete { n: 6 },
            GraphSpec::RandomRegular { n: 20, d: 4 },
            GraphSpec::RandomTree { n: 15 },
            GraphSpec::Kronecker {
                scale: 5,
                edge_factor: 3,
            },
            GraphSpec::TwoClusters { n: 8, d: 2 },
            GraphSpec::ManySmallComponents {
                components: 6,
                max_size: 5,
            },
        ];
        ScenarioMatrix::cross(specs, base_seed)
    }

    fn cross(specs: Vec<GraphSpec>, base_seed: u64) -> ScenarioMatrix {
        let scenarios = specs
            .into_iter()
            .flat_map(|spec| {
                IdFlavor::ALL
                    .into_iter()
                    .map(move |flavor| Scenario::new(spec.clone(), flavor, base_seed))
            })
            .collect();
        ScenarioMatrix { scenarios }
    }

    /// Iterates the scenarios in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter()
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let m = ScenarioMatrix::standard(7);
        let mut names: Vec<&str> = m.iter().map(|s| s.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "scenario names must be unique");
    }

    #[test]
    fn streams_are_independent_and_reproducible() {
        let m = ScenarioMatrix::smoke(11);
        let s = m.iter().next().unwrap();
        assert_eq!(s.stream_seed("graph"), s.stream_seed("graph"));
        assert_ne!(s.stream_seed("graph"), s.stream_seed("ids"));
        // Different scenarios get different streams for the same label.
        let t = m.iter().nth(5).unwrap();
        assert_ne!(s.stream_seed("graph"), t.stream_seed("graph"));
        // Different base seeds shift every stream.
        let m2 = ScenarioMatrix::smoke(12);
        let s2 = m2.iter().next().unwrap();
        assert_ne!(s.stream_seed("graph"), s2.stream_seed("graph"));
    }

    #[test]
    fn graphs_rebuild_identically() {
        let m = ScenarioMatrix::smoke(3);
        for s in m.iter() {
            let a = s.graph();
            let b = s.graph();
            assert_eq!(a.edge_list(), b.edge_list(), "{}", s.name);
            let na = s.network(&a);
            let nb = s.network(&b);
            assert_eq!(na.ids(), nb.ids(), "{}", s.name);
        }
    }

    #[test]
    fn two_clusters_is_disconnected_with_isolated_nodes() {
        let spec = GraphSpec::TwoClusters { n: 8, d: 2 };
        let g = spec.build(5);
        assert_eq!(g.num_nodes(), 19);
        // The three trailing nodes are isolated.
        for v in 16..19usize {
            assert_eq!(g.degree(deco_graph::NodeId::from(v)), 0);
        }
    }

    #[test]
    fn many_small_components_is_deterministic_and_disconnected() {
        let spec = GraphSpec::ManySmallComponents {
            components: 9,
            max_size: 6,
        };
        let a = spec.build(11);
        let b = spec.build(11);
        assert_eq!(a.edge_list(), b.edge_list(), "seed determines topology");
        assert_ne!(
            a.edge_list(),
            spec.build(12).edge_list(),
            "different seeds differ"
        );
        // One isolated node per three components, by construction.
        let isolated = a.nodes().filter(|&v| a.degree(v) == 0).count();
        assert_eq!(isolated, 3);
        // 9 drawn components + 3 isolated nodes.
        let (_, count) = deco_graph::traversal::connected_components(&a);
        assert_eq!(count, 12);
    }

    #[test]
    fn standard_matrix_covers_all_flavors() {
        let m = ScenarioMatrix::standard(1);
        assert_eq!(m.len() % IdFlavor::ALL.len(), 0);
        assert!(m.len() >= 40, "matrix should be broad, got {}", m.len());
        assert!(!m.is_empty());
    }
}
