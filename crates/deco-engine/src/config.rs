//! Structured engine configuration from the environment.
//!
//! CI pins its executor matrix through three environment variables, all
//! parsed here and nowhere else:
//!
//! | variable | values | meaning |
//! |---|---|---|
//! | `DECO_ENGINE_THREADS` | unset/empty/`0` = auto, else a thread count | worker threads (threads *per shard* when sharding) |
//! | `DECO_ENGINE_ASYNC` | unset/empty/`0` = barrier, `1` = async | round substrate of the parallel engine |
//! | `DECO_ENGINE_SHARDS` | unset/empty/`0` = unsharded, else a shard count | partition the network over that many shards |
//!
//! Malformed values are **structured errors**, never silent fallbacks and
//! never bare panics: a typo in a CI matrix cell must fail the run with
//! the variable name and the offending value, not quietly un-pin the
//! matrix (the historical behavior was a panic mid-parse; callers now get
//! an [`EngineEnvError`] they can report or escalate themselves).
//!
//! ```
//! use deco_engine::config::{parse_shards, EngineConfig};
//!
//! // Pure parsers back every variable; malformed input is a value.
//! assert_eq!(parse_shards("4").unwrap(), 4);
//! let err = parse_shards("many").unwrap_err();
//! assert_eq!(err.var, "DECO_ENGINE_SHARDS");
//! assert_eq!(err.value, "many");
//!
//! // In an environment with none of the variables set, the config is the
//! // auto default.
//! if std::env::var_os("DECO_ENGINE_THREADS").is_none()
//!     && std::env::var_os("DECO_ENGINE_ASYNC").is_none()
//!     && std::env::var_os("DECO_ENGINE_SHARDS").is_none()
//! {
//!     let cfg = EngineConfig::from_env().unwrap();
//!     assert_eq!(cfg.shards, 0);
//! }
//! ```

use crate::engine::{EngineMode, ParallelExecutor};
use crate::shard::ShardedExecutor;
use deco_local::network::Network;
use deco_local::runner::{NodeProgram, Protocol, RunError, RunOutcome};
use deco_local::Executor;

/// `DECO_ENGINE_THREADS` — worker thread count (0 = auto).
pub const ENV_THREADS: &str = "DECO_ENGINE_THREADS";
/// `DECO_ENGINE_ASYNC` — round substrate of the parallel engine.
pub const ENV_ASYNC: &str = "DECO_ENGINE_ASYNC";
/// `DECO_ENGINE_SHARDS` — shard count (0 = unsharded).
pub const ENV_SHARDS: &str = "DECO_ENGINE_SHARDS";

/// A malformed engine environment variable: which variable, what it held,
/// and what it accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineEnvError {
    /// The environment variable that failed to parse.
    pub var: &'static str,
    /// The offending value, verbatim.
    pub value: String,
    /// Human-readable description of the accepted values.
    pub expected: &'static str,
}

impl std::fmt::Display for EngineEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} must be {}, got {:?}",
            self.var, self.expected, self.value
        )
    }
}

impl std::error::Error for EngineEnvError {}

/// Parses a `DECO_ENGINE_THREADS` value: unset callers pass `""`; empty or
/// `0` means auto (returned as 0).
///
/// # Errors
///
/// [`EngineEnvError`] when the value is not a number.
pub fn parse_threads(raw: &str) -> Result<usize, EngineEnvError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(0);
    }
    raw.parse().map_err(|_| EngineEnvError {
        var: ENV_THREADS,
        value: raw.to_string(),
        expected: "a thread count (0 or empty = auto)",
    })
}

/// Parses a `DECO_ENGINE_ASYNC` value: empty or `0` = barrier, `1` =
/// async.
///
/// # Errors
///
/// [`EngineEnvError`] on anything else.
pub fn parse_mode(raw: &str) -> Result<EngineMode, EngineEnvError> {
    match raw.trim() {
        "" | "0" => Ok(EngineMode::Barrier),
        "1" => Ok(EngineMode::Async),
        other => Err(EngineEnvError {
            var: ENV_ASYNC,
            value: other.to_string(),
            expected: "0 or 1",
        }),
    }
}

/// Parses a `DECO_ENGINE_SHARDS` value: empty or `0` = unsharded
/// (returned as 0), else the shard count.
///
/// # Errors
///
/// [`EngineEnvError`] when the value is not a number.
pub fn parse_shards(raw: &str) -> Result<usize, EngineEnvError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(0);
    }
    raw.parse().map_err(|_| EngineEnvError {
        var: ENV_SHARDS,
        value: raw.to_string(),
        expected: "a shard count (0 or empty = unsharded)",
    })
}

fn env_raw(var: &'static str) -> String {
    std::env::var(var).unwrap_or_default()
}

/// The engine configuration CI and test harnesses pin via the
/// environment. Plain data; turn it into an executor with
/// [`EngineConfig::selection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (0 = auto). When sharding, threads *per shard*
    /// (0 = 1).
    pub threads: usize,
    /// Round substrate of the parallel engine (ignored when sharding; the
    /// sharded engine's cross-shard exchange is clock-driven by design).
    pub mode: EngineMode,
    /// Shard count (0 = unsharded).
    pub shards: usize,
}

impl EngineConfig {
    /// Reads and validates every engine variable from the environment.
    ///
    /// # Errors
    ///
    /// The first [`EngineEnvError`] among the malformed variables, with
    /// the variable name and the offending value.
    pub fn from_env() -> Result<EngineConfig, EngineEnvError> {
        Ok(EngineConfig {
            threads: parse_threads(&env_raw(ENV_THREADS))?,
            mode: parse_mode(&env_raw(ENV_ASYNC))?,
            shards: parse_shards(&env_raw(ENV_SHARDS))?,
        })
    }

    /// The executor this configuration selects: the sharded engine when
    /// `shards > 0`, otherwise the parallel engine in the configured mode.
    pub fn selection(&self) -> EngineSelection {
        if self.shards > 0 {
            EngineSelection::Sharded(
                ShardedExecutor::new(self.shards).with_threads_per_shard(self.threads.max(1)),
            )
        } else {
            let exec = if self.threads == 0 {
                ParallelExecutor::auto()
            } else {
                ParallelExecutor::with_threads(self.threads)
            };
            EngineSelection::Parallel(exec.with_mode(self.mode))
        }
    }
}

/// An environment-selected executor: one type that is whichever engine the
/// `DECO_ENGINE_*` variables picked, so differential suites can put "the
/// CI-pinned engine" in their lineup without committing to a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSelection {
    /// The in-process parallel engine (barrier or async substrate).
    Parallel(ParallelExecutor),
    /// The sharded engine.
    Sharded(ShardedExecutor),
}

impl EngineSelection {
    /// Shorthand for `EngineConfig::from_env()?.selection()`.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineEnvError`] from the malformed variable.
    pub fn from_env() -> Result<EngineSelection, EngineEnvError> {
        Ok(EngineConfig::from_env()?.selection())
    }
}

impl Executor for EngineSelection {
    fn execute<P>(
        &self,
        net: &Network<'_>,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<RunOutcome<<P::Program as NodeProgram>::Output>, RunError>
    where
        P: Protocol,
        P::Program: Send,
        <P::Program as NodeProgram>::Msg: Send + Sync,
        <P::Program as NodeProgram>::Output: Send,
    {
        match self {
            EngineSelection::Parallel(e) => e.execute(net, protocol, max_rounds),
            EngineSelection::Sharded(e) => e.execute(net, protocol, max_rounds),
        }
    }

    fn execute_branches<T, F>(&self, weights: &[usize], run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self {
            EngineSelection::Parallel(e) => e.execute_branches(weights, run),
            EngineSelection::Sharded(e) => e.execute_branches(weights, run),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_parsing_accepts_auto_spellings() {
        assert_eq!(parse_threads("").unwrap(), 0);
        assert_eq!(parse_threads(" 0 ").unwrap(), 0);
        assert_eq!(parse_threads("8").unwrap(), 8);
    }

    #[test]
    fn mode_parsing_is_strict() {
        assert_eq!(parse_mode("").unwrap(), EngineMode::Barrier);
        assert_eq!(parse_mode("0").unwrap(), EngineMode::Barrier);
        assert_eq!(parse_mode(" 1\n").unwrap(), EngineMode::Async);
        let err = parse_mode("yes").unwrap_err();
        assert_eq!(err.var, ENV_ASYNC);
        assert_eq!(err.value, "yes");
        assert!(err.to_string().contains("DECO_ENGINE_ASYNC"));
        assert!(err.to_string().contains("\"yes\""));
    }

    #[test]
    fn shard_parsing_reports_the_offending_value() {
        assert_eq!(parse_shards("").unwrap(), 0);
        assert_eq!(parse_shards("4").unwrap(), 4);
        let err = parse_shards("-2").unwrap_err();
        assert_eq!(err.var, ENV_SHARDS);
        assert_eq!(err.value, "-2");
    }

    #[test]
    fn malformed_threads_is_an_error_value_not_a_panic() {
        let err = parse_threads("three").unwrap_err();
        assert_eq!(err.var, ENV_THREADS);
        assert_eq!(
            err.to_string(),
            "DECO_ENGINE_THREADS must be a thread count (0 or empty = auto), got \"three\""
        );
    }

    #[test]
    fn selection_routes_shards_to_the_sharded_engine() {
        let cfg = EngineConfig {
            threads: 2,
            mode: EngineMode::Barrier,
            shards: 3,
        };
        match cfg.selection() {
            EngineSelection::Sharded(e) => {
                assert_eq!(e.shards(), 3);
                assert_eq!(e.threads_per_shard(), 2);
            }
            other => panic!("expected sharded, got {other:?}"),
        }
        let cfg = EngineConfig {
            threads: 0,
            mode: EngineMode::Async,
            shards: 0,
        };
        match cfg.selection() {
            EngineSelection::Parallel(e) => assert_eq!(e.mode(), EngineMode::Async),
            other => panic!("expected parallel, got {other:?}"),
        }
    }

    #[test]
    fn selection_executes_like_any_executor() {
        use crate::protocols::FloodMax;
        use deco_graph::generators;
        use deco_local::network::IdAssignment;
        use deco_local::SerialExecutor;

        let g = generators::cycle(20);
        let net = Network::new(&g, IdAssignment::Shuffled(2));
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 3 }, 20)
            .unwrap();
        for sel in [
            EngineSelection::Parallel(ParallelExecutor::with_threads(2)),
            EngineSelection::Sharded(ShardedExecutor::new(2)),
        ] {
            let out = sel.execute(&net, &FloodMax { radius: 3 }, 20).unwrap();
            assert_eq!(serial.outputs, out.outputs);
            assert_eq!(sel.execute_branches(&[1, 1, 1], |i| i), vec![0, 1, 2]);
        }
    }
}
