//! Structured engine configuration from the environment.
//!
//! CI pins its executor matrix through four environment variables, all
//! parsed here and nowhere else:
//!
//! | variable | values | meaning |
//! |---|---|---|
//! | `DECO_ENGINE_THREADS` | unset/empty/`0` = auto, else a thread count | worker threads (threads *per shard* when sharding) |
//! | `DECO_ENGINE_ASYNC` | unset/empty/`0` = barrier, `1` = async | round substrate of the parallel engine |
//! | `DECO_ENGINE_SHARDS` | unset/empty/`0` = unsharded, else a shard count | partition the network over that many shards |
//! | `DECO_SHARD_TRANSPORT` | unset/empty/`threads`, `channel`, `process`, `tcp`, `uds` | which byte pipe the *framed* shard entry points use |
//! | `DECO_SHARD_TIMEOUT_MS` | unset/empty = 5000, `0` = no deadline, else milliseconds | per-frame receive deadline of the framed coordinator |
//! | `DECO_TRACE` | unset/empty/`0`/`off`, `ring`, `jsonl` | trace sink ([`deco_trace`]); `jsonl` writes to `DECO_TRACE_PATH` (default `trace.jsonl`) |
//!
//! Malformed values are **structured errors**, never silent fallbacks and
//! never bare panics: a typo in a CI matrix cell must fail the run with
//! the variable name and the offending value, not quietly un-pin the
//! matrix (the historical behavior was a panic mid-parse; callers now get
//! an [`EngineEnvError`] they can report or escalate themselves).
//!
//! ```
//! use deco_engine::config::{parse_shards, EngineConfig};
//!
//! // Pure parsers back every variable; malformed input is a value.
//! assert_eq!(parse_shards("4").unwrap(), 4);
//! let err = parse_shards("many").unwrap_err();
//! assert_eq!(err.var, "DECO_ENGINE_SHARDS");
//! assert_eq!(err.value, "many");
//!
//! // In an environment with none of the variables set, the config is the
//! // auto default.
//! if std::env::var_os("DECO_ENGINE_THREADS").is_none()
//!     && std::env::var_os("DECO_ENGINE_ASYNC").is_none()
//!     && std::env::var_os("DECO_ENGINE_SHARDS").is_none()
//! {
//!     let cfg = EngineConfig::from_env().unwrap();
//!     assert_eq!(cfg.shards, 0);
//! }
//! ```

use crate::engine::{EngineMode, ParallelExecutor};
use crate::shard::ShardedExecutor;
use deco_local::network::Network;
use deco_local::runner::{NodeProgram, Protocol, RunError, RunOutcome};
use deco_local::Executor;

/// `DECO_ENGINE_THREADS` — worker thread count (0 = auto).
pub const ENV_THREADS: &str = "DECO_ENGINE_THREADS";
/// `DECO_ENGINE_ASYNC` — round substrate of the parallel engine.
pub const ENV_ASYNC: &str = "DECO_ENGINE_ASYNC";
/// `DECO_ENGINE_SHARDS` — shard count (0 = unsharded).
pub const ENV_SHARDS: &str = "DECO_ENGINE_SHARDS";
/// `DECO_SHARD_TRANSPORT` — byte pipe of the framed shard layer.
pub const ENV_TRANSPORT: &str = "DECO_SHARD_TRANSPORT";
/// `DECO_SHARD_TIMEOUT_MS` — per-frame receive deadline of the framed
/// coordinator, in milliseconds (empty = 5000, `0` = no deadline).
pub const ENV_SHARD_TIMEOUT: &str = "DECO_SHARD_TIMEOUT_MS";
/// Default per-frame deadline when `DECO_SHARD_TIMEOUT_MS` is unset.
pub const DEFAULT_SHARD_TIMEOUT_MS: u64 = 5_000;
/// `DECO_TRACE` — trace sink selection (`off` / `ring` / `jsonl`).
pub const ENV_TRACE: &str = "DECO_TRACE";
/// `DECO_TRACE_PATH` — JSONL output path (consumed by `deco-trace` at
/// install time; re-exported here so the env-var surface is listed in one
/// place).
pub const ENV_TRACE_PATH: &str = deco_trace::ENV_TRACE_PATH;

/// Which substrate carries cross-shard traffic. `Threads` is the typed
/// in-process engine (shard workers are threads exchanging typed messages
/// directly — the only substrate that can run *arbitrary* protocols, so
/// [`crate::shard::ShardedExecutor::execute`] always uses it). The rest
/// select the byte pipe that framed entry points
/// ([`crate::shard::framed::run_framed`], which runs *named*
/// [`crate::shard::framed::ProtocolSpec`] protocols) should speak:
/// in-process `mpsc` workers, `deco-shardd` child processes over stdio, or
/// `deco-shardd` workers dialing in over TCP / Unix-domain sockets — the
/// multi-host shape. The choice is carried on the executor so descriptors,
/// experiment reports, and the CI matrix all attribute runs to the right
/// pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardTransportKind {
    /// Typed in-process shard threads (no framed layer).
    #[default]
    Threads,
    /// Framed workers as in-process threads over `mpsc` byte channels.
    Channel,
    /// Framed workers as `deco-shardd` child processes over stdio.
    Process,
    /// Framed workers dialing in over TCP (`deco-shardd --connect`).
    Tcp,
    /// Framed workers dialing in over Unix-domain sockets
    /// (`deco-shardd --connect-uds`).
    Uds,
}

impl std::fmt::Display for ShardTransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShardTransportKind::Threads => "threads",
            ShardTransportKind::Channel => "channel",
            ShardTransportKind::Process => "process",
            ShardTransportKind::Tcp => "tcp",
            ShardTransportKind::Uds => "uds",
        })
    }
}

/// A malformed engine environment variable: which variable, what it held,
/// and what it accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineEnvError {
    /// The environment variable that failed to parse.
    pub var: &'static str,
    /// The offending value, verbatim.
    pub value: String,
    /// Human-readable description of the accepted values.
    pub expected: &'static str,
}

impl std::fmt::Display for EngineEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} must be {}, got {:?}",
            self.var, self.expected, self.value
        )
    }
}

impl std::error::Error for EngineEnvError {}

/// Parses a `DECO_ENGINE_THREADS` value: unset callers pass `""`; empty or
/// `0` means auto (returned as 0).
///
/// # Errors
///
/// [`EngineEnvError`] when the value is not a number.
pub fn parse_threads(raw: &str) -> Result<usize, EngineEnvError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(0);
    }
    raw.parse().map_err(|_| EngineEnvError {
        var: ENV_THREADS,
        value: raw.to_string(),
        expected: "a thread count (0 or empty = auto)",
    })
}

/// Parses a `DECO_ENGINE_ASYNC` value: empty or `0` = barrier, `1` =
/// async.
///
/// # Errors
///
/// [`EngineEnvError`] on anything else.
pub fn parse_mode(raw: &str) -> Result<EngineMode, EngineEnvError> {
    match raw.trim() {
        "" | "0" => Ok(EngineMode::Barrier),
        "1" => Ok(EngineMode::Async),
        other => Err(EngineEnvError {
            var: ENV_ASYNC,
            value: other.to_string(),
            expected: "0 or 1",
        }),
    }
}

/// Parses a `DECO_ENGINE_SHARDS` value: empty or `0` = unsharded
/// (returned as 0), else the shard count.
///
/// # Errors
///
/// [`EngineEnvError`] when the value is not a number.
pub fn parse_shards(raw: &str) -> Result<usize, EngineEnvError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(0);
    }
    raw.parse().map_err(|_| EngineEnvError {
        var: ENV_SHARDS,
        value: raw.to_string(),
        expected: "a shard count (0 or empty = unsharded)",
    })
}

/// Parses a `DECO_SHARD_TRANSPORT` value: empty or `threads` = the typed
/// in-process substrate, `channel` / `process` / `tcp` / `uds` = the
/// framed byte pipes.
///
/// # Errors
///
/// [`EngineEnvError`] on anything else.
pub fn parse_transport(raw: &str) -> Result<ShardTransportKind, EngineEnvError> {
    match raw.trim() {
        "" | "threads" => Ok(ShardTransportKind::Threads),
        "channel" => Ok(ShardTransportKind::Channel),
        "process" => Ok(ShardTransportKind::Process),
        "tcp" => Ok(ShardTransportKind::Tcp),
        "uds" => Ok(ShardTransportKind::Uds),
        other => Err(EngineEnvError {
            var: ENV_TRANSPORT,
            value: other.to_string(),
            expected: "threads, channel, process, tcp, or uds (empty = threads)",
        }),
    }
}

/// Parses a `DECO_SHARD_TIMEOUT_MS` value: `None` when empty (callers fall
/// back to [`DEFAULT_SHARD_TIMEOUT_MS`]), `Some(0)` = no deadline, else
/// the per-frame deadline in milliseconds.
///
/// # Errors
///
/// [`EngineEnvError`] when the value is not a non-negative integer.
pub fn parse_timeout_ms(raw: &str) -> Result<Option<u64>, EngineEnvError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(None);
    }
    raw.parse().map(Some).map_err(|_| EngineEnvError {
        var: ENV_SHARD_TIMEOUT,
        value: raw.to_string(),
        expected: "a per-frame deadline in milliseconds (0 = no deadline, empty = 5000)",
    })
}

/// Parses a `DECO_TRACE` value: empty, `0`, or `off` = tracing disabled,
/// `ring` = in-memory ring sink, `jsonl` = JSONL file sink.
///
/// # Errors
///
/// [`EngineEnvError`] on anything else.
pub fn parse_trace(raw: &str) -> Result<deco_trace::TraceMode, EngineEnvError> {
    match raw.trim() {
        "" | "0" | "off" => Ok(deco_trace::TraceMode::Off),
        "ring" => Ok(deco_trace::TraceMode::Ring),
        "jsonl" => Ok(deco_trace::TraceMode::Jsonl),
        other => Err(EngineEnvError {
            var: ENV_TRACE,
            value: other.to_string(),
            expected: "off, ring, or jsonl (empty = off)",
        }),
    }
}

fn env_raw(var: &'static str) -> String {
    std::env::var(var).unwrap_or_default()
}

/// The engine configuration CI and test harnesses pin via the
/// environment. Plain data; turn it into an executor with
/// [`EngineConfig::selection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (0 = auto). When sharding, threads *per shard*
    /// (0 = 1).
    pub threads: usize,
    /// Round substrate of the parallel engine (ignored when sharding; the
    /// sharded engine's cross-shard exchange is clock-driven by design).
    pub mode: EngineMode,
    /// Shard count (0 = unsharded).
    pub shards: usize,
    /// Cross-shard transport preference (ignored when unsharded).
    pub transport: ShardTransportKind,
}

impl EngineConfig {
    /// Reads and validates every engine variable from the environment.
    ///
    /// # Errors
    ///
    /// The first [`EngineEnvError`] among the malformed variables, with
    /// the variable name and the offending value.
    pub fn from_env() -> Result<EngineConfig, EngineEnvError> {
        Ok(EngineConfig {
            threads: parse_threads(&env_raw(ENV_THREADS))?,
            mode: parse_mode(&env_raw(ENV_ASYNC))?,
            shards: parse_shards(&env_raw(ENV_SHARDS))?,
            transport: parse_transport(&env_raw(ENV_TRANSPORT))?,
        })
    }

    /// The executor this configuration selects: the sharded engine when
    /// `shards > 0`, otherwise the parallel engine in the configured mode.
    pub fn selection(&self) -> EngineSelection {
        if self.shards > 0 {
            EngineSelection::Sharded(
                ShardedExecutor::new(self.shards)
                    .with_threads_per_shard(self.threads.max(1))
                    .with_transport(self.transport),
            )
        } else {
            let exec = if self.threads == 0 {
                ParallelExecutor::auto()
            } else {
                ParallelExecutor::with_threads(self.threads)
            };
            EngineSelection::Parallel(exec.with_mode(self.mode))
        }
    }
}

/// An environment-selected executor: one type that is whichever engine the
/// `DECO_ENGINE_*` variables picked, so differential suites can put "the
/// CI-pinned engine" in their lineup without committing to a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSelection {
    /// The in-process parallel engine (barrier or async substrate).
    Parallel(ParallelExecutor),
    /// The sharded engine.
    Sharded(ShardedExecutor),
}

impl EngineSelection {
    /// Shorthand for `EngineConfig::from_env()?.selection()`.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineEnvError`] from the malformed variable.
    pub fn from_env() -> Result<EngineSelection, EngineEnvError> {
        Ok(EngineConfig::from_env()?.selection())
    }
}

/// The stable one-line engine descriptor, embedded in run reports and
/// experiment table headers and parsed back by the [`std::str::FromStr`] impl:
///
/// * `barrier(threads=2)` / `async(threads=auto)` — the parallel engine,
///   named by its round substrate (`threads=auto` is the hardware default);
/// * `sharded(shards=4,threads=2,transport=process)` — the sharded engine
///   with its threads-per-shard and cross-shard transport.
///
/// The format is an API: tooling that attributes measurements to engines
/// keys on these strings, and the round-trip test pins them.
impl std::fmt::Display for EngineSelection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineSelection::Parallel(e) => {
                let substrate = match e.mode() {
                    EngineMode::Barrier => "barrier",
                    EngineMode::Async => "async",
                };
                write!(f, "{substrate}(threads={})", Threads(e.threads()))
            }
            EngineSelection::Sharded(e) => write!(
                f,
                "sharded(shards={},threads={},transport={})",
                e.shards(),
                e.threads_per_shard(),
                e.transport()
            ),
        }
    }
}

/// Renders a thread request (0 = `auto`).
struct Threads(usize);

impl std::fmt::Display for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == 0 {
            f.write_str("auto")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// Error parsing an engine descriptor back into an [`EngineSelection`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescriptorParseError {
    /// The descriptor that failed to parse, verbatim.
    pub descriptor: String,
}

impl std::fmt::Display for DescriptorParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecognized engine descriptor {:?} (expected barrier(threads=N), \
             async(threads=N), or sharded(shards=N,threads=N,transport=T))",
            self.descriptor
        )
    }
}

impl std::error::Error for DescriptorParseError {}

/// Splits `descriptor` as `head(k1=v1,k2=v2,…)` and returns the head and
/// the exact `key=` values requested, or `None` on any shape mismatch.
fn parse_fields<'a, const N: usize>(
    descriptor: &'a str,
    keys: [&str; N],
) -> Option<(&'a str, [&'a str; N])> {
    let open = descriptor.find('(')?;
    let body = descriptor[open..].strip_prefix('(')?.strip_suffix(')')?;
    let head = &descriptor[..open];
    let parts: Vec<&str> = body.split(',').collect();
    if parts.len() != N {
        return None;
    }
    let mut values = [""; N];
    for (slot, (part, key)) in values.iter_mut().zip(parts.iter().zip(keys)) {
        *slot = part.strip_prefix(key)?.strip_prefix('=')?;
    }
    Some((head, values))
}

fn parse_thread_request(raw: &str) -> Option<usize> {
    if raw == "auto" {
        Some(0)
    } else {
        raw.parse().ok().filter(|&t| t > 0)
    }
}

impl std::str::FromStr for EngineSelection {
    type Err = DescriptorParseError;

    fn from_str(s: &str) -> Result<EngineSelection, DescriptorParseError> {
        let err = || DescriptorParseError {
            descriptor: s.to_string(),
        };
        if let Some((head, [threads])) = parse_fields(s, ["threads"]) {
            let mode = match head {
                "barrier" => EngineMode::Barrier,
                "async" => EngineMode::Async,
                _ => return Err(err()),
            };
            let exec = match parse_thread_request(threads).ok_or_else(err)? {
                0 => ParallelExecutor::auto(),
                t => ParallelExecutor::with_threads(t),
            };
            return Ok(EngineSelection::Parallel(exec.with_mode(mode)));
        }
        if let Some(("sharded", [shards, threads, transport])) =
            parse_fields(s, ["shards", "threads", "transport"])
        {
            let shards: usize = shards.parse().ok().filter(|&n| n > 0).ok_or_else(err)?;
            let threads: usize = threads.parse().ok().filter(|&t| t > 0).ok_or_else(err)?;
            let transport = parse_transport(transport).map_err(|_| err())?;
            return Ok(EngineSelection::Sharded(
                ShardedExecutor::new(shards)
                    .with_threads_per_shard(threads)
                    .with_transport(transport),
            ));
        }
        Err(err())
    }
}

impl Executor for EngineSelection {
    fn execute<P>(
        &self,
        net: &Network<'_>,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<RunOutcome<<P::Program as NodeProgram>::Output>, RunError>
    where
        P: Protocol,
        P::Program: Send,
        <P::Program as NodeProgram>::Msg: Send + Sync,
        <P::Program as NodeProgram>::Output: Send,
    {
        match self {
            EngineSelection::Parallel(e) => e.execute(net, protocol, max_rounds),
            EngineSelection::Sharded(e) => e.execute(net, protocol, max_rounds),
        }
    }

    fn execute_branches<T, F>(&self, weights: &[usize], run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self {
            EngineSelection::Parallel(e) => e.execute_branches(weights, run),
            EngineSelection::Sharded(e) => e.execute_branches(weights, run),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_parsing_accepts_auto_spellings() {
        assert_eq!(parse_threads("").unwrap(), 0);
        assert_eq!(parse_threads(" 0 ").unwrap(), 0);
        assert_eq!(parse_threads("8").unwrap(), 8);
    }

    #[test]
    fn mode_parsing_is_strict() {
        assert_eq!(parse_mode("").unwrap(), EngineMode::Barrier);
        assert_eq!(parse_mode("0").unwrap(), EngineMode::Barrier);
        assert_eq!(parse_mode(" 1\n").unwrap(), EngineMode::Async);
        let err = parse_mode("yes").unwrap_err();
        assert_eq!(err.var, ENV_ASYNC);
        assert_eq!(err.value, "yes");
        assert!(err.to_string().contains("DECO_ENGINE_ASYNC"));
        assert!(err.to_string().contains("\"yes\""));
    }

    #[test]
    fn shard_parsing_reports_the_offending_value() {
        assert_eq!(parse_shards("").unwrap(), 0);
        assert_eq!(parse_shards("4").unwrap(), 4);
        let err = parse_shards("-2").unwrap_err();
        assert_eq!(err.var, ENV_SHARDS);
        assert_eq!(err.value, "-2");
    }

    #[test]
    fn malformed_threads_is_an_error_value_not_a_panic() {
        let err = parse_threads("three").unwrap_err();
        assert_eq!(err.var, ENV_THREADS);
        assert_eq!(
            err.to_string(),
            "DECO_ENGINE_THREADS must be a thread count (0 or empty = auto), got \"three\""
        );
    }

    #[test]
    fn selection_routes_shards_to_the_sharded_engine() {
        let cfg = EngineConfig {
            threads: 2,
            mode: EngineMode::Barrier,
            shards: 3,
            transport: ShardTransportKind::Process,
        };
        match cfg.selection() {
            EngineSelection::Sharded(e) => {
                assert_eq!(e.shards(), 3);
                assert_eq!(e.threads_per_shard(), 2);
                assert_eq!(e.transport(), ShardTransportKind::Process);
            }
            other => panic!("expected sharded, got {other:?}"),
        }
        let cfg = EngineConfig {
            threads: 0,
            mode: EngineMode::Async,
            shards: 0,
            transport: ShardTransportKind::Threads,
        };
        match cfg.selection() {
            EngineSelection::Parallel(e) => assert_eq!(e.mode(), EngineMode::Async),
            other => panic!("expected parallel, got {other:?}"),
        }
    }

    #[test]
    fn transport_parsing_is_strict() {
        assert_eq!(parse_transport("").unwrap(), ShardTransportKind::Threads);
        assert_eq!(
            parse_transport("threads").unwrap(),
            ShardTransportKind::Threads
        );
        assert_eq!(
            parse_transport(" channel ").unwrap(),
            ShardTransportKind::Channel
        );
        assert_eq!(
            parse_transport("process").unwrap(),
            ShardTransportKind::Process
        );
        assert_eq!(parse_transport("tcp").unwrap(), ShardTransportKind::Tcp);
        assert_eq!(parse_transport(" uds ").unwrap(), ShardTransportKind::Uds);
        let err = parse_transport("smoke-signals").unwrap_err();
        assert_eq!(err.var, ENV_TRANSPORT);
        assert_eq!(err.value, "smoke-signals");
        assert!(err.expected.contains("tcp"));
    }

    #[test]
    fn timeout_parsing_is_strict() {
        assert_eq!(parse_timeout_ms("").unwrap(), None);
        assert_eq!(parse_timeout_ms(" \n").unwrap(), None);
        assert_eq!(parse_timeout_ms("0").unwrap(), Some(0));
        assert_eq!(parse_timeout_ms(" 250 ").unwrap(), Some(250));
        for bad in ["soon", "-5", "1.5", "100ms"] {
            let err = parse_timeout_ms(bad).unwrap_err();
            assert_eq!(err.var, ENV_SHARD_TIMEOUT, "{bad}");
            assert_eq!(err.value, bad.trim(), "{bad}");
            assert!(err.to_string().contains("DECO_SHARD_TIMEOUT_MS"), "{bad}");
        }
    }

    #[test]
    fn trace_parsing_accepts_every_documented_spelling() {
        assert_eq!(parse_trace("").unwrap(), deco_trace::TraceMode::Off);
        assert_eq!(parse_trace("0").unwrap(), deco_trace::TraceMode::Off);
        assert_eq!(parse_trace(" off ").unwrap(), deco_trace::TraceMode::Off);
        assert_eq!(parse_trace("ring").unwrap(), deco_trace::TraceMode::Ring);
        assert_eq!(
            parse_trace("jsonl\n").unwrap(),
            deco_trace::TraceMode::Jsonl
        );
    }

    #[test]
    fn malformed_trace_values_are_structured_errors() {
        // Every malformed shape: wrong word, case drift, numbers other
        // than 0, trailing garbage, file-path-like values.
        for bad in [
            "on",
            "1",
            "true",
            "JSONL",
            "Ring",
            "jsonl,ring",
            "jsonl trace.jsonl",
        ] {
            let err = parse_trace(bad).unwrap_err();
            assert_eq!(err.var, ENV_TRACE, "{bad}");
            assert_eq!(err.value, bad.trim(), "{bad}");
            assert_eq!(err.expected, "off, ring, or jsonl (empty = off)");
            assert_eq!(
                err.to_string(),
                format!(
                    "DECO_TRACE must be off, ring, or jsonl (empty = off), got {:?}",
                    bad.trim()
                )
            );
        }
    }

    #[test]
    fn descriptors_are_stable() {
        assert_eq!(
            EngineSelection::Parallel(ParallelExecutor::auto()).to_string(),
            "barrier(threads=auto)"
        );
        assert_eq!(
            EngineSelection::Parallel(
                ParallelExecutor::with_threads(2).with_mode(EngineMode::Async)
            )
            .to_string(),
            "async(threads=2)"
        );
        assert_eq!(
            EngineSelection::Sharded(
                ShardedExecutor::new(4)
                    .with_threads_per_shard(2)
                    .with_transport(ShardTransportKind::Process)
            )
            .to_string(),
            "sharded(shards=4,threads=2,transport=process)"
        );
    }

    #[test]
    fn descriptors_round_trip() {
        let lineup = [
            EngineSelection::Parallel(ParallelExecutor::auto()),
            EngineSelection::Parallel(ParallelExecutor::with_threads(1)),
            EngineSelection::Parallel(
                ParallelExecutor::with_threads(4).with_mode(EngineMode::Async),
            ),
            EngineSelection::Parallel(ParallelExecutor::auto().with_mode(EngineMode::Async)),
            EngineSelection::Sharded(ShardedExecutor::new(1)),
            EngineSelection::Sharded(
                ShardedExecutor::new(4)
                    .with_threads_per_shard(2)
                    .with_transport(ShardTransportKind::Channel),
            ),
            EngineSelection::Sharded(
                ShardedExecutor::new(2).with_transport(ShardTransportKind::Process),
            ),
            EngineSelection::Sharded(
                ShardedExecutor::new(4).with_transport(ShardTransportKind::Tcp),
            ),
            EngineSelection::Sharded(
                ShardedExecutor::new(2)
                    .with_threads_per_shard(2)
                    .with_transport(ShardTransportKind::Uds),
            ),
        ];
        for sel in lineup {
            let descriptor = sel.to_string();
            let parsed: EngineSelection = descriptor.parse().expect("descriptor parses");
            assert_eq!(parsed, sel, "{descriptor} must round-trip");
        }
    }

    #[test]
    fn malformed_descriptors_are_errors() {
        for bad in [
            "",
            "serial",
            "barrier",
            "barrier()",
            "barrier(threads=0)",
            "barrier(threads=two)",
            "turbo(threads=2)",
            "sharded(shards=0,threads=1,transport=channel)",
            "sharded(shards=2,threads=1,transport=carrier-pigeon)",
            "sharded(shards=2,threads=1)",
            "sharded(threads=1,shards=2,transport=channel)",
        ] {
            let err = bad.parse::<EngineSelection>().unwrap_err();
            assert_eq!(err.descriptor, bad);
            assert!(err.to_string().contains("descriptor"), "{err}");
        }
    }

    #[test]
    fn selection_executes_like_any_executor() {
        use crate::protocols::FloodMax;
        use deco_graph::generators;
        use deco_local::network::IdAssignment;
        use deco_local::SerialExecutor;

        let g = generators::cycle(20);
        let net = Network::new(&g, IdAssignment::Shuffled(2));
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 3 }, 20)
            .unwrap();
        for sel in [
            EngineSelection::Parallel(ParallelExecutor::with_threads(2)),
            EngineSelection::Sharded(ShardedExecutor::new(2)),
        ] {
            let out = sel.execute(&net, &FloodMax { radius: 3 }, 20).unwrap();
            assert_eq!(serial.outputs, out.outputs);
            assert_eq!(sel.execute_branches(&[1, 1, 1], |i| i), vec![0, 1, 2]);
        }
    }
}
