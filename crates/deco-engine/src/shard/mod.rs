//! Sharded execution: the network partitioned into degree-balanced shards
//! with a cross-shard mailbox exchange.
//!
//! This is the scaling step past one process's worth of threads: a
//! [`ShardPlan`] cuts the node space into contiguous shards (same
//! `split_by_weight` balance as the thread engines), every shard runs its
//! own programs against its own slice of the mailbox arena, and only the
//! **cut edges** — edges whose endpoints live in different shards — ever
//! cross a boundary. Each cut edge surfaces in both shards as a *ghost
//! port*: the local port whose mirror slot is remote, fed once per round by
//! the **cut exchange** instead of by a local arena read. In the LOCAL
//! model this is all a shard boundary can ever be: only round-`r` messages
//! cross edges, so the cut traffic per round is exactly the cut ports, and
//! everything else is shard-private.
//!
//! Two layers live here:
//!
//! * [`ShardedExecutor`] — the in-process sharded engine, a drop-in
//!   [`Executor`]: one worker thread per shard, boundary messages swapped
//!   through two-round parity buffers, and shard progress coordinated by a
//!   shard-level round clock with the same depth-1 lookahead invariant the
//!   barrier-free engine uses per node (a shard publishes round `r` only
//!   after every other unfinished shard consumed round `r − 2`, so adjacent
//!   shards drift by at most one completed round and two parity buffers per
//!   boundary suffice). Because every entry point in the algorithm stack
//!   takes the unified runtime handle (whose engine is an [`Executor`]),
//!   the whole pipeline — Linial, Luby, the Theorem 4.1 solver — runs
//!   sharded unchanged, and the four-way differential suite holds it to
//!   the serial runner's outputs, rounds, messages, and errors bit for
//!   bit.
//! * [`framed`] — the same shard roles spoken over **byte frames** through
//!   a [`framed::ShardTransport`]: an in-process channel transport (the
//!   default — testable on a 1-CPU container), a subprocess transport that
//!   spawns one `deco-shardd` worker process per shard over stdio, and the
//!   socket transports in [`net`] (TCP and Unix-domain — the multi-host
//!   shape, where `deco-shardd --connect` dials in to the coordinator).
//!   All transports run the identical per-shard round code (the private
//!   `worker` module), which is what makes them interchangeable. The
//!   framed coordinator is hardened for a lossy world — per-frame
//!   deadlines, idempotent retransmission, structured
//!   [`framed::ShardFailed`] errors — and [`fault`] provides the
//!   deterministic fault-injection decorator the `shard_faults` suite
//!   drives to prove it.

pub mod fault;
pub mod framed;
pub mod net;
pub mod plan;
pub mod wire;
mod worker;

pub use plan::ShardPlan;

use crate::config::ShardTransportKind;
use deco_local::arena::PortArena;
use deco_local::network::Network;
use deco_local::runner::{NodeProgram, Protocol, RunError, RunOutcome};
use deco_local::Executor;
use std::panic::AssertUnwindSafe;
use std::sync::{Condvar, Mutex};
use worker::ShardWorker;

/// Panic payload used when a shard worker aborts because a *sibling*
/// panicked first; the join loop prefers the original payload over this.
const SIBLING_PANIC: &str = "sharded sibling worker panicked";

/// The message type of protocol `P`.
type MsgOf<P> = <<P as Protocol>::Program as NodeProgram>::Msg;

/// Two-round parity buffers of one shard's cut-out arenas:
/// `ring[r % 2]` holds the round-`r` boundary messages (one dense
/// [`PortArena`] slot per cut port, ghost-index order), safe because the
/// shard clock's capacity predicate keeps shard drift within one round.
type ParityRing<M> = Mutex<[PortArena<M>; 2]>;

/// Sharded, multi-worker implementation of [`Executor`]: the graph is
/// partitioned by a [`ShardPlan`], each shard runs on its own worker
/// thread, and boundary messages cross through the clock-driven cut
/// exchange. Observationally identical to the serial runner for every
/// protocol, shard count, and thread count — enforced by the four-way
/// differential suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedExecutor {
    shards: usize,
    threads_per_shard: usize,
    transport: ShardTransportKind,
}

impl ShardedExecutor {
    /// An executor over `shards` shards (degrading gracefully when the
    /// graph has fewer nodes than shards), one thread per shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn new(shards: usize) -> ShardedExecutor {
        assert!(shards > 0, "shard count must be positive");
        ShardedExecutor {
            shards,
            threads_per_shard: 1,
            transport: ShardTransportKind::Threads,
        }
    }

    /// This executor with each shard's send/receive phases fanned out over
    /// `threads` intra-shard threads (1 = each shard is single-threaded).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn with_threads_per_shard(self, threads: usize) -> ShardedExecutor {
        assert!(threads > 0, "thread count must be positive");
        ShardedExecutor {
            threads_per_shard: threads,
            ..self
        }
    }

    /// The requested shard count.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Intra-shard phase threads per shard.
    #[inline]
    pub fn threads_per_shard(&self) -> usize {
        self.threads_per_shard
    }

    /// This executor tagged with a cross-shard transport preference.
    ///
    /// [`Executor::execute`] always runs the typed in-process substrate —
    /// arbitrary protocols carry arbitrary Rust message types, which no
    /// byte pipe can receive — so the tag does not change how *this*
    /// executor runs. It is configuration the framed entry points
    /// ([`framed::run_framed`] over named [`framed::ProtocolSpec`]s) and
    /// descriptors consume: experiment reports and the CI matrix attribute
    /// framed measurements to the pipe recorded here.
    pub fn with_transport(self, transport: ShardTransportKind) -> ShardedExecutor {
        ShardedExecutor { transport, ..self }
    }

    /// The cross-shard transport preference (see
    /// [`ShardedExecutor::with_transport`]).
    #[inline]
    pub fn transport(&self) -> ShardTransportKind {
        self.transport
    }
}

/// Shard-level round clock: `sent[s]` / `recv[s]` count the rounds shard
/// `s` has published into / consumed from the exchange, `finished[s]` marks
/// shards whose nodes have all halted (or been capped at the round limit).
/// The predicates mirror the node-level async clock one granularity up:
///
/// * **capacity** — shard `s` may publish round `r` once every unfinished
///   shard has consumed round `r − 2` (the parity buffer round `r`
///   overwrites is then dead everywhere);
/// * **availability** — shard `s` may consume round `r` once every other
///   shard has published round `r` or finished before it (a finished
///   shard's nodes are all halted, i.e. silent forever).
///
/// Both predicates are monotone, so the standard minimal-shard argument
/// gives deadlock-freedom, and any schedule respecting them reproduces the
/// synchronous execution bit for bit.
struct ShardClock {
    state: Mutex<ClockState>,
    changed: Condvar,
}

struct ClockState {
    sent: Vec<u64>,
    recv: Vec<u64>,
    finished: Vec<bool>,
    /// Set when a worker panicked: all waiters abort instead of hanging.
    poisoned: bool,
}

impl ShardClock {
    /// Locks the clock state, recovering from std poisoning: a worker that
    /// panics inside a wait poisons the mutex, but the `poisoned` flag (set
    /// by the panicking worker's unwind hook) is the real signal — the
    /// state itself is plain counters and always consistent.
    fn lock(&self) -> std::sync::MutexGuard<'_, ClockState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn new(shards: usize) -> ShardClock {
        ShardClock {
            state: Mutex::new(ClockState {
                sent: vec![0; shards],
                recv: vec![0; shards],
                finished: vec![false; shards],
                poisoned: false,
            }),
            changed: Condvar::new(),
        }
    }

    /// Blocks until shard `s` may publish round `r` (capacity predicate).
    fn wait_capacity(&self, s: usize, r: u64) {
        let mut st = self.lock();
        loop {
            if st.poisoned {
                drop(st);
                panic!("{SIBLING_PANIC}");
            }
            let ok = (0..st.sent.len()).all(|t| t == s || st.finished[t] || st.recv[t] + 2 >= r);
            if ok {
                return;
            }
            st = self
                .changed
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks until shard `s` may consume round `r` (availability
    /// predicate).
    fn wait_available(&self, s: usize, r: u64) {
        let mut st = self.lock();
        loop {
            if st.poisoned {
                drop(st);
                panic!("{SIBLING_PANIC}");
            }
            let ok = (0..st.sent.len()).all(|t| t == s || st.finished[t] || st.sent[t] >= r);
            if ok {
                return;
            }
            st = self
                .changed
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn mark_sent(&self, s: usize, r: u64) {
        self.lock().sent[s] = r;
        self.changed.notify_all();
    }

    fn mark_recv(&self, s: usize, r: u64) {
        self.lock().recv[s] = r;
        self.changed.notify_all();
    }

    fn mark_finished(&self, s: usize) {
        self.lock().finished[s] = true;
        self.changed.notify_all();
    }

    /// One-lock snapshot of every shard's published-round counter, used by
    /// the gather step to decide between a parity-buffer read and
    /// halted-silence per source shard. Sound to act on after release:
    /// the counters are monotone, and a shard that stopped below a round
    /// (finished) never publishes again.
    fn sent_snapshot(&self) -> Vec<u64> {
        self.lock().sent.clone()
    }

    fn poison(&self) {
        self.lock().poisoned = true;
        self.changed.notify_all();
    }
}

/// What one shard worker reports back after its loop ends.
struct ShardReport<O> {
    outputs: Vec<O>,
    messages: u64,
    max_halt: u64,
    /// Nodes still active when the shard hit the round limit (0 when the
    /// shard finished cleanly).
    capped: usize,
}

impl Executor for ShardedExecutor {
    fn execute<P>(
        &self,
        net: &Network<'_>,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<RunOutcome<<P::Program as NodeProgram>::Output>, RunError>
    where
        P: Protocol,
        P::Program: Send,
        <P::Program as NodeProgram>::Msg: Send + Sync,
        <P::Program as NodeProgram>::Output: Send,
    {
        let g = net.graph();
        let n = g.num_nodes();
        if n == 0 {
            if deco_trace::enabled() {
                deco_trace::count(deco_trace::Counter::Messages, 0);
                deco_trace::count(deco_trace::Counter::Rounds, 0);
            }
            return Ok(RunOutcome {
                outputs: Vec::new(),
                rounds: 0,
                messages: 0,
            });
        }
        let execute_span = deco_trace::span(deco_trace::Phase::Execute);
        let plan = ShardPlan::new(g, self.shards);
        let k = plan.shards();

        // Spawn every program on the caller thread (the protocol value
        // itself never crosses threads), then hand each shard its chunk.
        let mut programs: Vec<P::Program> =
            (0..n).map(|v| protocol.spawn(&net.ctx(v.into()))).collect();
        let mut chunks: Vec<Vec<P::Program>> = Vec::with_capacity(k);
        for s in (0..k).rev() {
            chunks.push(programs.split_off(plan.node_range(s).start));
        }
        chunks.reverse();

        let clock = ShardClock::new(k);
        // Two-round parity buffers per shard: `rings[s][r % 2]` holds shard
        // `s`'s round-`r` cut-out arena. Depth 1 of shard drift is exactly
        // what two parities cover (see ShardClock).
        let rings: Vec<ParityRing<MsgOf<P>>> = (0..k)
            .map(|_| Mutex::new([PortArena::new(0), PortArena::new(0)]))
            .collect();

        let reports: Vec<ShardReport<<P::Program as NodeProgram>::Output>> = if k == 1 {
            let worker = ShardWorker::<P>::with_programs(
                net,
                &plan,
                0,
                self.threads_per_shard,
                chunks.pop().expect("one chunk per shard"),
            );
            vec![run_shard(worker, 0, &clock, &rings, &plan, max_rounds)]
        } else {
            let threads_per_shard = self.threads_per_shard;
            let plan = &plan;
            let clock = &clock;
            let rings = &rings;
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .enumerate()
                    .map(|(s, chunk)| {
                        scope.spawn(move || {
                            let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                let worker = ShardWorker::<P>::with_programs(
                                    net,
                                    plan,
                                    s,
                                    threads_per_shard,
                                    chunk,
                                );
                                run_shard(worker, s, clock, rings, plan, max_rounds)
                            }));
                            match run {
                                Ok(report) => report,
                                Err(payload) => {
                                    // Wake sleeping siblings before unwinding
                                    // or they would hang the scope join.
                                    clock.poison();
                                    std::panic::resume_unwind(payload);
                                }
                            }
                        })
                    })
                    .collect();
                let mut reports = Vec::with_capacity(k);
                let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
                for h in handles {
                    match h.join() {
                        Ok(r) => reports.push(r),
                        Err(payload) => {
                            // Prefer the original panic over the sibling
                            // echoes it triggers through the poisoned clock.
                            let is_echo = payload
                                .downcast_ref::<String>()
                                .is_some_and(|m| m.contains(SIBLING_PANIC));
                            if panic_payload.is_none() || !is_echo {
                                panic_payload = Some(payload);
                            }
                        }
                    }
                }
                if let Some(payload) = panic_payload {
                    std::panic::resume_unwind(payload);
                }
                reports
            })
        };

        let still_running: usize = reports.iter().map(|r| r.capped).sum();
        if still_running > 0 {
            execute_span.cancel();
            return Err(RunError::RoundLimitExceeded {
                limit: max_rounds,
                still_running,
            });
        }
        let rounds = reports.iter().map(|r| r.max_halt).max().unwrap_or(0);
        let messages = reports.iter().map(|r| r.messages).sum();
        drop(execute_span);
        if deco_trace::enabled() {
            deco_trace::count(deco_trace::Counter::Messages, messages);
            deco_trace::count(deco_trace::Counter::Rounds, rounds);
        }
        Ok(RunOutcome {
            outputs: reports.into_iter().flat_map(|r| r.outputs).collect(),
            rounds,
            messages,
        })
    }

    /// Branch fan-out is round-free, so shard boundaries buy nothing
    /// there: branches fan out over `shards × threads_per_shard` scoped
    /// worker threads through the phase-parallel engine's weight-balanced
    /// splitter, index-ordered like every executor.
    fn execute_branches<T, F>(&self, weights: &[usize], run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        crate::engine::ParallelExecutor::with_threads(self.shards * self.threads_per_shard)
            .execute_branches(weights, run)
    }
}

/// One shard's whole execution: alternate [`ShardWorker::send_phase`] and
/// [`ShardWorker::receive_phase`] under the clock predicates until every
/// local node halts or the round limit caps the shard. See [`ShardClock`]
/// for why this reproduces the synchronous execution exactly.
fn run_shard<P>(
    mut worker: ShardWorker<'_, '_, P>,
    s: usize,
    clock: &ShardClock,
    rings: &[ParityRing<MsgOf<P>>],
    plan: &ShardPlan,
    max_rounds: u64,
) -> ShardReport<<P::Program as NodeProgram>::Output>
where
    P: Protocol,
    P::Program: Send,
    <P::Program as NodeProgram>::Msg: Send + Sync,
    <P::Program as NodeProgram>::Output: Send,
{
    let mut messages = 0u64;
    let mut capped = 0usize;
    while worker.active() > 0 {
        let r = worker.completed_rounds();
        if r >= max_rounds {
            capped = worker.active();
            break;
        }
        let rr = r + 1;
        clock.wait_capacity(s, rr);
        let (cut_out, sent) = worker.send_phase();
        messages += sent;
        rings[s]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)[(rr % 2) as usize] = cut_out;
        clock.mark_sent(s, rr);
        clock.wait_available(s, rr);
        // Gather: one clock snapshot and at most one ring lock per *source
        // shard*, not per cut port — on dense graphs the cut approaches
        // (k−1)/k of the edges, and per-port locking would put thousands
        // of mutex round-trips on the hot exchange path. The snapshot is
        // sound because `sent` is monotone and finished shards never send
        // again: a source below `rr` now stays below `rr` forever (its
        // nodes all halted earlier → silence), and a source at `rr` keeps
        // its parity slot alive until we mark this round received.
        let route = plan.route(s);
        let sent = clock.sent_snapshot();
        let mut ghost_in: PortArena<<P::Program as NodeProgram>::Msg> = PortArena::new(route.len());
        for (t, ring) in rings.iter().enumerate() {
            if t == s || sent[t] < rr {
                continue;
            }
            let ring = ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let slot = &ring[(rr % 2) as usize];
            for (i, &(rt, j)) in route.iter().enumerate() {
                if rt as usize == t {
                    ghost_in.write(i, slot.clone_out(j as usize));
                }
            }
        }
        worker.receive_phase(&ghost_in);
        clock.mark_recv(s, rr);
    }
    clock.mark_finished(s);
    ShardReport {
        max_halt: worker.max_halt_round(),
        capped,
        messages,
        outputs: if capped == 0 {
            worker.into_outputs()
        } else {
            Vec::new()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{FloodMax, PortEcho, StaggeredSum};
    use deco_graph::generators;
    use deco_local::network::IdAssignment;
    use deco_local::SerialExecutor;

    fn assert_identical<O: PartialEq + std::fmt::Debug>(a: &RunOutcome<O>, b: &RunOutcome<O>) {
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn matches_serial_on_a_cycle() {
        let g = generators::cycle(50);
        let net = Network::new(&g, IdAssignment::Shuffled(3));
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 7 }, 100)
            .unwrap();
        for shards in [1, 2, 4, 7] {
            for threads in [1, 2] {
                let sharded = ShardedExecutor::new(shards)
                    .with_threads_per_shard(threads)
                    .execute(&net, &FloodMax { radius: 7 }, 100)
                    .unwrap();
                assert_identical(&serial, &sharded);
            }
        }
    }

    #[test]
    fn port_delivery_is_exact_across_cuts() {
        let g = generators::random_regular(48, 5, 11);
        let net = Network::new(&g, IdAssignment::SparseRandom(5));
        let serial = SerialExecutor
            .execute(&net, &PortEcho { rounds: 4 }, 10)
            .unwrap();
        for shards in [2, 3, 4] {
            let sharded = ShardedExecutor::new(shards)
                .execute(&net, &PortEcho { rounds: 4 }, 10)
                .unwrap();
            assert_identical(&serial, &sharded);
        }
    }

    #[test]
    fn staggered_halting_crosses_shards() {
        let g = generators::disjoint_union(&[
            generators::cycle(17),
            generators::star(6),
            generators::complete(5),
            deco_graph::Graph::empty(3),
        ]);
        let net = Network::new(&g, IdAssignment::Shuffled(9));
        let serial = SerialExecutor
            .execute(&net, &StaggeredSum { spread: 6 }, 20)
            .unwrap();
        for shards in [2, 4] {
            for threads in [1, 2] {
                let sharded = ShardedExecutor::new(shards)
                    .with_threads_per_shard(threads)
                    .execute(&net, &StaggeredSum { spread: 6 }, 20)
                    .unwrap();
                assert_identical(&serial, &sharded);
            }
        }
    }

    #[test]
    fn round_limit_error_matches_serial() {
        let g = generators::path(9);
        let net = Network::new(&g, IdAssignment::Sequential);
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 50 }, 5)
            .unwrap_err();
        for shards in [1, 2, 3] {
            let sharded = ShardedExecutor::new(shards)
                .execute(&net, &FloodMax { radius: 50 }, 5)
                .unwrap_err();
            assert_eq!(serial, sharded);
        }
    }

    #[test]
    fn zero_round_budget_errors_like_serial() {
        let g = generators::cycle(6);
        let net = Network::new(&g, IdAssignment::Sequential);
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 2 }, 0)
            .unwrap_err();
        let sharded = ShardedExecutor::new(2)
            .execute(&net, &FloodMax { radius: 2 }, 0)
            .unwrap_err();
        assert_eq!(serial, sharded);
    }

    #[test]
    fn zero_round_protocols_short_circuit() {
        let g = generators::path(8);
        let net = Network::new(&g, IdAssignment::Sequential);
        let out = ShardedExecutor::new(3)
            .execute(&net, &FloodMax { radius: 0 }, 5)
            .unwrap();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.messages, 0);
        assert_eq!(out.outputs, (1..=8).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_and_tiny_graphs_execute() {
        let empty = deco_graph::Graph::empty(0);
        let net = Network::new(&empty, IdAssignment::Sequential);
        let out = ShardedExecutor::new(4)
            .execute(&net, &FloodMax { radius: 3 }, 5)
            .unwrap();
        assert!(out.outputs.is_empty());

        let single = deco_graph::Graph::empty(1);
        let net = Network::new(&single, IdAssignment::Sequential);
        let out = ShardedExecutor::new(4)
            .execute(&net, &FloodMax { radius: 2 }, 5)
            .unwrap();
        assert_eq!(out.outputs, vec![1]);
        assert_eq!(out.rounds, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shards_rejected() {
        let _ = ShardedExecutor::new(0);
    }

    #[test]
    fn branch_execution_matches_serial_default() {
        let weights: Vec<usize> = (0..19).map(|i| (i * 5) % 4 + 1).collect();
        let job = |i: usize| (i, (i as u64).pow(2) % 13);
        let serial = SerialExecutor.execute_branches(&weights, job);
        for shards in [1, 2, 4] {
            let sharded = ShardedExecutor::new(shards)
                .with_threads_per_shard(2)
                .execute_branches(&weights, job);
            assert_eq!(serial, sharded, "shards={shards}");
        }
    }

    #[test]
    fn worker_panic_propagates_without_hanging() {
        struct PanicAtRound2;
        struct PanicProgram {
            round: u64,
        }
        impl NodeProgram for PanicProgram {
            type Msg = u64;
            type Output = u64;
            fn send(&mut self, ctx: &deco_local::network::NodeCtx<'_>) -> Vec<Option<u64>> {
                // Only the first node panics; the other shard's worker must
                // still be released from its clock waits.
                if self.round == 2 && ctx.node.index() == 0 {
                    panic!("protocol exploded");
                }
                vec![Some(1); ctx.degree()]
            }
            fn receive(&mut self, _: &deco_local::network::NodeCtx<'_>, _: &[Option<u64>]) {
                self.round += 1;
            }
            fn output(&self, _: &deco_local::network::NodeCtx<'_>) -> Option<u64> {
                (self.round >= 100).then_some(0)
            }
        }
        impl Protocol for PanicAtRound2 {
            type Program = PanicProgram;
            fn spawn(&self, _: &deco_local::network::NodeCtx<'_>) -> PanicProgram {
                PanicProgram { round: 0 }
            }
        }
        let g = generators::cycle(12);
        let net = Network::new(&g, IdAssignment::Sequential);
        let result = std::panic::catch_unwind(|| {
            let _ = ShardedExecutor::new(3).execute(&net, &PanicAtRound2, 200);
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("protocol exploded"), "got: {msg}");
    }
}
