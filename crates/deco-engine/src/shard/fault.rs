//! Deterministic fault injection for shard transports.
//!
//! [`FaultTransport`] wraps any [`ShardTransport`] and perturbs the frame
//! stream according to a [`FaultPlan`]: drop the Nth request to a shard,
//! drop or delay or truncate its Nth response, or kill a shard outright
//! after it has produced a given number of frames. The wrapped transport
//! is otherwise untouched — the coordinator cannot tell a `FaultTransport`
//! apart from a flaky network.
//!
//! Plans are data, not randomness: the same plan against the same graph
//! produces the same byte stream every run, which is what lets the fault
//! suite (`tests/shard_faults.rs`) pin *exact* outcomes — transient faults
//! must recover bit-identically to a clean run, fatal ones must surface as
//! a specific [`ShardFailed`](super::framed::ShardFailed) cause. For sweep
//! testing, [`FaultPlan::seeded`] derives a small plan from a `u64` seed,
//! deterministically.
//!
//! Fault semantics, in coordinator terms:
//!
//! * **Dropped request** — the worker never sees it; the retry resends the
//!   same sequence number and the worker executes it as new.
//! * **Dropped response** — the worker *did* execute; the retry is deduped
//!   by sequence number and answered from the worker's response cache, so
//!   recovery is bit-identical (the simulation step runs exactly once).
//! * **Delayed response** — under the deadline it is ordinary jitter; at
//!   or over the deadline the coordinator times out, retries, and the
//!   stashed frame is redelivered (a late duplicate the sequence layer
//!   absorbs).
//! * **Truncated response** — the frame arrives torn mid-body; the decode
//!   fails and the shard is reported `Malformed`.
//! * **Killed shard** — every later receive (and send) fails like a
//!   severed pipe; the shard is reported `Disconnected`.
//!
//! Each fault op fires exactly once. Frame ordinals are per-shard and
//! per-direction, starting at 1.

use super::framed::{ShardConn, ShardTransport};
use rand::prelude::*;
use std::io;
use std::time::Duration;

/// One injected fault, addressed to a shard and a frame ordinal.
///
/// Request ordinals count coordinator→worker frames (the `Init` frame is
/// request 1); response ordinals count worker→coordinator frames (the
/// `InitAck` is response 1, and each simulated round contributes two more:
/// the cut-out report and the delivery ack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Swallow the `nth` request sent to `shard`; the worker never sees it.
    DropRequest {
        /// Target shard index.
        shard: usize,
        /// 1-based ordinal of the request frame to drop.
        nth: u64,
    },
    /// Swallow the `nth` response from `shard` after the worker produced it.
    DropResponse {
        /// Target shard index.
        shard: usize,
        /// 1-based ordinal of the response frame to drop.
        nth: u64,
    },
    /// Hold the `nth` response from `shard` for `ms` milliseconds. At or
    /// over the receive deadline this manifests as a timeout plus a late
    /// duplicate; under it, as jitter.
    DelayResponse {
        /// Target shard index.
        shard: usize,
        /// 1-based ordinal of the response frame to delay.
        nth: u64,
        /// Delay in milliseconds.
        ms: u64,
    },
    /// Deliver only the first half of the `nth` response from `shard`.
    TruncateResponse {
        /// Target shard index.
        shard: usize,
        /// 1-based ordinal of the response frame to truncate.
        nth: u64,
    },
    /// Sever `shard` permanently once it has delivered `after_frames`
    /// response frames; that frame and everything after it is lost.
    KillShard {
        /// Target shard index.
        shard: usize,
        /// Response-frame count at which the shard dies.
        after_frames: u64,
    },
}

impl FaultOp {
    /// The shard this op targets.
    pub fn shard(&self) -> usize {
        match *self {
            FaultOp::DropRequest { shard, .. }
            | FaultOp::DropResponse { shard, .. }
            | FaultOp::DelayResponse { shard, .. }
            | FaultOp::TruncateResponse { shard, .. }
            | FaultOp::KillShard { shard, .. } => shard,
        }
    }

    /// Whether recovery from this op alone should be invisible (transient)
    /// as opposed to a structured shard failure (fatal).
    pub fn is_transient(&self, timeout_ms: u64) -> bool {
        match *self {
            FaultOp::DropRequest { .. } | FaultOp::DropResponse { .. } => true,
            FaultOp::DelayResponse { ms, .. } => timeout_ms == 0 || ms < timeout_ms,
            FaultOp::TruncateResponse { .. } | FaultOp::KillShard { .. } => false,
        }
    }
}

/// An ordered set of [`FaultOp`]s to inject into one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    ops: Vec<FaultOp>,
}

impl FaultPlan {
    /// An empty plan: the wrapped transport behaves exactly like the inner
    /// one (the fault suite pins this too).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an arbitrary op.
    pub fn with(mut self, op: FaultOp) -> FaultPlan {
        self.ops.push(op);
        self
    }

    /// Drops the `nth` request to `shard`.
    pub fn drop_request(self, shard: usize, nth: u64) -> FaultPlan {
        self.with(FaultOp::DropRequest { shard, nth })
    }

    /// Drops the `nth` response from `shard`.
    pub fn drop_response(self, shard: usize, nth: u64) -> FaultPlan {
        self.with(FaultOp::DropResponse { shard, nth })
    }

    /// Delays the `nth` response from `shard` by `ms` milliseconds.
    pub fn delay_response(self, shard: usize, nth: u64, ms: u64) -> FaultPlan {
        self.with(FaultOp::DelayResponse { shard, nth, ms })
    }

    /// Truncates the `nth` response from `shard` mid-frame.
    pub fn truncate_response(self, shard: usize, nth: u64) -> FaultPlan {
        self.with(FaultOp::TruncateResponse { shard, nth })
    }

    /// Kills `shard` after it has delivered `after_frames` responses.
    pub fn kill_shard(self, shard: usize, after_frames: u64) -> FaultPlan {
        self.with(FaultOp::KillShard {
            shard,
            after_frames,
        })
    }

    /// The ops in this plan.
    pub fn ops(&self) -> &[FaultOp] {
        &self.ops
    }

    /// Whether every op in the plan is transient under a `timeout_ms`
    /// receive budget — i.e. whether a run under this plan must recover
    /// bit-identically rather than fail.
    pub fn is_transient(&self, timeout_ms: u64) -> bool {
        self.ops.iter().all(|op| op.is_transient(timeout_ms))
    }

    /// Derives a small plan (one to three ops) deterministically from
    /// `seed`, targeting shard indices below `shards`. The same seed
    /// always yields the same plan; sweeping seeds sweeps the fault space.
    pub fn seeded(seed: u64, shards: usize) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        let shards = shards.max(1);
        for _ in 0..rng.gen_range(1..=3usize) {
            let shard = rng.gen_range(0..shards);
            let nth = rng.gen_range(1..=6u64);
            plan = match rng.gen_range(0..5u32) {
                0 => plan.drop_request(shard, nth),
                1 => plan.drop_response(shard, nth),
                2 => plan.delay_response(shard, nth, rng.gen_range(1..=300u64)),
                3 => plan.truncate_response(shard, nth),
                _ => plan.kill_shard(shard, nth),
            };
        }
        plan
    }
}

/// A [`ShardTransport`] decorator that injects the faults of a
/// [`FaultPlan`] into the connections of any inner transport.
#[derive(Debug, Clone)]
pub struct FaultTransport<T> {
    inner: T,
    plan: FaultPlan,
}

impl<T> FaultTransport<T> {
    /// Wraps `inner`, injecting `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> FaultTransport<T> {
        FaultTransport { inner, plan }
    }
}

impl<T: ShardTransport> ShardTransport for FaultTransport<T> {
    type Conn = FaultConn<T::Conn>;

    fn launch(&self, shards: usize) -> io::Result<Vec<FaultConn<T::Conn>>> {
        Ok(self
            .inner
            .launch(shards)?
            .into_iter()
            .enumerate()
            .map(|(s, conn)| FaultConn {
                inner: conn,
                ops: self
                    .plan
                    .ops
                    .iter()
                    .filter(|op| op.shard() == s)
                    .copied()
                    .collect(),
                sends: 0,
                recvs: 0,
                killed: false,
                pending: None,
            })
            .collect())
    }

    fn label(&self) -> &'static str {
        "fault"
    }
}

/// One shard's connection with its slice of the fault plan applied.
pub struct FaultConn<C> {
    inner: C,
    ops: Vec<FaultOp>,
    sends: u64,
    recvs: u64,
    killed: bool,
    pending: Option<Vec<u8>>,
}

impl<C> FaultConn<C> {
    fn severed() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "shard killed by fault plan")
    }

    /// Removes and returns the op addressed to the current frame ordinal
    /// in the given direction, if any.
    fn take_op(&mut self, response: bool, ordinal: u64) -> Option<FaultOp> {
        let idx = self.ops.iter().position(|op| match *op {
            FaultOp::DropRequest { nth, .. } => !response && nth == ordinal,
            FaultOp::DropResponse { nth, .. }
            | FaultOp::DelayResponse { nth, .. }
            | FaultOp::TruncateResponse { nth, .. } => response && nth == ordinal,
            FaultOp::KillShard { after_frames, .. } => response && after_frames == ordinal,
        })?;
        Some(self.ops.remove(idx))
    }
}

impl<C: ShardConn> ShardConn for FaultConn<C> {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        if self.killed {
            return Err(Self::severed());
        }
        self.sends += 1;
        let ordinal = self.sends;
        if let Some(FaultOp::DropRequest { .. }) = self.take_op(false, ordinal) {
            // The frame vanishes on the wire: the send itself "succeeds".
            return Ok(());
        }
        self.inner.send(payload)
    }

    fn recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<Vec<u8>> {
        if self.killed {
            return Err(Self::severed());
        }
        // A frame stashed by an over-deadline delay is redelivered as-is:
        // it already went through fault processing once.
        if let Some(frame) = self.pending.take() {
            return Ok(frame);
        }
        loop {
            let frame = self.inner.recv_timeout(timeout)?;
            self.recvs += 1;
            let ordinal = self.recvs;
            match self.take_op(true, ordinal) {
                Some(FaultOp::KillShard { .. }) => {
                    self.killed = true;
                    return Err(Self::severed());
                }
                Some(FaultOp::DropResponse { .. }) => continue,
                Some(FaultOp::TruncateResponse { .. }) => {
                    return Ok(frame[..frame.len() / 2].to_vec());
                }
                Some(FaultOp::DelayResponse { ms, .. }) => {
                    let delay = Duration::from_millis(ms);
                    match timeout {
                        Some(budget) if delay >= budget => {
                            // The frame is "in flight" past the deadline:
                            // the coordinator times out now and the frame
                            // arrives as a late duplicate on the next recv.
                            std::thread::sleep(budget);
                            self.pending = Some(frame);
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "response delayed past the receive deadline",
                            ));
                        }
                        _ => {
                            std::thread::sleep(delay);
                            return Ok(frame);
                        }
                    }
                }
                Some(FaultOp::DropRequest { .. }) => unreachable!("request op on response path"),
                None => return Ok(frame),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..200u64 {
            let a = FaultPlan::seeded(seed, 4);
            let b = FaultPlan::seeded(seed, 4);
            assert_eq!(a, b, "seed {seed} must be reproducible");
            assert!(!a.ops().is_empty() && a.ops().len() <= 3);
            assert!(a.ops().iter().all(|op| op.shard() < 4));
        }
        // Distinct seeds must explore distinct plans.
        let distinct: std::collections::HashSet<_> = (0..200u64)
            .map(|s| format!("{:?}", FaultPlan::seeded(s, 4)))
            .collect();
        assert!(
            distinct.len() > 50,
            "only {} distinct plans",
            distinct.len()
        );
    }

    #[test]
    fn transience_classification_matches_op_kinds() {
        let budget = 200;
        assert!(FaultPlan::new().drop_request(0, 1).is_transient(budget));
        assert!(FaultPlan::new().drop_response(0, 1).is_transient(budget));
        assert!(FaultPlan::new()
            .delay_response(0, 1, 50)
            .is_transient(budget));
        assert!(!FaultPlan::new()
            .delay_response(0, 1, 200)
            .is_transient(budget));
        // No deadline: every delay is jitter.
        assert!(FaultPlan::new()
            .delay_response(0, 1, 10_000)
            .is_transient(0));
        assert!(!FaultPlan::new()
            .truncate_response(0, 1)
            .is_transient(budget));
        assert!(!FaultPlan::new().kill_shard(0, 1).is_transient(budget));
    }

    /// In-memory conn whose responses are the bytes it was sent, tagged
    /// with a receive ordinal — enough to observe fault mechanics.
    struct EchoConn {
        queue: std::collections::VecDeque<Vec<u8>>,
    }

    impl ShardConn for EchoConn {
        fn send(&mut self, payload: &[u8]) -> io::Result<()> {
            self.queue.push_back(payload.to_vec());
            Ok(())
        }
        fn recv_timeout(&mut self, _timeout: Option<Duration>) -> io::Result<Vec<u8>> {
            self.queue
                .pop_front()
                .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "queue empty"))
        }
    }

    fn echo_fault(plan: FaultPlan) -> FaultConn<EchoConn> {
        FaultConn {
            inner: EchoConn {
                queue: std::collections::VecDeque::new(),
            },
            ops: plan.ops().to_vec(),
            sends: 0,
            recvs: 0,
            killed: false,
            pending: None,
        }
    }

    #[test]
    fn dropped_request_never_reaches_the_inner_conn() {
        let mut conn = echo_fault(FaultPlan::new().drop_request(0, 2));
        conn.send(b"one").unwrap();
        conn.send(b"two").unwrap(); // dropped
        conn.send(b"three").unwrap();
        assert_eq!(conn.recv().unwrap(), b"one");
        assert_eq!(conn.recv().unwrap(), b"three");
    }

    #[test]
    fn truncated_response_is_half_the_frame() {
        let mut conn = echo_fault(FaultPlan::new().truncate_response(0, 1));
        conn.send(b"0123456789").unwrap();
        assert_eq!(conn.recv().unwrap(), b"01234");
        conn.send(b"intact").unwrap();
        assert_eq!(conn.recv().unwrap(), b"intact", "op fires exactly once");
    }

    #[test]
    fn killed_shard_is_sticky_in_both_directions() {
        let mut conn = echo_fault(FaultPlan::new().kill_shard(0, 1));
        conn.send(b"hello").unwrap();
        assert_eq!(
            conn.recv().unwrap_err().kind(),
            io::ErrorKind::BrokenPipe,
            "the fatal frame is lost"
        );
        assert_eq!(
            conn.send(b"again").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        assert_eq!(conn.recv().unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn over_deadline_delay_times_out_then_redelivers() {
        let mut conn = echo_fault(FaultPlan::new().delay_response(0, 1, 10));
        conn.send(b"late").unwrap();
        let err = conn
            .recv_timeout(Some(Duration::from_millis(5)))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(
            conn.recv_timeout(Some(Duration::from_millis(5))).unwrap(),
            b"late",
            "the delayed frame arrives as a late duplicate"
        );
    }
}
