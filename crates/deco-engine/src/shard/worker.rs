//! The per-shard round worker: one shard's programs, arena, and ghost
//! ports, advanced one `send`/`receive` pair at a time.
//!
//! A [`ShardWorker`] owns everything private to its shard — the programs
//! and halting state of its node range and the shard's contiguous slice of
//! the mailbox arena — and borrows only immutable topology (`Network`,
//! [`ShardPlan`]). It is deliberately transport-agnostic: it never waits,
//! never talks to other shards, and exposes exactly two steps per round,
//!
//! 1. [`ShardWorker::send_phase`] — every active local node writes its
//!    outgoing messages into the local arena; the worker returns the
//!    *cut-out arena* (one slot per cut port, in plan ghost-index order)
//!    for whichever exchange discipline the caller runs;
//! 2. [`ShardWorker::receive_phase`] — given the *ghost-in arena* routed
//!    from the other shards, every active local node assembles its inbox
//!    (shard-internal ports read the local arena through the mirror table,
//!    ghost ports read the ghost-in arena), processes it, and re-evaluates
//!    its output.
//!
//! Both the in-process clock-driven executor and the framed
//! coordinator/worker protocol drive this same type, which is what keeps
//! the two transports observationally interchangeable. Phases optionally
//! fan out over `threads` scoped threads (degree-balanced sub-ranges, the
//! same machinery as the barrier engine), and the thread count can never
//! change observable behavior.

use super::plan::ShardPlan;
use crate::par::{split_by_weight, split_mut_by_ranges};
use deco_local::arena::{ArenaWriter, PortArena};
use deco_local::network::Network;
use deco_local::runner::{NodeProgram, Protocol};
use std::ops::Range;

/// One shard's mutable execution state. See the module docs.
pub(crate) struct ShardWorker<'a, 'g, P: Protocol> {
    net: &'a Network<'g>,
    plan: &'a ShardPlan,
    shard: usize,
    threads: usize,
    programs: Vec<P::Program>,
    outputs: Vec<Option<<P::Program as NodeProgram>::Output>>,
    halted: Vec<bool>,
    /// The shard's slice of the mailbox arena, indexed by
    /// `global slot - slot_range.start`.
    arena: PortArena<<P::Program as NodeProgram>::Msg>,
    /// Completed local rounds.
    completed: u64,
    /// Highest local round at which a node of this shard halted.
    max_halt: u64,
    /// Local nodes that have not halted yet.
    active: usize,
}

impl<'a, 'g, P> ShardWorker<'a, 'g, P>
where
    P: Protocol,
    P::Program: Send,
    <P::Program as NodeProgram>::Msg: Send + Sync,
    <P::Program as NodeProgram>::Output: Send,
{
    /// A worker over shard `shard` of `plan`, spawning its programs from
    /// `protocol`. Round-0 outputs are collected immediately (zero-round
    /// programs halt here, before any communication, exactly as under the
    /// serial runner).
    pub fn spawn(
        net: &'a Network<'g>,
        plan: &'a ShardPlan,
        shard: usize,
        threads: usize,
        protocol: &P,
    ) -> ShardWorker<'a, 'g, P> {
        let programs = plan
            .node_range(shard)
            .map(|v| protocol.spawn(&net.ctx(v.into())))
            .collect();
        ShardWorker::with_programs(net, plan, shard, threads, programs)
    }

    /// A worker over already-spawned `programs` (one per node of the shard
    /// range, in node order). This is the entry the in-process executor
    /// uses: it spawns all programs on the caller thread, so the protocol
    /// value itself never crosses threads.
    pub fn with_programs(
        net: &'a Network<'g>,
        plan: &'a ShardPlan,
        shard: usize,
        threads: usize,
        programs: Vec<P::Program>,
    ) -> ShardWorker<'a, 'g, P> {
        let range = plan.node_range(shard);
        assert_eq!(programs.len(), range.len(), "one program per shard node");
        let outputs: Vec<Option<<P::Program as NodeProgram>::Output>> = programs
            .iter()
            .zip(range.clone())
            .map(|(p, v)| p.output(&net.ctx(v.into())))
            .collect();
        let halted: Vec<bool> = outputs.iter().map(Option::is_some).collect();
        let active = halted.iter().filter(|h| !**h).count();
        let slots = plan.slot_range(shard).len();
        ShardWorker {
            net,
            plan,
            shard,
            threads: threads.max(1),
            programs,
            outputs,
            halted,
            arena: PortArena::new(slots),
            completed: 0,
            max_halt: 0,
            active,
        }
    }

    /// Local nodes still running.
    #[inline]
    pub fn active(&self) -> usize {
        self.active
    }

    /// Completed local rounds.
    #[inline]
    pub fn completed_rounds(&self) -> u64 {
        self.completed
    }

    /// Highest local round at which one of this shard's nodes halted
    /// (0 when every node halted at spawn, or none halted yet).
    #[inline]
    pub fn max_halt_round(&self) -> u64 {
        self.max_halt
    }

    /// Runs the send half of the next round: active nodes write their
    /// outgoing messages into the local arena (halted nodes' slots are
    /// cleared — the silent-halt rule), then the cut ports are copied out
    /// in ghost-index order for the exchange. Returns `(cut_out, sent)`
    /// where `sent` counts the present messages written, matching the
    /// serial runner's accounting.
    pub fn send_phase(&mut self) -> (PortArena<<P::Program as NodeProgram>::Msg>, u64) {
        let range = self.plan.node_range(self.shard);
        let slo = self.plan.slot_range(self.shard).start;
        let net = self.net;
        let plan = self.plan;
        let halted = &self.halted;

        let run_chunk = |chunk: Range<usize>,
                         progs: &mut [P::Program],
                         writer: &mut ArenaWriter<'_, <P::Program as NodeProgram>::Msg>|
         -> u64 {
            // `chunk` is in local node indices; the writer covers exactly the
            // chunk's shard-local slot range.
            let mut sent = 0u64;
            for i in chunk.clone() {
                let v = range.start + i;
                let ctx = net.ctx(v.into());
                let deg = ctx.degree();
                let base = plan.mailbox().offset(v.into()) - slo;
                if halted[i] {
                    for k in base..base + deg {
                        writer.clear(k);
                    }
                    continue;
                }
                let out = progs[i - chunk.start].send(&ctx);
                let mut it = out.into_iter();
                for k in base..base + deg {
                    // Matches the serial runner's `resize_with(degree)`:
                    // missing entries become None, surplus entries drop.
                    let msg = it.next().flatten();
                    if msg.is_some() {
                        sent += 1;
                    }
                    writer.write(k, msg);
                }
            }
            sent
        };

        let n_local = range.len();
        let sub = self.sub_ranges(n_local);
        let slot_sub: Vec<Range<usize>> = sub
            .iter()
            .map(|r| {
                (plan.mailbox().offsets()[range.start + r.start] - slo)
                    ..(plan.mailbox().offsets()[range.start + r.end] - slo)
            })
            .collect();
        let mut writers = self.arena.split_writers(&slot_sub);
        let sent = if writers.len() <= 1 {
            match writers.first_mut() {
                Some(w) => run_chunk(0..n_local, &mut self.programs, w),
                None => 0,
            }
        } else {
            let prog_chunks = split_mut_by_ranges(&mut self.programs, &sub);
            std::thread::scope(|scope| {
                let handles: Vec<_> = sub
                    .iter()
                    .zip(prog_chunks)
                    .zip(writers.iter_mut())
                    .map(|((r, progs), writer)| {
                        let r = r.clone();
                        let run_chunk = &run_chunk;
                        scope.spawn(move || run_chunk(r, progs, writer))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard send chunk panicked"))
                    .sum()
            })
        };
        drop(writers);

        let cut_ports = self.plan.cut_ports(self.shard);
        let mut cut_out = PortArena::new(cut_ports.len());
        for (i, &k) in cut_ports.iter().enumerate() {
            cut_out.write(i, self.arena.clone_out(k - slo));
        }
        (cut_out, sent)
    }

    /// Runs the receive half of the round whose sends [`ShardWorker::send_phase`]
    /// just published: every active node assembles its inbox — internal
    /// ports through the mirror table, ghost ports from `ghost_in` (one
    /// slot per cut port, ghost-index order) — processes it, and
    /// re-evaluates its output. Returns the number of still-active nodes.
    pub fn receive_phase(
        &mut self,
        ghost_in: &PortArena<<P::Program as NodeProgram>::Msg>,
    ) -> usize {
        let range = self.plan.node_range(self.shard);
        let slot_range = self.plan.slot_range(self.shard);
        let slo = slot_range.start;
        let net = self.net;
        let plan = self.plan;
        let shard = self.shard;
        let arena = &self.arena;
        assert_eq!(
            ghost_in.len(),
            plan.cut_ports(shard).len(),
            "one ghost entry per cut port"
        );

        let run_chunk = |chunk: Range<usize>,
                         progs: &mut [P::Program],
                         outs: &mut [Option<<P::Program as NodeProgram>::Output>],
                         halts: &mut [bool]|
         -> usize {
            let mut inbox: Vec<Option<<P::Program as NodeProgram>::Msg>> = Vec::new();
            let mut newly_halted = 0usize;
            for i in chunk.clone() {
                let c = i - chunk.start;
                if halts[c] {
                    continue;
                }
                let v = range.start + i;
                let ctx = net.ctx(v.into());
                inbox.clear();
                for k in plan.mailbox().slots(v.into()) {
                    let mk = plan.mailbox().mirror(k);
                    if slot_range.contains(&mk) {
                        inbox.push(arena.clone_out(mk - slo));
                    } else {
                        let g = plan
                            .ghost_index(shard, k)
                            .expect("a slot with a remote mirror is a cut port");
                        inbox.push(ghost_in.clone_out(g));
                    }
                }
                progs[c].receive(&ctx, &inbox);
                outs[c] = progs[c].output(&ctx);
                if outs[c].is_some() {
                    halts[c] = true;
                    newly_halted += 1;
                }
            }
            newly_halted
        };

        let n_local = range.len();
        let sub = self.sub_ranges(n_local);
        let newly_halted = if sub.len() <= 1 {
            run_chunk(
                0..n_local,
                &mut self.programs,
                &mut self.outputs,
                &mut self.halted,
            )
        } else {
            let prog_chunks = split_mut_by_ranges(&mut self.programs, &sub);
            let out_chunks = split_mut_by_ranges(&mut self.outputs, &sub);
            let halt_chunks = split_mut_by_ranges(&mut self.halted, &sub);
            std::thread::scope(|scope| {
                let handles: Vec<_> = sub
                    .iter()
                    .zip(prog_chunks)
                    .zip(out_chunks)
                    .zip(halt_chunks)
                    .map(|(((r, progs), outs), halts)| {
                        let r = r.clone();
                        let run_chunk = &run_chunk;
                        scope.spawn(move || run_chunk(r, progs, outs, halts))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard receive chunk panicked"))
                    .sum()
            })
        };

        self.completed += 1;
        if newly_halted > 0 {
            self.max_halt = self.completed;
            self.active -= newly_halted;
        }
        self.active
    }

    /// The shard's outputs in node order, cloned, once every local node
    /// halted (the framed worker replies to `Finish` with this and keeps
    /// serving until `Shutdown`).
    ///
    /// # Panics
    ///
    /// Panics if some node is still active.
    pub fn snapshot_outputs(&self) -> Vec<<P::Program as NodeProgram>::Output> {
        self.outputs
            .iter()
            .map(|o| o.clone().expect("shard finished with every node halted"))
            .collect()
    }

    /// The shard's outputs in node order, once every local node halted.
    ///
    /// # Panics
    ///
    /// Panics if some node is still active.
    pub fn into_outputs(self) -> Vec<<P::Program as NodeProgram>::Output> {
        self.outputs
            .into_iter()
            .map(|o| o.expect("shard finished with every node halted"))
            .collect()
    }

    /// Degree-balanced sub-ranges of the local index space for intra-shard
    /// phase threading (one range when the worker is single-threaded).
    fn sub_ranges(&self, n_local: usize) -> Vec<Range<usize>> {
        if self.threads <= 1 || n_local <= 1 {
            return (n_local > 0).then_some(0..n_local).into_iter().collect();
        }
        let range = self.plan.node_range(self.shard);
        let weights: Vec<usize> = range
            .clone()
            .map(|v| self.net.graph().degree(v.into()))
            .collect();
        split_by_weight(&weights, self.threads)
    }
}
