//! The framed shard protocol: coordinator and workers speaking
//! length-prefixed byte frames through a [`ShardTransport`].
//!
//! The in-process [`ShardedExecutor`](crate::shard::ShardedExecutor) moves
//! typed messages between shard threads; this module is the same execution
//! split across *address spaces* — and, with the socket transports in
//! [`net`](super::net), across machines. A coordinator owns the round loop
//! and the cut-message routing; each shard worker owns its programs, arena,
//! and ghost ports (the identical per-shard round code the typed engine
//! runs) and speaks only frames:
//!
//! ```text
//! coordinator                                worker s (× shards)
//!     │ ──Init{graph, ids, spec, shard}──────────▶ │ builds Network + ShardPlan
//!     │ ◀──InitAck{active}────────────────────────│
//!     │   per round:                              │
//!     │ ──SendReq─────────────────────────────────▶ │ send phase
//!     │ ◀──CutOut{sent, boundary msgs}────────────│
//!     │   route cut messages between shards       │
//!     │ ──Deliver{ghost msgs}─────────────────────▶ │ receive phase
//!     │ ◀──Done{active}───────────────────────────│
//!     │   until Σ active = 0                      │
//!     │ ──Finish──▶ ◀──Outputs──  ──Shutdown──▶   │
//! ```
//!
//! Cut messages travel as *opaque* length-delimited entries: the
//! coordinator routes them between shards without ever decoding a payload,
//! exactly as a production exchange would. Four transports implement the
//! byte pipes: [`ChannelTransport`] runs each worker as an in-process
//! thread over `mpsc` channels (the default — fast, deterministic, and
//! testable on a 1-CPU container), [`ProcessTransport`] spawns one
//! `deco-shardd` child process per shard over stdio, and
//! [`TcpTransport`](super::net::TcpTransport) /
//! [`UdsTransport`](super::net::UdsTransport) carry the same frames over
//! real sockets, which is the multi-host shape. All run byte-for-byte the
//! same worker loop ([`serve`]), so the differential suite holds them to
//! identical observable behavior — and to the serial runner's.
//!
//! ## Hardening: sequence numbers, deadlines, retries
//!
//! Once frames cross process or machine boundaries, peers can stall, die,
//! or corrupt bytes, so the coordinator never waits unboundedly. Every
//! frame in both directions carries a little-endian `u64` **sequence
//! number** ahead of its tag; responses echo the request's. The
//! coordinator waits for each response under a per-frame deadline
//! ([`FramedPolicy`], env-tunable via `DECO_SHARD_TIMEOUT_MS`) and, on
//! timeout, retransmits the outstanding request a bounded number of times.
//! Workers deduplicate by sequence number — a retransmitted request is
//! answered from a one-deep response cache without re-executing the phase,
//! which makes retries idempotent and recovery bit-identical. Stale
//! duplicate responses (sequence lower than the outstanding request's) are
//! discarded on receipt. When the budget is exhausted, or the worker hangs
//! up or sends garbage, the run fails *structurally*: [`ShardFailed`]
//! names the shard and the [`ShardFailure`] cause instead of hanging or
//! panicking. The fault-injection suite (`tests/shard_faults.rs`, built on
//! [`FaultTransport`](super::fault::FaultTransport)) pins exactly which
//! faults recover and which surface which cause.
//!
//! The framed layer runs *named* protocols ([`ProtocolSpec`]) whose
//! messages implement [`WireMsg`]; arbitrary user protocols with
//! non-serializable messages stay on the typed in-process executor. That
//! split is deliberate: a subprocess fundamentally cannot receive a Rust
//! closure, so the worker binary bootstraps from specs, the way any
//! multi-process system boots from configuration rather than code.

use super::plan::ShardPlan;
use super::wire::{
    put_bytes, put_u32, put_u64, read_frame, write_frame, Cursor, FrameReader, WireError,
};
use super::worker::ShardWorker;
use crate::config::{self, EngineEnvError};
use crate::protocols::{FloodMax, PortEcho, StaggeredSum};
use deco_graph::Graph;
use deco_local::arena::PortArena;
use deco_local::network::Network;
use deco_local::runner::{NodeProgram, Protocol, RunError, RunOutcome};
use std::io;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

// Coordinator → worker frame tags.
const T_INIT: u8 = 0x01;
const T_SEND_REQ: u8 = 0x02;
const T_DELIVER: u8 = 0x03;
const T_FINISH: u8 = 0x04;
const T_SHUTDOWN: u8 = 0x05;
// Worker → coordinator frame tags.
const T_INIT_ACK: u8 = 0x81;
const T_CUT_OUT: u8 = 0x82;
const T_DONE: u8 = 0x83;
const T_OUTPUTS: u8 = 0x84;

/// A message type that can cross the wire. Implemented for the message
/// types of the stock protocols; the encoding is fixed-width little-endian
/// (no self-description — coordinator and workers share the schema).
pub trait WireMsg: Clone + Send + Sync {
    /// Appends this message's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one message, consuming exactly its encoding.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData`/`UnexpectedEof` on a malformed payload.
    fn decode(c: &mut Cursor<'_>) -> io::Result<Self>;
}

impl WireMsg for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }
    fn decode(c: &mut Cursor<'_>) -> io::Result<u64> {
        Ok(c.u64()?)
    }
}

impl WireMsg for (u64, u64) {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
        put_u64(out, self.1);
    }
    fn decode(c: &mut Cursor<'_>) -> io::Result<(u64, u64)> {
        Ok((c.u64()?, c.u64()?))
    }
}

/// A named protocol the shard workers can bootstrap from a frame — the
/// framed layer's equivalent of handing an executor a `&impl Protocol`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// [`FloodMax`] with the given radius.
    FloodMax {
        /// Rounds to flood.
        radius: u64,
    },
    /// [`PortEcho`] with the given round count.
    PortEcho {
        /// Echo rounds.
        rounds: u64,
    },
    /// [`StaggeredSum`] with the given halting spread.
    StaggeredSum {
        /// Halting times spread over `1..=spread`.
        spread: u64,
    },
}

impl ProtocolSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        let (kind, param) = match *self {
            ProtocolSpec::FloodMax { radius } => (1u8, radius),
            ProtocolSpec::PortEcho { rounds } => (2, rounds),
            ProtocolSpec::StaggeredSum { spread } => (3, spread),
        };
        out.push(kind);
        put_u64(out, param);
    }

    fn decode(c: &mut Cursor<'_>) -> io::Result<ProtocolSpec> {
        let kind = c.u8()?;
        let param = c.u64()?;
        match kind {
            1 => Ok(ProtocolSpec::FloodMax { radius: param }),
            2 => Ok(ProtocolSpec::PortEcho { rounds: param }),
            3 => Ok(ProtocolSpec::StaggeredSum { spread: param }),
            other => Err(WireError::UnknownTag {
                context: "protocol kind",
                tag: other,
            }
            .into()),
        }
    }

    /// Canonical label for reports.
    pub fn label(&self) -> String {
        match *self {
            ProtocolSpec::FloodMax { radius } => format!("flood-max(r={radius})"),
            ProtocolSpec::PortEcho { rounds } => format!("port-echo(r={rounds})"),
            ProtocolSpec::StaggeredSum { spread } => format!("staggered-sum(s={spread})"),
        }
    }
}

/// Per-frame robustness budget for the framed coordinator: how long to
/// wait for each response frame and how many times to retransmit an
/// unanswered request before declaring the shard failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FramedPolicy {
    /// Per-frame receive deadline in milliseconds; `0` disables the
    /// deadline entirely (the coordinator waits forever, pre-hardening
    /// behavior).
    pub timeout_ms: u64,
    /// Retransmissions of an unanswered request before giving up. Retries
    /// are idempotent: workers answer duplicates from a response cache.
    pub retries: u32,
}

impl Default for FramedPolicy {
    fn default() -> FramedPolicy {
        FramedPolicy {
            timeout_ms: config::DEFAULT_SHARD_TIMEOUT_MS,
            retries: 2,
        }
    }
}

impl FramedPolicy {
    /// The default policy with the deadline read from `DECO_SHARD_TIMEOUT_MS`
    /// (unset/empty = the 5000 ms default; `0` = no deadline).
    ///
    /// # Errors
    ///
    /// [`EngineEnvError`] when the variable is set but not a non-negative
    /// integer — callers surface this as exit code 2 like every other
    /// engine env knob.
    pub fn from_env() -> Result<FramedPolicy, EngineEnvError> {
        let raw = std::env::var(config::ENV_SHARD_TIMEOUT).unwrap_or_default();
        let timeout_ms =
            config::parse_timeout_ms(&raw)?.unwrap_or(config::DEFAULT_SHARD_TIMEOUT_MS);
        Ok(FramedPolicy {
            timeout_ms,
            ..FramedPolicy::default()
        })
    }

    /// Replaces the per-frame deadline.
    pub fn with_timeout_ms(mut self, timeout_ms: u64) -> FramedPolicy {
        self.timeout_ms = timeout_ms;
        self
    }

    /// Replaces the retransmission budget.
    pub fn with_retries(mut self, retries: u32) -> FramedPolicy {
        self.retries = retries;
        self
    }

    fn timeout(&self) -> Option<Duration> {
        if self.timeout_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(self.timeout_ms))
        }
    }
}

/// Why a shard was declared failed — the cause inside [`ShardFailed`].
/// `Copy` on purpose: it travels up into `deco-core`'s `SolveError`
/// without forcing that type to give up `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFailure {
    /// The worker sent nothing within the per-frame budget, through every
    /// retransmission — it is stalled, wedged, or unreachable.
    Timeout {
        /// The per-frame deadline that expired, in milliseconds.
        budget_ms: u64,
    },
    /// The worker hung up mid-protocol (process died, pipe broke, socket
    /// reset).
    Disconnected,
    /// The worker sent bytes that do not decode as the expected frame.
    Malformed,
}

impl std::fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ShardFailure::Timeout { budget_ms } => {
                write!(f, "no response within the {budget_ms} ms frame budget")
            }
            ShardFailure::Disconnected => write!(f, "worker disconnected mid-protocol"),
            ShardFailure::Malformed => write!(f, "worker sent a malformed frame"),
        }
    }
}

/// Structured failure of one shard: which worker, and why. This is what a
/// dead, stalled, or corrupted shard surfaces as — within the timeout
/// budget, instead of a hang or a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFailed {
    /// Index of the failed shard.
    pub shard: usize,
    /// What went wrong.
    pub cause: ShardFailure,
}

impl std::fmt::Display for ShardFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} failed: {}", self.shard, self.cause)
    }
}

impl std::error::Error for ShardFailed {}

/// One byte pipe between the coordinator and one shard worker.
pub trait ShardConn: Send {
    /// Sends one frame payload.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (a dead peer surfaces here).
    fn send(&mut self, payload: &[u8]) -> io::Result<()>;

    /// Receives the next frame payload. A `None` deadline blocks until a
    /// frame arrives; `UnexpectedEof` means the peer shut down cleanly.
    ///
    /// Every coordinator-side connection enforces the deadline (`TimedOut`
    /// when it expires). Worker-side endpoints (stdio, the serving half of
    /// a socket) only ever block — the coordinator owns all deadlines.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; `TimedOut` when a deadline expires.
    fn recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<Vec<u8>>;

    /// Receives the next frame payload, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.recv_timeout(None)
    }
}

/// Launches the worker endpoints the coordinator talks to — the *only*
/// thing that differs between running shards as threads, processes, or
/// remote peers.
pub trait ShardTransport {
    /// The connection type this transport hands out.
    type Conn: ShardConn;

    /// Launches `shards` workers and returns one connection per shard, in
    /// shard order.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures (missing binary, exhausted pids, …).
    fn launch(&self, shards: usize) -> io::Result<Vec<Self::Conn>>;

    /// Short label for reports and test names.
    fn label(&self) -> &'static str;
}

/// In-process transport: each shard worker is a thread, frames travel over
/// `mpsc` channels. The default transport — everything the framed protocol
/// does except process isolation, with nothing to spawn or clean up.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelTransport;

/// Coordinator-side endpoint of a [`ChannelTransport`] worker.
#[derive(Debug)]
pub struct ChannelConn {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
}

impl ShardConn for ChannelConn {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        self.tx
            .send(payload.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "shard worker hung up"))
    }

    fn recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<Vec<u8>> {
        match timeout {
            None => self.rx.recv().map_err(|_| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "shard worker disconnected")
            }),
            Some(t) => match self.rx.recv_timeout(t) {
                Ok(p) => Ok(p),
                Err(mpsc::RecvTimeoutError::Timeout) => Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no frame within the receive deadline",
                )),
                Err(mpsc::RecvTimeoutError::Disconnected) => Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "shard worker disconnected",
                )),
            },
        }
    }
}

impl ShardTransport for ChannelTransport {
    type Conn = ChannelConn;

    fn launch(&self, shards: usize) -> io::Result<Vec<ChannelConn>> {
        let mut conns = Vec::with_capacity(shards);
        for s in 0..shards {
            let (to_worker, from_coord) = mpsc::channel::<Vec<u8>>();
            let (to_coord, from_worker) = mpsc::channel::<Vec<u8>>();
            std::thread::Builder::new()
                .name(format!("deco-shard-{s}"))
                .spawn(move || {
                    let mut conn = ChannelConn {
                        tx: to_coord,
                        rx: from_coord,
                    };
                    // A worker error (or panic) drops the channel; the
                    // coordinator sees the hangup as an io error rather
                    // than a deadlock.
                    let _ = serve(&mut conn);
                })?;
            conns.push(ChannelConn {
                tx: to_worker,
                rx: from_worker,
            });
        }
        Ok(conns)
    }

    fn label(&self) -> &'static str {
        "channel"
    }
}

/// Multi-process transport: each shard worker is a `deco-shardd` child
/// process speaking frames over stdio. Child stdout is pumped by a
/// [`FrameReader`] thread, so receives honor the coordinator's per-frame
/// deadline — a wedged child surfaces as a timeout (and is killed on
/// drop), never as a coordinator that hangs forever.
#[derive(Debug, Clone)]
pub struct ProcessTransport {
    bin: PathBuf,
    args: Vec<String>,
}

impl ProcessTransport {
    /// A transport spawning the worker binary at `bin` (tests use
    /// `env!("CARGO_BIN_EXE_deco-shardd")`).
    pub fn new(bin: impl Into<PathBuf>) -> ProcessTransport {
        ProcessTransport {
            bin: bin.into(),
            args: Vec::new(),
        }
    }

    /// Extra arguments passed to every spawned worker (tests use
    /// `--stall` to simulate a wedged child).
    pub fn with_args<I, S>(mut self, args: I) -> ProcessTransport
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.args = args.into_iter().map(Into::into).collect();
        self
    }
}

/// Coordinator-side endpoint of one `deco-shardd` child.
#[derive(Debug)]
pub struct ProcessConn {
    child: Child,
    stdin: ChildStdin,
    reader: FrameReader,
}

impl ShardConn for ProcessConn {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stdin, payload)
    }

    fn recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<Vec<u8>> {
        self.reader.recv_timeout(timeout)
    }
}

impl Drop for ProcessConn {
    fn drop(&mut self) {
        // Normal shutdown already sent Shutdown and the child exited; this
        // is the abnormal path (coordinator error, shard declared failed),
        // where we must not leak the child.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl ShardTransport for ProcessTransport {
    type Conn = ProcessConn;

    fn launch(&self, shards: usize) -> io::Result<Vec<ProcessConn>> {
        let mut conns = Vec::with_capacity(shards);
        for s in 0..shards {
            let mut child = Command::new(&self.bin)
                .args(&self.args)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()?;
            let stdin = child.stdin.take().expect("stdin piped");
            let stdout = io::BufReader::new(child.stdout.take().expect("stdout piped"));
            let reader = FrameReader::spawn(stdout, &format!("proc-{s}"))?;
            conns.push(ProcessConn {
                child,
                stdin,
                reader,
            });
        }
        Ok(conns)
    }

    fn label(&self) -> &'static str {
        "process"
    }
}

/// Everything a worker needs to boot: the full (read-only) topology plus
/// its shard assignment. Workers rebuild the [`ShardPlan`] locally — the
/// plan is a pure function of graph and shard count, so shipping it would
/// only add a consistency obligation.
struct WorkerInit {
    shards: usize,
    shard: usize,
    threads: usize,
    max_rounds: u64,
    protocol: ProtocolSpec,
    n: usize,
    edges: Vec<(usize, usize)>,
    ids: Vec<u64>,
}

impl WorkerInit {
    fn encode(&self) -> Vec<u8> {
        let mut out = vec![T_INIT];
        put_u32(&mut out, self.shards as u32);
        put_u32(&mut out, self.shard as u32);
        put_u32(&mut out, self.threads as u32);
        put_u64(&mut out, self.max_rounds);
        self.protocol.encode(&mut out);
        put_u64(&mut out, self.n as u64);
        put_u64(&mut out, self.edges.len() as u64);
        for &(u, v) in &self.edges {
            put_u32(&mut out, u as u32);
            put_u32(&mut out, v as u32);
        }
        for &id in &self.ids {
            put_u64(&mut out, id);
        }
        out
    }

    fn decode(payload: &[u8]) -> io::Result<WorkerInit> {
        let mut c = Cursor::new(payload);
        let tag = c.u8()?;
        if tag != T_INIT {
            return Err(WireError::UnknownTag {
                context: "Init frame",
                tag,
            }
            .into());
        }
        let shards = c.u32()? as usize;
        let shard = c.u32()? as usize;
        let threads = c.u32()? as usize;
        let max_rounds = c.u64()?;
        let protocol = ProtocolSpec::decode(&mut c)?;
        let n = c.u64()? as usize;
        // Counts are capped against the bytes actually present, so a
        // bit-flipped count can never drive a giant allocation.
        let m = c.count(8)?;
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            edges.push((c.u32()? as usize, c.u32()? as usize));
        }
        if n > c.remaining() / 8 {
            return Err(WireError::Truncated.into());
        }
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(c.u64()?);
        }
        if !c.finished() {
            return Err(WireError::TrailingBytes {
                context: "Init frame",
            }
            .into());
        }
        Ok(WorkerInit {
            shards,
            shard,
            threads,
            max_rounds,
            protocol,
            n,
            edges,
            ids,
        })
    }
}

/// Outcome of a framed sharded run, with the exchange-volume measurements
/// the `engine-shard` experiment reports.
#[derive(Debug, Clone)]
pub struct FramedRun {
    /// The observable outcome — bit-identical to the serial runner's.
    pub outcome: RunOutcome<u64>,
    /// Shards actually launched (≤ requested; the plan degrades on tiny
    /// graphs).
    pub shards: usize,
    /// Edges crossing shard boundaries.
    pub cut_edges: usize,
    /// Fraction of edges crossing shard boundaries.
    pub cut_fraction: f64,
    /// Payload bytes of the cut exchange itself (CutOut + Deliver frames,
    /// both directions, sequence prefix included).
    pub exchange_bytes: u64,
    /// All frame payload bytes both directions, including init and
    /// output collection. Retransmissions are not counted — this measures
    /// the logical exchange, so it is identical across transports.
    pub total_bytes: u64,
}

impl FramedRun {
    /// Mean cut-exchange payload bytes per executed round (0 for runs that
    /// finished before any round).
    pub fn exchange_bytes_per_round(&self) -> f64 {
        if self.outcome.rounds == 0 {
            0.0
        } else {
            self.exchange_bytes as f64 / self.outcome.rounds as f64
        }
    }
}

/// Error from [`run_framed`]: the model-level error the serial runner
/// would also report, a structured per-shard failure, or a transport
/// launch failure.
#[derive(Debug)]
pub enum FramedError {
    /// The protocol hit the round limit — the same error, with the same
    /// payload, the serial runner returns.
    Run(RunError),
    /// One shard died, stalled past its budget, or sent garbage.
    Shard(ShardFailed),
    /// The transport itself failed before any shard could be blamed
    /// (spawn failure, missing binary, bind failure).
    Io(io::Error),
}

impl std::fmt::Display for FramedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FramedError::Run(e) => write!(f, "{e}"),
            FramedError::Shard(e) => write!(f, "{e}"),
            FramedError::Io(e) => write!(f, "shard transport failed: {e}"),
        }
    }
}

impl std::error::Error for FramedError {}

impl From<io::Error> for FramedError {
    fn from(e: io::Error) -> FramedError {
        FramedError::Io(e)
    }
}

impl From<ShardFailed> for FramedError {
    fn from(e: ShardFailed) -> FramedError {
        FramedError::Shard(e)
    }
}

/// Coordinator-side wrapper around one shard connection: stamps sequence
/// numbers on requests, enforces the per-frame deadline on responses,
/// retransmits on timeout, discards stale duplicates, and classifies
/// every failure into a [`ShardFailed`].
struct CoordConn<C: ShardConn> {
    conn: C,
    shard: usize,
    policy: FramedPolicy,
    seq: u64,
    last_req: Vec<u8>,
}

impl<C: ShardConn> CoordConn<C> {
    fn new(conn: C, shard: usize, policy: FramedPolicy) -> CoordConn<C> {
        CoordConn {
            conn,
            shard,
            policy,
            seq: 0,
            last_req: Vec::new(),
        }
    }

    fn fail(&self, cause: ShardFailure) -> ShardFailed {
        ShardFailed {
            shard: self.shard,
            cause,
        }
    }

    fn classify(&self, e: &io::Error) -> ShardFailed {
        self.fail(match e.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ShardFailure::Timeout {
                budget_ms: self.policy.timeout_ms,
            },
            io::ErrorKind::InvalidData => ShardFailure::Malformed,
            _ => ShardFailure::Disconnected,
        })
    }

    /// Sends one request frame under a fresh sequence number, remembering
    /// it for retransmission. Returns the logical frame length.
    fn request(&mut self, payload: &[u8]) -> Result<u64, ShardFailed> {
        self.seq += 1;
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u64(&mut frame, self.seq);
        frame.extend_from_slice(payload);
        let len = frame.len() as u64;
        self.last_req = frame;
        match self.conn.send(&self.last_req) {
            Ok(()) => Ok(len),
            Err(e) => Err(self.classify(&e)),
        }
    }

    /// Awaits the response to the outstanding request: enforces the
    /// deadline, retransmits up to the retry budget, skips stale duplicate
    /// responses, and checks the leading tag. Returns the response payload
    /// (tag first, sequence prefix stripped) and the logical frame length.
    fn response(&mut self, expect: u8) -> Result<(Vec<u8>, u64), ShardFailed> {
        let mut attempts = 0u32;
        // A peer replaying stale frames forever must not pin us in this
        // loop; past this budget the stream is declared garbage.
        let mut stale_budget = 1024u32;
        loop {
            match self.conn.recv_timeout(self.policy.timeout()) {
                Ok(frame) => {
                    let mut c = Cursor::new(&frame);
                    let Ok(rseq) = c.u64() else {
                        return Err(self.fail(ShardFailure::Malformed));
                    };
                    if rseq < self.seq {
                        // Response to a request we already gave up waiting
                        // for (a retransmission raced its answer).
                        stale_budget -= 1;
                        if stale_budget == 0 {
                            return Err(self.fail(ShardFailure::Malformed));
                        }
                        continue;
                    }
                    if rseq > self.seq {
                        return Err(self.fail(ShardFailure::Malformed));
                    }
                    return match frame.get(8) {
                        Some(&t) if t == expect => Ok((frame[8..].to_vec(), frame.len() as u64)),
                        _ => Err(self.fail(ShardFailure::Malformed)),
                    };
                }
                Err(e)
                    if e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::WouldBlock =>
                {
                    attempts += 1;
                    if attempts > self.policy.retries {
                        return Err(self.fail(ShardFailure::Timeout {
                            budget_ms: self.policy.timeout_ms,
                        }));
                    }
                    // The request or its response may have been lost in
                    // transit; retransmit. The worker deduplicates by
                    // sequence number, so this is idempotent.
                    if let Err(e) = self.conn.send(&self.last_req) {
                        return Err(self.classify(&e));
                    }
                }
                Err(e) => return Err(self.classify(&e)),
            }
        }
    }

    /// Best-effort fire-and-forget (Shutdown): failures are ignored — the
    /// peer may already be gone, which is fine.
    fn fire(&mut self, payload: &[u8]) {
        self.seq += 1;
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u64(&mut frame, self.seq);
        frame.extend_from_slice(payload);
        let _ = self.conn.send(&frame);
    }
}

/// Runs `spec` on `(g, ids)` sharded over `transport` under the default
/// [`FramedPolicy`], driving the framed coordinator loop: init, per-round
/// send/route/deliver, output collection. Observationally identical to the
/// serial runner for every shard count, thread count, and transport.
///
/// # Errors
///
/// [`FramedError::Run`] exactly when the serial runner errors;
/// [`FramedError::Shard`] when a worker dies, stalls, or corrupts frames;
/// [`FramedError::Io`] when the transport fails to launch.
pub fn run_framed<T: ShardTransport>(
    transport: &T,
    g: &Graph,
    ids: &[u64],
    spec: ProtocolSpec,
    shards: usize,
    threads_per_shard: usize,
    max_rounds: u64,
) -> Result<FramedRun, FramedError> {
    run_framed_with(
        transport,
        g,
        ids,
        spec,
        shards,
        threads_per_shard,
        max_rounds,
        FramedPolicy::default(),
    )
}

/// [`run_framed`] with an explicit robustness [`FramedPolicy`].
///
/// # Errors
///
/// As [`run_framed`].
#[allow(clippy::too_many_arguments)]
pub fn run_framed_with<T: ShardTransport>(
    transport: &T,
    g: &Graph,
    ids: &[u64],
    spec: ProtocolSpec,
    shards: usize,
    threads_per_shard: usize,
    max_rounds: u64,
    policy: FramedPolicy,
) -> Result<FramedRun, FramedError> {
    let n = g.num_nodes();
    let plan = ShardPlan::new(g, shards);
    let k = plan.shards();
    if k == 0 {
        if deco_trace::enabled() {
            deco_trace::count(deco_trace::Counter::Messages, 0);
            deco_trace::count(deco_trace::Counter::Rounds, 0);
            deco_trace::count(deco_trace::Counter::ShardExchangeBytes, 0);
        }
        return Ok(FramedRun {
            outcome: RunOutcome {
                outputs: Vec::new(),
                rounds: 0,
                messages: 0,
            },
            shards: 0,
            cut_edges: 0,
            cut_fraction: 0.0,
            exchange_bytes: 0,
            total_bytes: 0,
        });
    }
    let edges: Vec<(usize, usize)> = g
        .edge_list()
        .iter()
        .map(|&[u, v]| (u.index(), v.index()))
        .collect();
    let mut conns: Vec<CoordConn<T::Conn>> = transport
        .launch(k)?
        .into_iter()
        .enumerate()
        .map(|(s, c)| CoordConn::new(c, s, policy))
        .collect();
    let mut total_bytes = 0u64;
    let mut exchange_bytes = 0u64;

    for (s, conn) in conns.iter_mut().enumerate() {
        let init = WorkerInit {
            // The *requested* count, not the degraded `k`: ShardPlan is a
            // pure function of (graph, requested), and re-running it with
            // the degraded count can produce a different partition — the
            // workers must derive exactly the coordinator's plan.
            shards,
            shard: s,
            threads: threads_per_shard,
            max_rounds,
            protocol: spec,
            n,
            edges: edges.clone(),
            ids: ids.to_vec(),
        }
        .encode();
        total_bytes += conn.request(&init)?;
    }
    let mut active = Vec::with_capacity(k);
    for conn in conns.iter_mut() {
        let (p, got) = conn.response(T_INIT_ACK)?;
        total_bytes += got;
        let mut c = Cursor::new(&p[1..]);
        let a = c.u64().map_err(|_| conn.fail(ShardFailure::Malformed))?;
        active.push(a);
    }

    let mut total: u64 = active.iter().sum();
    let mut rounds = 0u64;
    let mut messages = 0u64;
    while total > 0 {
        if rounds >= max_rounds {
            for conn in conns.iter_mut() {
                conn.fire(&[T_SHUTDOWN]);
            }
            return Err(FramedError::Run(RunError::RoundLimitExceeded {
                limit: max_rounds,
                still_running: total as usize,
            }));
        }
        let round_span = deco_trace::round_span(deco_trace::Phase::Round, rounds);
        // Send phase everywhere, then collect every shard's cut-out.
        for conn in conns.iter_mut() {
            total_bytes += conn.request(&[T_SEND_REQ])?;
        }
        let cut_span = deco_trace::round_span(deco_trace::Phase::CutExchange, rounds);
        let mut outs: Vec<PortArena<Vec<u8>>> = Vec::with_capacity(k);
        for conn in conns.iter_mut() {
            let (p, got) = conn.response(T_CUT_OUT)?;
            total_bytes += got;
            exchange_bytes += got;
            let mut c = Cursor::new(&p[1..]);
            let parsed = (|| -> io::Result<(u64, PortArena<Vec<u8>>)> {
                let sent = c.u64()?;
                let count = c.count(1)?;
                let mut entries = PortArena::new(count);
                for i in 0..count {
                    entries.write(i, get_opt_raw(&mut c)?);
                }
                if !c.finished() {
                    return Err(WireError::TrailingBytes {
                        context: "CutOut frame",
                    }
                    .into());
                }
                Ok((sent, entries))
            })();
            let (sent, entries) = parsed.map_err(|_| conn.fail(ShardFailure::Malformed))?;
            messages += sent;
            outs.push(entries);
        }
        // The cut exchange: route every boundary message to the ghost port
        // of its destination shard, opaquely.
        for (s, conn) in conns.iter_mut().enumerate().take(k) {
            let route = plan.route(s);
            let mut p = vec![T_DELIVER];
            put_u64(&mut p, route.len() as u64);
            for &(t, j) in route {
                put_opt_raw(&mut p, outs[t as usize].get(j as usize));
            }
            let sent = conn.request(&p)?;
            total_bytes += sent;
            exchange_bytes += sent;
        }
        drop(cut_span);
        total = 0;
        for conn in conns.iter_mut() {
            let (p, got) = conn.response(T_DONE)?;
            total_bytes += got;
            let mut c = Cursor::new(&p[1..]);
            let a = c.u64().map_err(|_| conn.fail(ShardFailure::Malformed))?;
            total += a;
        }
        rounds += 1;
        drop(round_span);
    }

    if deco_trace::enabled() {
        deco_trace::count(deco_trace::Counter::Messages, messages);
        deco_trace::count(deco_trace::Counter::Rounds, rounds);
        deco_trace::count(deco_trace::Counter::ShardExchangeBytes, exchange_bytes);
    }

    let mut outputs: Vec<u64> = Vec::with_capacity(n);
    for conn in conns.iter_mut() {
        total_bytes += conn.request(&[T_FINISH])?;
    }
    for conn in conns.iter_mut() {
        let (p, got) = conn.response(T_OUTPUTS)?;
        total_bytes += got;
        let mut c = Cursor::new(&p[1..]);
        let parsed = (|| -> io::Result<Vec<u64>> {
            let count = c.count(8)?;
            let mut part = Vec::with_capacity(count);
            for _ in 0..count {
                part.push(c.u64()?);
            }
            if !c.finished() {
                return Err(WireError::TrailingBytes {
                    context: "Outputs frame",
                }
                .into());
            }
            Ok(part)
        })();
        let part = parsed.map_err(|_| conn.fail(ShardFailure::Malformed))?;
        outputs.extend_from_slice(&part);
    }
    if outputs.len() != n {
        return Err(invalid(format!("expected {n} outputs, got {}", outputs.len())).into());
    }
    for conn in conns.iter_mut() {
        conn.fire(&[T_SHUTDOWN]);
    }
    Ok(FramedRun {
        outcome: RunOutcome {
            outputs,
            rounds,
            messages,
        },
        shards: k,
        cut_edges: plan.num_cut_edges(),
        cut_fraction: plan.cut_fraction(),
        exchange_bytes,
        total_bytes,
    })
}

/// Worker-side request stream: strips sequence numbers off incoming
/// frames, answers retransmitted duplicates from a one-deep response
/// cache (without re-executing the phase — this is what makes coordinator
/// retries idempotent), and stamps responses with the request's sequence.
struct ReqConn<'c, C: ShardConn> {
    conn: &'c mut C,
    last: Option<(u64, Vec<u8>)>,
}

impl<'c, C: ShardConn> ReqConn<'c, C> {
    /// Next *new* request as `(seq, payload)`; `None` on clean peer EOF.
    fn next_request(&mut self) -> io::Result<Option<(u64, Vec<u8>)>> {
        loop {
            let frame = match self.conn.recv() {
                Ok(p) => p,
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
                Err(e) => return Err(e),
            };
            let mut c = Cursor::new(&frame);
            let seq = c.u64()?;
            if let Some((last_seq, cached)) = &self.last {
                if seq == *last_seq {
                    // Retransmission of the request we already answered:
                    // the coordinator missed our response. Resend it
                    // verbatim; do NOT re-execute.
                    let cached = cached.clone();
                    self.conn.send(&cached)?;
                    continue;
                }
            }
            return Ok(Some((seq, frame[8..].to_vec())));
        }
    }

    /// Sends `payload` as the response to request `seq` and caches it for
    /// duplicate requests.
    fn respond(&mut self, seq: u64, payload: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u64(&mut frame, seq);
        frame.extend_from_slice(payload);
        self.conn.send(&frame)?;
        self.last = Some((seq, frame));
        Ok(())
    }
}

/// One worker's whole life over an already-established connection: decode
/// `Init`, rebuild topology and plan, then answer coordinator frames until
/// `Shutdown` or EOF. This exact function runs inside the `deco-shardd`
/// binary (over stdio or a dialed-in socket) and inside every
/// [`ChannelTransport`] thread.
///
/// # Errors
///
/// Propagates transport failures and malformed frames; a clean peer
/// disconnect is `Ok`.
pub fn serve<C: ShardConn>(conn: &mut C) -> io::Result<()> {
    let mut rc = ReqConn { conn, last: None };
    let (init_seq, first) = match rc.next_request()? {
        Some(x) => x,
        None => return Ok(()),
    };
    let init = WorkerInit::decode(&first)?;
    let g = Graph::from_edges(init.n, init.edges.iter().copied())
        .map_err(|e| invalid(format!("bad graph in Init frame: {e}")))?;
    let net = Network::with_ids(&g, init.ids.clone());
    let plan = ShardPlan::new(&g, init.shards);
    if init.shard >= plan.shards() {
        return Err(invalid(format!(
            "shard index {} out of range for {} shards",
            init.shard,
            plan.shards()
        )));
    }
    match init.protocol {
        ProtocolSpec::FloodMax { radius } => {
            serve_protocol(&mut rc, &net, &plan, &init, &FloodMax { radius }, init_seq)
        }
        ProtocolSpec::PortEcho { rounds } => {
            serve_protocol(&mut rc, &net, &plan, &init, &PortEcho { rounds }, init_seq)
        }
        ProtocolSpec::StaggeredSum { spread } => serve_protocol(
            &mut rc,
            &net,
            &plan,
            &init,
            &StaggeredSum { spread },
            init_seq,
        ),
    }
}

/// Serves the worker binary over stdio — `deco-shardd`'s whole `main` when
/// launched without `--connect`.
///
/// # Errors
///
/// Propagates transport failures and malformed frames.
pub fn serve_stdio() -> io::Result<()> {
    struct StdioConn {
        stdin: io::Stdin,
        stdout: io::Stdout,
    }
    impl ShardConn for StdioConn {
        fn send(&mut self, payload: &[u8]) -> io::Result<()> {
            write_frame(&mut self.stdout.lock(), payload)
        }
        // Worker side: only ever called without a deadline (the
        // coordinator owns all deadlines), so this blocks.
        fn recv_timeout(&mut self, _timeout: Option<Duration>) -> io::Result<Vec<u8>> {
            read_frame(&mut self.stdin.lock())
        }
    }
    serve(&mut StdioConn {
        stdin: io::stdin(),
        stdout: io::stdout(),
    })
}

/// The typed half of the worker loop, once the protocol is known.
fn serve_protocol<C, P>(
    rc: &mut ReqConn<'_, C>,
    net: &Network<'_>,
    plan: &ShardPlan,
    init: &WorkerInit,
    protocol: &P,
    init_seq: u64,
) -> io::Result<()>
where
    C: ShardConn,
    P: Protocol,
    P::Program: Send + NodeProgram<Output = u64>,
    <P::Program as NodeProgram>::Msg: WireMsg,
{
    let mut worker: ShardWorker<'_, '_, P> =
        ShardWorker::spawn(net, plan, init.shard, init.threads, protocol);
    let mut ack = vec![T_INIT_ACK];
    put_u64(&mut ack, worker.active() as u64);
    rc.respond(init_seq, &ack)?;
    loop {
        let (seq, frame) = match rc.next_request()? {
            Some(x) => x,
            None => return Ok(()),
        };
        match frame.first().copied() {
            Some(T_SEND_REQ) => {
                let (cut_out, sent) = worker.send_phase();
                let mut p = vec![T_CUT_OUT];
                put_u64(&mut p, sent);
                put_u64(&mut p, cut_out.len() as u64);
                for i in 0..cut_out.len() {
                    put_opt_msg(&mut p, cut_out.get(i));
                }
                rc.respond(seq, &p)?;
            }
            Some(T_DELIVER) => {
                let mut c = Cursor::new(&frame[1..]);
                let count = c.count(1)?;
                if count != plan.cut_ports(init.shard).len() {
                    return Err(invalid("Deliver entry count mismatch"));
                }
                let mut ghost = PortArena::new(count);
                for i in 0..count {
                    ghost.write(i, get_opt_msg(&mut c)?);
                }
                if !c.finished() {
                    return Err(WireError::TrailingBytes {
                        context: "Deliver frame",
                    }
                    .into());
                }
                let active = worker.receive_phase(&ghost);
                let mut p = vec![T_DONE];
                put_u64(&mut p, active as u64);
                rc.respond(seq, &p)?;
            }
            Some(T_FINISH) => {
                let outs = worker.snapshot_outputs();
                let mut p = vec![T_OUTPUTS];
                put_u64(&mut p, outs.len() as u64);
                for o in outs {
                    put_u64(&mut p, o);
                }
                rc.respond(seq, &p)?;
            }
            Some(T_SHUTDOWN) => return Ok(()),
            Some(other) => {
                return Err(WireError::UnknownTag {
                    context: "coordinator request",
                    tag: other,
                }
                .into())
            }
            None => {
                return Err(WireError::Invalid {
                    context: "empty request frame",
                }
                .into())
            }
        }
    }
}

/// Encodes an optional typed message as an opaque entry (`0` = silent,
/// `1` + length-prefixed bytes = present).
fn put_opt_msg<M: WireMsg>(out: &mut Vec<u8>, m: Option<&M>) {
    match m {
        None => out.push(0),
        Some(m) => {
            out.push(1);
            let mut b = Vec::new();
            m.encode(&mut b);
            put_bytes(out, &b);
        }
    }
}

/// Decodes an opaque entry into a typed optional message.
fn get_opt_msg<M: WireMsg>(c: &mut Cursor<'_>) -> io::Result<Option<M>> {
    match c.u8()? {
        0 => Ok(None),
        1 => {
            let b = c.bytes()?;
            let mut inner = Cursor::new(b);
            let m = M::decode(&mut inner)?;
            if !inner.finished() {
                return Err(WireError::TrailingBytes {
                    context: "message entry",
                }
                .into());
            }
            Ok(Some(m))
        }
        other => Err(WireError::UnknownTag {
            context: "opt entry",
            tag: other,
        }
        .into()),
    }
}

/// Encodes an already-encoded opaque entry verbatim (coordinator side:
/// routing only).
fn put_opt_raw(out: &mut Vec<u8>, m: Option<&Vec<u8>>) {
    match m {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            put_bytes(out, b);
        }
    }
}

/// Decodes an opaque entry without interpreting the payload (coordinator
/// side: routing only).
fn get_opt_raw(c: &mut Cursor<'_>) -> io::Result<Option<Vec<u8>>> {
    match c.u8()? {
        0 => Ok(None),
        1 => Ok(Some(c.bytes()?.to_vec())),
        other => Err(WireError::UnknownTag {
            context: "opt entry",
            tag: other,
        }
        .into()),
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;
    use deco_local::network::IdAssignment;
    use deco_local::{Executor, SerialExecutor};
    use rand::prelude::*;

    fn seq_ids(n: usize) -> Vec<u64> {
        (1..=n as u64).collect()
    }

    #[test]
    fn channel_transport_matches_serial() {
        let g = generators::random_regular(36, 4, 7);
        let ids = seq_ids(36);
        let net = Network::with_ids(&g, ids.clone());
        for spec in [
            ProtocolSpec::FloodMax { radius: 5 },
            ProtocolSpec::PortEcho { rounds: 3 },
            ProtocolSpec::StaggeredSum { spread: 6 },
        ] {
            let serial = match spec {
                ProtocolSpec::FloodMax { radius } => {
                    SerialExecutor.execute(&net, &FloodMax { radius }, 50)
                }
                ProtocolSpec::PortEcho { rounds } => {
                    SerialExecutor.execute(&net, &PortEcho { rounds }, 50)
                }
                ProtocolSpec::StaggeredSum { spread } => {
                    SerialExecutor.execute(&net, &StaggeredSum { spread }, 50)
                }
            }
            .unwrap();
            for shards in [1, 2, 4] {
                let run = run_framed(&ChannelTransport, &g, &ids, spec, shards, 1, 50).unwrap();
                assert_eq!(serial.outputs, run.outcome.outputs, "{spec:?} k={shards}");
                assert_eq!(serial.rounds, run.outcome.rounds, "{spec:?} k={shards}");
                assert_eq!(serial.messages, run.outcome.messages, "{spec:?} k={shards}");
            }
        }
    }

    #[test]
    fn round_limit_error_matches_serial() {
        let g = generators::path(6);
        let ids = seq_ids(6);
        let net = Network::with_ids(&g, ids.clone());
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 100 }, 4)
            .unwrap_err();
        let err = run_framed(
            &ChannelTransport,
            &g,
            &ids,
            ProtocolSpec::FloodMax { radius: 100 },
            2,
            1,
            4,
        )
        .unwrap_err();
        match err {
            FramedError::Run(e) => assert_eq!(e, serial),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn exchange_bytes_are_counted() {
        let g = generators::cycle(30);
        let ids = seq_ids(30);
        let run = run_framed(
            &ChannelTransport,
            &g,
            &ids,
            ProtocolSpec::FloodMax { radius: 4 },
            3,
            1,
            50,
        )
        .unwrap();
        assert_eq!(run.shards, 3);
        assert_eq!(run.cut_edges, 3, "three arcs, three boundary edges");
        assert!(run.exchange_bytes > 0);
        assert!(run.total_bytes > run.exchange_bytes);
        assert!(run.exchange_bytes_per_round() > 0.0);
    }

    #[test]
    fn worker_init_round_trips() {
        let init = WorkerInit {
            shards: 4,
            shard: 2,
            threads: 2,
            max_rounds: 77,
            protocol: ProtocolSpec::StaggeredSum { spread: 9 },
            n: 3,
            edges: vec![(0, 1), (1, 2)],
            ids: vec![5, 1, 9],
        };
        let back = WorkerInit::decode(&init.encode()).unwrap();
        assert_eq!(back.shards, 4);
        assert_eq!(back.shard, 2);
        assert_eq!(back.threads, 2);
        assert_eq!(back.max_rounds, 77);
        assert_eq!(back.protocol, ProtocolSpec::StaggeredSum { spread: 9 });
        assert_eq!(back.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(back.ids, vec![5, 1, 9]);
    }

    /// Seeded corruption of Init frames: truncations, bit flips, and junk
    /// suffixes must decode to named errors (or benign value changes) —
    /// never panic, never allocate beyond the corrupted buffer. The
    /// interesting case is a bit-flipped edge/id *count*: the capped
    /// sequence reads reject it instead of pre-allocating gigabytes.
    #[test]
    fn worker_init_corruption_never_panics() {
        let mut rng = StdRng::seed_from_u64(0xBADC0DE);
        let init = WorkerInit {
            shards: 4,
            shard: 1,
            threads: 2,
            max_rounds: 50,
            protocol: ProtocolSpec::FloodMax { radius: 6 },
            n: 12,
            edges: (0..11).map(|i| (i, i + 1)).collect(),
            ids: (1..=12).collect(),
        };
        let good = init.encode();
        WorkerInit::decode(&good).unwrap();
        for case in 0..400u32 {
            let mut bad = good.clone();
            match rng.gen_range(0..3u32) {
                0 => bad.truncate(rng.gen_range(0..bad.len())),
                1 => {
                    let i = rng.gen_range(0..bad.len());
                    bad[i] ^= 1 << rng.gen_range(0..8u32);
                }
                2 => bad.extend_from_slice(&[0xEE; 5]),
                _ => unreachable!(),
            }
            // Reaching the next iteration proves no panic/OOM; errors (the
            // common case) must be io-typed, which `decode` guarantees.
            let _ = WorkerInit::decode(&bad);
            let _ = case;
        }
    }

    #[test]
    fn duplicate_requests_are_answered_from_cache() {
        // Worker side of the idempotence contract: the same sequence
        // number asked twice yields the same response bytes without
        // re-executing the phase (re-execution would advance the round
        // state and change the CutOut).
        let (to_worker, from_coord) = mpsc::channel::<Vec<u8>>();
        let (to_coord, from_worker) = mpsc::channel::<Vec<u8>>();
        let handle = std::thread::spawn(move || {
            let mut conn = ChannelConn {
                tx: to_coord,
                rx: from_coord,
            };
            serve(&mut conn)
        });
        let g = generators::cycle(8);
        let ids: Vec<u64> = (1..=8).collect();
        let edges: Vec<(usize, usize)> = g
            .edge_list()
            .iter()
            .map(|&[u, v]| (u.index(), v.index()))
            .collect();
        let init = WorkerInit {
            shards: 2,
            shard: 0,
            threads: 1,
            max_rounds: 50,
            protocol: ProtocolSpec::FloodMax { radius: 3 },
            n: 8,
            edges,
            ids,
        }
        .encode();
        let send = |seq: u64, payload: &[u8]| {
            let mut f = Vec::new();
            put_u64(&mut f, seq);
            f.extend_from_slice(payload);
            to_worker.send(f).unwrap();
        };
        send(1, &init);
        let ack = from_worker.recv().unwrap();
        assert_eq!(ack[8], T_INIT_ACK);
        // Ask for the send phase twice under the same sequence number.
        send(2, &[T_SEND_REQ]);
        let first = from_worker.recv().unwrap();
        assert_eq!(first[8], T_CUT_OUT);
        send(2, &[T_SEND_REQ]);
        let second = from_worker.recv().unwrap();
        assert_eq!(first, second, "duplicate answered from cache, verbatim");
        send(3, &[T_SHUTDOWN]);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn zero_timeout_policy_disables_the_deadline() {
        let p = FramedPolicy::default().with_timeout_ms(0);
        assert_eq!(p.timeout(), None);
        let g = generators::cycle(12);
        let ids = seq_ids(12);
        let run = run_framed_with(
            &ChannelTransport,
            &g,
            &ids,
            ProtocolSpec::FloodMax { radius: 3 },
            2,
            1,
            50,
            p,
        )
        .unwrap();
        assert_eq!(run.shards, 2);
    }

    #[test]
    fn rebuilt_graph_preserves_ports() {
        // The worker reconstructs the graph from the shipped edge list; the
        // port numbering (hence delivery) must survive the round trip.
        let g = generators::random_regular(20, 4, 3);
        let edges: Vec<(usize, usize)> = g
            .edge_list()
            .iter()
            .map(|&[u, v]| (u.index(), v.index()))
            .collect();
        let back = Graph::from_edges(20, edges).unwrap();
        assert_eq!(g.edge_list(), back.edge_list());
        for v in g.nodes() {
            assert_eq!(g.adjacent(v), back.adjacent(v));
        }
    }

    #[test]
    fn degraded_shard_count_still_matches_serial() {
        // Fewer nodes than requested shards: the plan degrades. Regression:
        // the coordinator used to send the *degraded* count in Init, and
        // ShardPlan::new(g, degraded) can partition differently than
        // ShardPlan::new(g, requested) — workers then rebuilt a mismatched
        // plan (out-of-range shard indices, wrong route tables).
        let g = generators::path(3);
        let ids = seq_ids(3);
        let net = Network::with_ids(&g, ids.clone());
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 3 }, 20)
            .unwrap();
        for requested in [4usize, 8, 16] {
            let run = run_framed(
                &ChannelTransport,
                &g,
                &ids,
                ProtocolSpec::FloodMax { radius: 3 },
                requested,
                1,
                20,
            )
            .unwrap_or_else(|e| panic!("requested={requested}: {e}"));
            assert!(run.shards < requested, "plan must degrade");
            assert_eq!(serial.outputs, run.outcome.outputs, "requested={requested}");
            assert_eq!(serial.rounds, run.outcome.rounds, "requested={requested}");
            assert_eq!(
                serial.messages, run.outcome.messages,
                "requested={requested}"
            );
        }
    }

    #[test]
    fn empty_graph_short_circuits() {
        let g = Graph::empty(0);
        let run = run_framed(
            &ChannelTransport,
            &g,
            &[],
            ProtocolSpec::FloodMax { radius: 3 },
            4,
            1,
            10,
        )
        .unwrap();
        assert!(run.outcome.outputs.is_empty());
        assert_eq!(run.shards, 0);
    }

    #[test]
    fn sparse_ids_cross_the_wire() {
        let g = generators::cycle(16);
        let net = Network::new(&g, IdAssignment::SparseRandom(11));
        let ids = net.ids().to_vec();
        let serial = SerialExecutor
            .execute(&net, &StaggeredSum { spread: 5 }, 30)
            .unwrap();
        let run = run_framed(
            &ChannelTransport,
            &g,
            &ids,
            ProtocolSpec::StaggeredSum { spread: 5 },
            2,
            2,
            30,
        )
        .unwrap();
        assert_eq!(serial.outputs, run.outcome.outputs);
        assert_eq!(serial.messages, run.outcome.messages);
    }
}
