//! The framed shard protocol: coordinator and workers speaking
//! length-prefixed byte frames through a [`ShardTransport`].
//!
//! The in-process [`ShardedExecutor`](crate::shard::ShardedExecutor) moves
//! typed messages between shard threads; this module is the same execution
//! split across *address spaces*. A coordinator owns the round loop and the
//! cut-message routing; each shard worker owns its programs, arena, and
//! ghost ports (the identical per-shard round code the typed engine
//! runs) and speaks only frames:
//!
//! ```text
//! coordinator                                worker s (× shards)
//!     │ ──Init{graph, ids, spec, shard}──────────▶ │ builds Network + ShardPlan
//!     │ ◀──InitAck{active}────────────────────────│
//!     │   per round:                              │
//!     │ ──SendReq─────────────────────────────────▶ │ send phase
//!     │ ◀──CutOut{sent, boundary msgs}────────────│
//!     │   route cut messages between shards       │
//!     │ ──Deliver{ghost msgs}─────────────────────▶ │ receive phase
//!     │ ◀──Done{active}───────────────────────────│
//!     │   until Σ active = 0                      │
//!     │ ──Finish──▶ ◀──Outputs──  ──Shutdown──▶   │
//! ```
//!
//! Cut messages travel as *opaque* length-delimited entries: the
//! coordinator routes them between shards without ever decoding a payload,
//! exactly as a production exchange would. Two transports implement the
//! byte pipes: [`ChannelTransport`] runs each worker as an in-process
//! thread over `mpsc` channels (the default — fast, deterministic, and
//! testable on a 1-CPU container), and [`ProcessTransport`] spawns one
//! `deco-shardd` child process per shard over stdio, proving true
//! multi-process execution. Both run byte-for-byte the same worker loop
//! ([`serve`]), so the differential suite holds them to identical
//! observable behavior — and to the serial runner's.
//!
//! The framed layer runs *named* protocols ([`ProtocolSpec`]) whose
//! messages implement [`WireMsg`]; arbitrary user protocols with
//! non-serializable messages stay on the typed in-process executor. That
//! split is deliberate: a subprocess fundamentally cannot receive a Rust
//! closure, so the worker binary bootstraps from specs, the way any
//! multi-process system boots from configuration rather than code.

use super::plan::ShardPlan;
use super::wire::{put_bytes, put_u32, put_u64, read_frame, write_frame, Cursor};
use super::worker::ShardWorker;
use crate::protocols::{FloodMax, PortEcho, StaggeredSum};
use deco_graph::Graph;
use deco_local::arena::PortArena;
use deco_local::network::Network;
use deco_local::runner::{NodeProgram, Protocol, RunError, RunOutcome};
use std::io;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::mpsc;

// Coordinator → worker frame tags.
const T_INIT: u8 = 0x01;
const T_SEND_REQ: u8 = 0x02;
const T_DELIVER: u8 = 0x03;
const T_FINISH: u8 = 0x04;
const T_SHUTDOWN: u8 = 0x05;
// Worker → coordinator frame tags.
const T_INIT_ACK: u8 = 0x81;
const T_CUT_OUT: u8 = 0x82;
const T_DONE: u8 = 0x83;
const T_OUTPUTS: u8 = 0x84;

/// A message type that can cross the wire. Implemented for the message
/// types of the stock protocols; the encoding is fixed-width little-endian
/// (no self-description — coordinator and workers share the schema).
pub trait WireMsg: Clone + Send + Sync {
    /// Appends this message's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one message, consuming exactly its encoding.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData`/`UnexpectedEof` on a malformed payload.
    fn decode(c: &mut Cursor<'_>) -> io::Result<Self>;
}

impl WireMsg for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }
    fn decode(c: &mut Cursor<'_>) -> io::Result<u64> {
        c.u64()
    }
}

impl WireMsg for (u64, u64) {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
        put_u64(out, self.1);
    }
    fn decode(c: &mut Cursor<'_>) -> io::Result<(u64, u64)> {
        Ok((c.u64()?, c.u64()?))
    }
}

/// A named protocol the shard workers can bootstrap from a frame — the
/// framed layer's equivalent of handing an executor a `&impl Protocol`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// [`FloodMax`] with the given radius.
    FloodMax {
        /// Rounds to flood.
        radius: u64,
    },
    /// [`PortEcho`] with the given round count.
    PortEcho {
        /// Echo rounds.
        rounds: u64,
    },
    /// [`StaggeredSum`] with the given halting spread.
    StaggeredSum {
        /// Halting times spread over `1..=spread`.
        spread: u64,
    },
}

impl ProtocolSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        let (kind, param) = match *self {
            ProtocolSpec::FloodMax { radius } => (1u8, radius),
            ProtocolSpec::PortEcho { rounds } => (2, rounds),
            ProtocolSpec::StaggeredSum { spread } => (3, spread),
        };
        out.push(kind);
        put_u64(out, param);
    }

    fn decode(c: &mut Cursor<'_>) -> io::Result<ProtocolSpec> {
        let kind = c.u8()?;
        let param = c.u64()?;
        match kind {
            1 => Ok(ProtocolSpec::FloodMax { radius: param }),
            2 => Ok(ProtocolSpec::PortEcho { rounds: param }),
            3 => Ok(ProtocolSpec::StaggeredSum { spread: param }),
            other => Err(invalid(format!("unknown protocol kind {other}"))),
        }
    }

    /// Canonical label for reports.
    pub fn label(&self) -> String {
        match *self {
            ProtocolSpec::FloodMax { radius } => format!("flood-max(r={radius})"),
            ProtocolSpec::PortEcho { rounds } => format!("port-echo(r={rounds})"),
            ProtocolSpec::StaggeredSum { spread } => format!("staggered-sum(s={spread})"),
        }
    }
}

/// One byte pipe between the coordinator and one shard worker.
pub trait ShardConn: Send {
    /// Sends one frame payload.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (a dead peer surfaces here).
    fn send(&mut self, payload: &[u8]) -> io::Result<()>;

    /// Receives the next frame payload, blocking until one arrives.
    /// `UnexpectedEof` means the peer shut down cleanly.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
}

/// Launches the worker endpoints the coordinator talks to — the *only*
/// thing that differs between running shards as threads and running them
/// as processes.
pub trait ShardTransport {
    /// The connection type this transport hands out.
    type Conn: ShardConn;

    /// Launches `shards` workers and returns one connection per shard, in
    /// shard order.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures (missing binary, exhausted pids, …).
    fn launch(&self, shards: usize) -> io::Result<Vec<Self::Conn>>;

    /// Short label for reports and test names.
    fn label(&self) -> &'static str;
}

/// In-process transport: each shard worker is a thread, frames travel over
/// `mpsc` channels. The default transport — everything the framed protocol
/// does except process isolation, with nothing to spawn or clean up.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelTransport;

/// Coordinator-side endpoint of a [`ChannelTransport`] worker.
#[derive(Debug)]
pub struct ChannelConn {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
}

impl ShardConn for ChannelConn {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        self.tx
            .send(payload.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "shard worker hung up"))
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "shard worker disconnected"))
    }
}

impl ShardTransport for ChannelTransport {
    type Conn = ChannelConn;

    fn launch(&self, shards: usize) -> io::Result<Vec<ChannelConn>> {
        let mut conns = Vec::with_capacity(shards);
        for s in 0..shards {
            let (to_worker, from_coord) = mpsc::channel::<Vec<u8>>();
            let (to_coord, from_worker) = mpsc::channel::<Vec<u8>>();
            std::thread::Builder::new()
                .name(format!("deco-shard-{s}"))
                .spawn(move || {
                    let mut conn = ChannelConn {
                        tx: to_coord,
                        rx: from_coord,
                    };
                    // A worker error (or panic) drops the channel; the
                    // coordinator sees the hangup as an io error rather
                    // than a deadlock.
                    let _ = serve(&mut conn);
                })?;
            conns.push(ChannelConn {
                tx: to_worker,
                rx: from_worker,
            });
        }
        Ok(conns)
    }

    fn label(&self) -> &'static str {
        "channel"
    }
}

/// Multi-process transport: each shard worker is a `deco-shardd` child
/// process speaking frames over stdio.
#[derive(Debug, Clone)]
pub struct ProcessTransport {
    bin: PathBuf,
}

impl ProcessTransport {
    /// A transport spawning the worker binary at `bin` (tests use
    /// `env!("CARGO_BIN_EXE_deco-shardd")`).
    pub fn new(bin: impl Into<PathBuf>) -> ProcessTransport {
        ProcessTransport { bin: bin.into() }
    }
}

/// Coordinator-side endpoint of one `deco-shardd` child.
#[derive(Debug)]
pub struct ProcessConn {
    child: Child,
    stdin: ChildStdin,
    stdout: io::BufReader<ChildStdout>,
}

impl ShardConn for ProcessConn {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stdin, payload)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        read_frame(&mut self.stdout)
    }
}

impl Drop for ProcessConn {
    fn drop(&mut self) {
        // Normal shutdown already sent Shutdown and the child exited; this
        // is the abnormal path (coordinator error), where we must not leak
        // the child.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl ShardTransport for ProcessTransport {
    type Conn = ProcessConn;

    fn launch(&self, shards: usize) -> io::Result<Vec<ProcessConn>> {
        let mut conns = Vec::with_capacity(shards);
        for _ in 0..shards {
            let mut child = Command::new(&self.bin)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()?;
            let stdin = child.stdin.take().expect("stdin piped");
            let stdout = io::BufReader::new(child.stdout.take().expect("stdout piped"));
            conns.push(ProcessConn {
                child,
                stdin,
                stdout,
            });
        }
        Ok(conns)
    }

    fn label(&self) -> &'static str {
        "process"
    }
}

/// Everything a worker needs to boot: the full (read-only) topology plus
/// its shard assignment. Workers rebuild the [`ShardPlan`] locally — the
/// plan is a pure function of graph and shard count, so shipping it would
/// only add a consistency obligation.
struct WorkerInit {
    shards: usize,
    shard: usize,
    threads: usize,
    max_rounds: u64,
    protocol: ProtocolSpec,
    n: usize,
    edges: Vec<(usize, usize)>,
    ids: Vec<u64>,
}

impl WorkerInit {
    fn encode(&self) -> Vec<u8> {
        let mut out = vec![T_INIT];
        put_u32(&mut out, self.shards as u32);
        put_u32(&mut out, self.shard as u32);
        put_u32(&mut out, self.threads as u32);
        put_u64(&mut out, self.max_rounds);
        self.protocol.encode(&mut out);
        put_u64(&mut out, self.n as u64);
        put_u64(&mut out, self.edges.len() as u64);
        for &(u, v) in &self.edges {
            put_u32(&mut out, u as u32);
            put_u32(&mut out, v as u32);
        }
        for &id in &self.ids {
            put_u64(&mut out, id);
        }
        out
    }

    fn decode(payload: &[u8]) -> io::Result<WorkerInit> {
        let mut c = Cursor::new(payload);
        if c.u8()? != T_INIT {
            return Err(invalid("expected Init frame"));
        }
        let shards = c.u32()? as usize;
        let shard = c.u32()? as usize;
        let threads = c.u32()? as usize;
        let max_rounds = c.u64()?;
        let protocol = ProtocolSpec::decode(&mut c)?;
        let n = c.u64()? as usize;
        let m = c.u64()? as usize;
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            edges.push((c.u32()? as usize, c.u32()? as usize));
        }
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(c.u64()?);
        }
        if !c.finished() {
            return Err(invalid("trailing bytes in Init frame"));
        }
        Ok(WorkerInit {
            shards,
            shard,
            threads,
            max_rounds,
            protocol,
            n,
            edges,
            ids,
        })
    }
}

/// Outcome of a framed sharded run, with the exchange-volume measurements
/// the `engine-shard` experiment reports.
#[derive(Debug, Clone)]
pub struct FramedRun {
    /// The observable outcome — bit-identical to the serial runner's.
    pub outcome: RunOutcome<u64>,
    /// Shards actually launched (≤ requested; the plan degrades on tiny
    /// graphs).
    pub shards: usize,
    /// Edges crossing shard boundaries.
    pub cut_edges: usize,
    /// Fraction of edges crossing shard boundaries.
    pub cut_fraction: f64,
    /// Payload bytes of the cut exchange itself (CutOut + Deliver frames,
    /// both directions).
    pub exchange_bytes: u64,
    /// All frame payload bytes both directions, including init and
    /// output collection.
    pub total_bytes: u64,
}

impl FramedRun {
    /// Mean cut-exchange payload bytes per executed round (0 for runs that
    /// finished before any round).
    pub fn exchange_bytes_per_round(&self) -> f64 {
        if self.outcome.rounds == 0 {
            0.0
        } else {
            self.exchange_bytes as f64 / self.outcome.rounds as f64
        }
    }
}

/// Error from [`run_framed`]: either the model-level error the serial
/// runner would also report, or a transport failure.
#[derive(Debug)]
pub enum FramedError {
    /// The protocol hit the round limit — the same error, with the same
    /// payload, the serial runner returns.
    Run(RunError),
    /// The transport failed (worker died, pipe broke, malformed frame).
    Io(io::Error),
}

impl std::fmt::Display for FramedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FramedError::Run(e) => write!(f, "{e}"),
            FramedError::Io(e) => write!(f, "shard transport failed: {e}"),
        }
    }
}

impl std::error::Error for FramedError {}

impl From<io::Error> for FramedError {
    fn from(e: io::Error) -> FramedError {
        FramedError::Io(e)
    }
}

/// Runs `spec` on `(g, ids)` sharded over `transport`, driving the framed
/// coordinator loop: init, per-round send/route/deliver, output collection.
/// Observationally identical to the serial runner for every shard count,
/// thread count, and transport.
///
/// # Errors
///
/// [`FramedError::Run`] exactly when the serial runner errors;
/// [`FramedError::Io`] when the transport fails.
pub fn run_framed<T: ShardTransport>(
    transport: &T,
    g: &Graph,
    ids: &[u64],
    spec: ProtocolSpec,
    shards: usize,
    threads_per_shard: usize,
    max_rounds: u64,
) -> Result<FramedRun, FramedError> {
    let n = g.num_nodes();
    let plan = ShardPlan::new(g, shards);
    let k = plan.shards();
    if k == 0 {
        if deco_trace::enabled() {
            deco_trace::count(deco_trace::Counter::Messages, 0);
            deco_trace::count(deco_trace::Counter::Rounds, 0);
            deco_trace::count(deco_trace::Counter::ShardExchangeBytes, 0);
        }
        return Ok(FramedRun {
            outcome: RunOutcome {
                outputs: Vec::new(),
                rounds: 0,
                messages: 0,
            },
            shards: 0,
            cut_edges: 0,
            cut_fraction: 0.0,
            exchange_bytes: 0,
            total_bytes: 0,
        });
    }
    let edges: Vec<(usize, usize)> = g
        .edge_list()
        .iter()
        .map(|&[u, v]| (u.index(), v.index()))
        .collect();
    let mut conns = transport.launch(k)?;
    let mut total_bytes = 0u64;
    let mut exchange_bytes = 0u64;

    for (s, conn) in conns.iter_mut().enumerate() {
        let init = WorkerInit {
            // The *requested* count, not the degraded `k`: ShardPlan is a
            // pure function of (graph, requested), and re-running it with
            // the degraded count can produce a different partition — the
            // workers must derive exactly the coordinator's plan.
            shards,
            shard: s,
            threads: threads_per_shard,
            max_rounds,
            protocol: spec,
            n,
            edges: edges.clone(),
            ids: ids.to_vec(),
        }
        .encode();
        total_bytes += init.len() as u64;
        conn.send(&init)?;
    }
    let mut active = Vec::with_capacity(k);
    for conn in conns.iter_mut() {
        let p = expect_frame(conn, T_INIT_ACK)?;
        total_bytes += p.len() as u64;
        let mut c = Cursor::new(&p[1..]);
        active.push(c.u64()?);
    }

    let mut total: u64 = active.iter().sum();
    let mut rounds = 0u64;
    let mut messages = 0u64;
    while total > 0 {
        if rounds >= max_rounds {
            for conn in conns.iter_mut() {
                let _ = conn.send(&[T_SHUTDOWN]);
            }
            return Err(FramedError::Run(RunError::RoundLimitExceeded {
                limit: max_rounds,
                still_running: total as usize,
            }));
        }
        let round_span = deco_trace::round_span(deco_trace::Phase::Round, rounds);
        // Send phase everywhere, then collect every shard's cut-out.
        for conn in conns.iter_mut() {
            total_bytes += 1;
            conn.send(&[T_SEND_REQ])?;
        }
        let cut_span = deco_trace::round_span(deco_trace::Phase::CutExchange, rounds);
        let mut outs: Vec<PortArena<Vec<u8>>> = Vec::with_capacity(k);
        for conn in conns.iter_mut() {
            let p = expect_frame(conn, T_CUT_OUT)?;
            total_bytes += p.len() as u64;
            exchange_bytes += p.len() as u64;
            let mut c = Cursor::new(&p[1..]);
            messages += c.u64()?;
            let count = c.u64()? as usize;
            let mut entries = PortArena::new(count);
            for i in 0..count {
                entries.write(i, get_opt_raw(&mut c)?);
            }
            if !c.finished() {
                return Err(invalid("trailing bytes in CutOut frame").into());
            }
            outs.push(entries);
        }
        // The cut exchange: route every boundary message to the ghost port
        // of its destination shard, opaquely.
        for (s, conn) in conns.iter_mut().enumerate() {
            let route = plan.route(s);
            let mut p = vec![T_DELIVER];
            put_u64(&mut p, route.len() as u64);
            for &(t, j) in route {
                put_opt_raw(&mut p, outs[t as usize].get(j as usize));
            }
            total_bytes += p.len() as u64;
            exchange_bytes += p.len() as u64;
            conn.send(&p)?;
        }
        drop(cut_span);
        total = 0;
        for conn in conns.iter_mut() {
            let p = expect_frame(conn, T_DONE)?;
            total_bytes += p.len() as u64;
            let mut c = Cursor::new(&p[1..]);
            total += c.u64()?;
        }
        rounds += 1;
        drop(round_span);
    }

    if deco_trace::enabled() {
        deco_trace::count(deco_trace::Counter::Messages, messages);
        deco_trace::count(deco_trace::Counter::Rounds, rounds);
        deco_trace::count(deco_trace::Counter::ShardExchangeBytes, exchange_bytes);
    }

    let mut outputs: Vec<u64> = Vec::with_capacity(n);
    for conn in conns.iter_mut() {
        total_bytes += 1;
        conn.send(&[T_FINISH])?;
        let p = expect_frame(conn, T_OUTPUTS)?;
        total_bytes += p.len() as u64;
        let mut c = Cursor::new(&p[1..]);
        let count = c.u64()? as usize;
        for _ in 0..count {
            outputs.push(c.u64()?);
        }
        if !c.finished() {
            return Err(invalid("trailing bytes in Outputs frame").into());
        }
    }
    if outputs.len() != n {
        return Err(invalid(format!("expected {n} outputs, got {}", outputs.len())).into());
    }
    for conn in conns.iter_mut() {
        let _ = conn.send(&[T_SHUTDOWN]);
    }
    Ok(FramedRun {
        outcome: RunOutcome {
            outputs,
            rounds,
            messages,
        },
        shards: k,
        cut_edges: plan.num_cut_edges(),
        cut_fraction: plan.cut_fraction(),
        exchange_bytes,
        total_bytes,
    })
}

/// One worker's whole life over an already-established connection: decode
/// `Init`, rebuild topology and plan, then answer coordinator frames until
/// `Shutdown` or EOF. This exact function runs inside the `deco-shardd`
/// binary (over stdio) and inside every [`ChannelTransport`] thread.
///
/// # Errors
///
/// Propagates transport failures and malformed frames; a clean peer
/// disconnect is `Ok`.
pub fn serve<C: ShardConn>(conn: &mut C) -> io::Result<()> {
    let first = match conn.recv() {
        Ok(p) => p,
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
        Err(e) => return Err(e),
    };
    let init = WorkerInit::decode(&first)?;
    let g = Graph::from_edges(init.n, init.edges.iter().copied())
        .map_err(|e| invalid(format!("bad graph in Init frame: {e}")))?;
    let net = Network::with_ids(&g, init.ids.clone());
    let plan = ShardPlan::new(&g, init.shards);
    if init.shard >= plan.shards() {
        return Err(invalid(format!(
            "shard index {} out of range for {} shards",
            init.shard,
            plan.shards()
        )));
    }
    match init.protocol {
        ProtocolSpec::FloodMax { radius } => {
            serve_protocol(conn, &net, &plan, &init, &FloodMax { radius })
        }
        ProtocolSpec::PortEcho { rounds } => {
            serve_protocol(conn, &net, &plan, &init, &PortEcho { rounds })
        }
        ProtocolSpec::StaggeredSum { spread } => {
            serve_protocol(conn, &net, &plan, &init, &StaggeredSum { spread })
        }
    }
}

/// Serves the worker binary over stdio — `deco-shardd`'s entire `main`.
///
/// # Errors
///
/// Propagates transport failures and malformed frames.
pub fn serve_stdio() -> io::Result<()> {
    struct StdioConn {
        stdin: io::Stdin,
        stdout: io::Stdout,
    }
    impl ShardConn for StdioConn {
        fn send(&mut self, payload: &[u8]) -> io::Result<()> {
            write_frame(&mut self.stdout.lock(), payload)
        }
        fn recv(&mut self) -> io::Result<Vec<u8>> {
            read_frame(&mut self.stdin.lock())
        }
    }
    serve(&mut StdioConn {
        stdin: io::stdin(),
        stdout: io::stdout(),
    })
}

/// The typed half of the worker loop, once the protocol is known.
fn serve_protocol<C, P>(
    conn: &mut C,
    net: &Network<'_>,
    plan: &ShardPlan,
    init: &WorkerInit,
    protocol: &P,
) -> io::Result<()>
where
    C: ShardConn,
    P: Protocol,
    P::Program: Send + NodeProgram<Output = u64>,
    <P::Program as NodeProgram>::Msg: WireMsg,
{
    let mut worker: ShardWorker<'_, '_, P> =
        ShardWorker::spawn(net, plan, init.shard, init.threads, protocol);
    let mut ack = vec![T_INIT_ACK];
    put_u64(&mut ack, worker.active() as u64);
    conn.send(&ack)?;
    loop {
        let frame = match conn.recv() {
            Ok(p) => p,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        match frame.first().copied() {
            Some(T_SEND_REQ) => {
                let (cut_out, sent) = worker.send_phase();
                let mut p = vec![T_CUT_OUT];
                put_u64(&mut p, sent);
                put_u64(&mut p, cut_out.len() as u64);
                for i in 0..cut_out.len() {
                    put_opt_msg(&mut p, cut_out.get(i));
                }
                conn.send(&p)?;
            }
            Some(T_DELIVER) => {
                let mut c = Cursor::new(&frame[1..]);
                let count = c.u64()? as usize;
                if count != plan.cut_ports(init.shard).len() {
                    return Err(invalid("Deliver entry count mismatch"));
                }
                let mut ghost = PortArena::new(count);
                for i in 0..count {
                    ghost.write(i, get_opt_msg(&mut c)?);
                }
                if !c.finished() {
                    return Err(invalid("trailing bytes in Deliver frame"));
                }
                let active = worker.receive_phase(&ghost);
                let mut p = vec![T_DONE];
                put_u64(&mut p, active as u64);
                conn.send(&p)?;
            }
            Some(T_FINISH) => {
                let outs = worker.snapshot_outputs();
                let mut p = vec![T_OUTPUTS];
                put_u64(&mut p, outs.len() as u64);
                for o in outs {
                    put_u64(&mut p, o);
                }
                conn.send(&p)?;
            }
            Some(T_SHUTDOWN) => return Ok(()),
            other => return Err(invalid(format!("unexpected frame tag {other:?}"))),
        }
    }
}

/// Receives a frame and checks its leading tag.
fn expect_frame<C: ShardConn>(conn: &mut C, tag: u8) -> io::Result<Vec<u8>> {
    let p = conn.recv()?;
    match p.first() {
        Some(&t) if t == tag => Ok(p),
        other => Err(invalid(format!(
            "expected frame tag {tag:#04x}, got {other:?}"
        ))),
    }
}

/// Encodes an optional typed message as an opaque entry (`0` = silent,
/// `1` + length-prefixed bytes = present).
fn put_opt_msg<M: WireMsg>(out: &mut Vec<u8>, m: Option<&M>) {
    match m {
        None => out.push(0),
        Some(m) => {
            out.push(1);
            let mut b = Vec::new();
            m.encode(&mut b);
            put_bytes(out, &b);
        }
    }
}

/// Decodes an opaque entry into a typed optional message.
fn get_opt_msg<M: WireMsg>(c: &mut Cursor<'_>) -> io::Result<Option<M>> {
    match c.u8()? {
        0 => Ok(None),
        1 => {
            let b = c.bytes()?;
            let mut inner = Cursor::new(b);
            let m = M::decode(&mut inner)?;
            if !inner.finished() {
                return Err(invalid("trailing bytes in message entry"));
            }
            Ok(Some(m))
        }
        other => Err(invalid(format!("bad entry tag {other}"))),
    }
}

/// Decodes an opaque entry without interpreting the payload (coordinator
/// side: routing only).
fn get_opt_raw(c: &mut Cursor<'_>) -> io::Result<Option<Vec<u8>>> {
    match c.u8()? {
        0 => Ok(None),
        1 => Ok(Some(c.bytes()?.to_vec())),
        other => Err(invalid(format!("bad entry tag {other}"))),
    }
}

/// Re-encodes an opaque entry.
fn put_opt_raw(out: &mut Vec<u8>, m: Option<&Vec<u8>>) {
    match m {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            put_bytes(out, b);
        }
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;
    use deco_local::network::IdAssignment;
    use deco_local::{Executor, SerialExecutor};

    fn seq_ids(n: usize) -> Vec<u64> {
        (1..=n as u64).collect()
    }

    #[test]
    fn channel_transport_matches_serial() {
        let g = generators::random_regular(36, 4, 7);
        let ids = seq_ids(36);
        let net = Network::with_ids(&g, ids.clone());
        for spec in [
            ProtocolSpec::FloodMax { radius: 5 },
            ProtocolSpec::PortEcho { rounds: 3 },
            ProtocolSpec::StaggeredSum { spread: 6 },
        ] {
            let serial = match spec {
                ProtocolSpec::FloodMax { radius } => {
                    SerialExecutor.execute(&net, &FloodMax { radius }, 50)
                }
                ProtocolSpec::PortEcho { rounds } => {
                    SerialExecutor.execute(&net, &PortEcho { rounds }, 50)
                }
                ProtocolSpec::StaggeredSum { spread } => {
                    SerialExecutor.execute(&net, &StaggeredSum { spread }, 50)
                }
            }
            .unwrap();
            for shards in [1, 2, 4] {
                let run = run_framed(&ChannelTransport, &g, &ids, spec, shards, 1, 50).unwrap();
                assert_eq!(serial.outputs, run.outcome.outputs, "{spec:?} k={shards}");
                assert_eq!(serial.rounds, run.outcome.rounds, "{spec:?} k={shards}");
                assert_eq!(serial.messages, run.outcome.messages, "{spec:?} k={shards}");
            }
        }
    }

    #[test]
    fn round_limit_error_matches_serial() {
        let g = generators::path(6);
        let ids = seq_ids(6);
        let net = Network::with_ids(&g, ids.clone());
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 100 }, 4)
            .unwrap_err();
        let err = run_framed(
            &ChannelTransport,
            &g,
            &ids,
            ProtocolSpec::FloodMax { radius: 100 },
            2,
            1,
            4,
        )
        .unwrap_err();
        match err {
            FramedError::Run(e) => assert_eq!(e, serial),
            FramedError::Io(e) => panic!("unexpected transport error: {e}"),
        }
    }

    #[test]
    fn exchange_bytes_are_counted() {
        let g = generators::cycle(30);
        let ids = seq_ids(30);
        let run = run_framed(
            &ChannelTransport,
            &g,
            &ids,
            ProtocolSpec::FloodMax { radius: 4 },
            3,
            1,
            50,
        )
        .unwrap();
        assert_eq!(run.shards, 3);
        assert_eq!(run.cut_edges, 3, "three arcs, three boundary edges");
        assert!(run.exchange_bytes > 0);
        assert!(run.total_bytes > run.exchange_bytes);
        assert!(run.exchange_bytes_per_round() > 0.0);
    }

    #[test]
    fn worker_init_round_trips() {
        let init = WorkerInit {
            shards: 4,
            shard: 2,
            threads: 2,
            max_rounds: 77,
            protocol: ProtocolSpec::StaggeredSum { spread: 9 },
            n: 3,
            edges: vec![(0, 1), (1, 2)],
            ids: vec![5, 1, 9],
        };
        let back = WorkerInit::decode(&init.encode()).unwrap();
        assert_eq!(back.shards, 4);
        assert_eq!(back.shard, 2);
        assert_eq!(back.threads, 2);
        assert_eq!(back.max_rounds, 77);
        assert_eq!(back.protocol, ProtocolSpec::StaggeredSum { spread: 9 });
        assert_eq!(back.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(back.ids, vec![5, 1, 9]);
    }

    #[test]
    fn rebuilt_graph_preserves_ports() {
        // The worker reconstructs the graph from the shipped edge list; the
        // port numbering (hence delivery) must survive the round trip.
        let g = generators::random_regular(20, 4, 3);
        let edges: Vec<(usize, usize)> = g
            .edge_list()
            .iter()
            .map(|&[u, v]| (u.index(), v.index()))
            .collect();
        let back = Graph::from_edges(20, edges).unwrap();
        assert_eq!(g.edge_list(), back.edge_list());
        for v in g.nodes() {
            assert_eq!(g.adjacent(v), back.adjacent(v));
        }
    }

    #[test]
    fn degraded_shard_count_still_matches_serial() {
        // Fewer nodes than requested shards: the plan degrades. Regression:
        // the coordinator used to send the *degraded* count in Init, and
        // ShardPlan::new(g, degraded) can partition differently than
        // ShardPlan::new(g, requested) — workers then rebuilt a mismatched
        // plan (out-of-range shard indices, wrong route tables).
        let g = generators::path(3);
        let ids = seq_ids(3);
        let net = Network::with_ids(&g, ids.clone());
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 3 }, 20)
            .unwrap();
        for requested in [4usize, 8, 16] {
            let run = run_framed(
                &ChannelTransport,
                &g,
                &ids,
                ProtocolSpec::FloodMax { radius: 3 },
                requested,
                1,
                20,
            )
            .unwrap_or_else(|e| panic!("requested={requested}: {e}"));
            assert!(run.shards < requested, "plan must degrade");
            assert_eq!(serial.outputs, run.outcome.outputs, "requested={requested}");
            assert_eq!(serial.rounds, run.outcome.rounds, "requested={requested}");
            assert_eq!(
                serial.messages, run.outcome.messages,
                "requested={requested}"
            );
        }
    }

    #[test]
    fn empty_graph_short_circuits() {
        let g = Graph::empty(0);
        let run = run_framed(
            &ChannelTransport,
            &g,
            &[],
            ProtocolSpec::FloodMax { radius: 3 },
            4,
            1,
            10,
        )
        .unwrap();
        assert!(run.outcome.outputs.is_empty());
        assert_eq!(run.shards, 0);
    }

    #[test]
    fn sparse_ids_cross_the_wire() {
        let g = generators::cycle(16);
        let net = Network::new(&g, IdAssignment::SparseRandom(11));
        let ids = net.ids().to_vec();
        let serial = SerialExecutor
            .execute(&net, &StaggeredSum { spread: 5 }, 30)
            .unwrap();
        let run = run_framed(
            &ChannelTransport,
            &g,
            &ids,
            ProtocolSpec::StaggeredSum { spread: 5 },
            2,
            2,
            30,
        )
        .unwrap();
        assert_eq!(serial.outputs, run.outcome.outputs);
        assert_eq!(serial.messages, run.outcome.messages);
    }
}
