//! [`ShardPlan`] — the deterministic shard partitioner.
//!
//! A plan cuts the node index space into contiguous, degree-balanced
//! ranges (the same [`split_by_weight`] machinery the thread engines use,
//! so a shard's per-round work tracks its port count, not its node count)
//! and precomputes everything the cross-shard exchange needs:
//!
//! * the **slot range** of each shard — because node ranges are contiguous,
//!   each shard's mailbox slots form one contiguous slice of the global
//!   CSR arena ([`MailboxPlan`]);
//! * the **cut ports** of each shard — the slots whose mirror lies in a
//!   different shard. Each cut edge contributes exactly one cut port to
//!   each of its two shards: the local side's *ghost port*, through which
//!   boundary messages enter during the exchange;
//! * the **route table** — for every cut port, which shard and which of
//!   its cut-port indices holds the mirrored slot, so the exchange is a
//!   table-driven copy with no search.
//!
//! Everything is a pure function of the graph and the shard count; the
//! [`ShardPlan::digest`] fingerprint is pinned by regression tests per
//! scenario family so the partition can never shift silently (a silent
//! shift would re-route every differential sweep that covers sharding).
//!
//! ```
//! use deco_engine::shard::ShardPlan;
//! use deco_graph::generators;
//!
//! let g = generators::cycle(12);
//! let plan = ShardPlan::new(&g, 3);
//! assert_eq!(plan.shards(), 3);
//! // A cycle split into three arcs is cut at the three arc boundaries.
//! assert_eq!(plan.num_cut_edges(), 3);
//! // Same inputs, same plan — always.
//! assert_eq!(plan.digest(), ShardPlan::new(&g, 3).digest());
//! ```

use crate::mailbox::MailboxPlan;
use crate::par::split_by_weight;
use deco_graph::partition::{cut_fraction, degree_weights, RangeOwner};
use deco_graph::Graph;
use std::collections::HashMap;
use std::ops::Range;

/// Deterministic degree-balanced shard partition of one graph, with the
/// ghost-port and routing tables the cross-shard exchange runs on.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    mailbox: MailboxPlan,
    owner: RangeOwner,
    /// `slot_bounds[s] .. slot_bounds[s + 1]` is shard `s`'s slice of the
    /// global mailbox arena.
    slot_bounds: Vec<usize>,
    /// Per shard: the global slot ids whose mirror lies in another shard,
    /// ascending. Index `i` in this list is the shard-local *ghost index*
    /// of the port: boundary messages for the port arrive at position `i`
    /// of the shard's ghost inbox.
    cut_ports: Vec<Vec<usize>>,
    /// Per shard, aligned with `cut_ports`: `(source shard, source ghost
    /// index)` of the mirrored slot — i.e. where the exchange reads the
    /// message that this ghost port receives.
    route: Vec<Vec<(u32, u32)>>,
    /// Per shard, one entry per local slot: the ghost index of the slot if
    /// it is a cut port, `u32::MAX` if its mirror is shard-internal.
    ghost_of: Vec<Vec<u32>>,
    cut_fraction: f64,
}

impl ShardPlan {
    /// Partitions `g` into at most `shards` degree-balanced contiguous
    /// shards (fewer when nodes run out; zero for the empty graph) and
    /// precomputes the ghost-port and route tables. `shards == 0` is
    /// treated as 1.
    pub fn new(g: &Graph, shards: usize) -> ShardPlan {
        let ranges = split_by_weight(&degree_weights(g), shards.max(1));
        ShardPlan::from_ranges(g, &ranges)
    }

    /// Builds the plan over explicit node ranges (which must tile `0..n`
    /// consecutively). [`ShardPlan::new`] is this over the degree-balanced
    /// split.
    pub fn from_ranges(g: &Graph, ranges: &[Range<usize>]) -> ShardPlan {
        let mailbox = MailboxPlan::new(g);
        let owner = RangeOwner::new(ranges);
        let k = owner.parts();
        let mut slot_bounds = Vec::with_capacity(k + 1);
        slot_bounds.push(0);
        for s in 0..k {
            slot_bounds.push(mailbox.offsets()[owner.range(s).end]);
        }

        // Pass 1: collect each shard's cut ports (ascending by construction:
        // slots are visited in arena order).
        let mut cut_ports: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut ghost_of: Vec<Vec<u32>> = (0..k)
            .map(|s| vec![u32::MAX; slot_bounds[s + 1] - slot_bounds[s]])
            .collect();
        let mut position: HashMap<usize, (u32, u32)> = HashMap::new();
        for s in 0..k {
            for k_slot in slot_bounds[s]..slot_bounds[s + 1] {
                let mirror = mailbox.mirror(k_slot);
                let t = shard_of_slot(&slot_bounds, mirror);
                if t != s {
                    let i = cut_ports[s].len() as u32;
                    ghost_of[s][k_slot - slot_bounds[s]] = i;
                    position.insert(k_slot, (s as u32, i));
                    cut_ports[s].push(k_slot);
                }
            }
        }
        // Pass 2: route every ghost port to the shard-local position of its
        // mirror slot.
        let route: Vec<Vec<(u32, u32)>> = (0..k)
            .map(|s| {
                cut_ports[s]
                    .iter()
                    .map(|&k_slot| {
                        *position
                            .get(&mailbox.mirror(k_slot))
                            .expect("the mirror of a cut port is a cut port")
                    })
                    .collect()
            })
            .collect();

        let cut_fraction = cut_fraction(g, &owner);
        ShardPlan {
            mailbox,
            owner,
            slot_bounds,
            cut_ports,
            route,
            ghost_of,
            cut_fraction,
        }
    }

    /// Number of shards actually produced (≤ the requested count; 0 only
    /// for the empty graph).
    #[inline]
    pub fn shards(&self) -> usize {
        self.owner.parts()
    }

    /// The node range of shard `s`.
    #[inline]
    pub fn node_range(&self, s: usize) -> Range<usize> {
        self.owner.range(s)
    }

    /// Shard `s`'s slice of the global mailbox arena.
    #[inline]
    pub fn slot_range(&self, s: usize) -> Range<usize> {
        self.slot_bounds[s]..self.slot_bounds[s + 1]
    }

    /// The global mailbox geometry the shard slices come from.
    #[inline]
    pub fn mailbox(&self) -> &MailboxPlan {
        &self.mailbox
    }

    /// Shard `s`'s cut ports (global slot ids, ascending). The index of a
    /// slot in this list is its ghost index.
    #[inline]
    pub fn cut_ports(&self, s: usize) -> &[usize] {
        &self.cut_ports[s]
    }

    /// For each ghost index of shard `s`: the `(shard, ghost index)` whose
    /// outgoing cut message this ghost port receives.
    #[inline]
    pub fn route(&self, s: usize) -> &[(u32, u32)] {
        &self.route[s]
    }

    /// The ghost index of shard `s`'s local slot `k` (a global slot id), or
    /// `None` when the slot's mirror is shard-internal.
    #[inline]
    pub fn ghost_index(&self, s: usize, k: usize) -> Option<usize> {
        match self.ghost_of[s][k - self.slot_bounds[s]] {
            u32::MAX => None,
            i => Some(i as usize),
        }
    }

    /// Number of edges crossing shard boundaries.
    pub fn num_cut_edges(&self) -> usize {
        self.cut_ports.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Fraction of edges crossing shard boundaries, in `[0, 1]`.
    #[inline]
    pub fn cut_fraction(&self) -> f64 {
        self.cut_fraction
    }

    /// FNV-1a fingerprint of the partition: shard ranges, cut ports, and
    /// routes. Pinned by regression tests per scenario family — if a code
    /// change shifts this, every sharded differential sweep silently runs
    /// a different partition, so shifts must be deliberate.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        };
        mix(self.shards() as u64);
        for s in 0..self.shards() {
            mix(self.node_range(s).end as u64);
            for (&k, &(t, j)) in self.cut_ports[s].iter().zip(&self.route[s]) {
                mix(k as u64);
                mix(u64::from(t) << 32 | u64::from(j));
            }
        }
        h
    }
}

/// The shard owning global arena slot `k` under the given slot bounds.
fn shard_of_slot(slot_bounds: &[usize], k: usize) -> usize {
    debug_assert!(k < *slot_bounds.last().expect("bounds never empty"));
    slot_bounds.partition_point(|&b| b <= k) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    #[test]
    fn routes_are_mutual() {
        for (g, shards) in [
            (generators::cycle(20), 4),
            (generators::complete(9), 3),
            (generators::random_regular(40, 6, 7), 4),
            (generators::grid(6, 5), 2),
        ] {
            let plan = ShardPlan::new(&g, shards);
            for s in 0..plan.shards() {
                for (i, (&k, &(t, j))) in plan.cut_ports(s).iter().zip(plan.route(s)).enumerate() {
                    let (t, j) = (t as usize, j as usize);
                    assert_ne!(t, s, "cut routes never stay local");
                    // The route points at the mirror slot…
                    assert_eq!(plan.cut_ports(t)[j], plan.mailbox().mirror(k));
                    // …and the mirror routes straight back.
                    assert_eq!(plan.route(t)[j], (s as u32, i as u32));
                    assert_eq!(plan.ghost_index(s, k), Some(i));
                }
            }
        }
    }

    #[test]
    fn slot_ranges_tile_the_arena() {
        let g = generators::random_regular(30, 4, 3);
        let plan = ShardPlan::new(&g, 4);
        let mut next = 0usize;
        for s in 0..plan.shards() {
            let r = plan.slot_range(s);
            assert_eq!(r.start, next);
            next = r.end;
            // Node range and slot range agree with the mailbox offsets.
            let nr = plan.node_range(s);
            assert_eq!(plan.mailbox().offsets()[nr.start], r.start);
            assert_eq!(plan.mailbox().offsets()[nr.end], r.end);
        }
        assert_eq!(next, plan.mailbox().num_slots());
    }

    #[test]
    fn internal_slots_have_no_ghost_index() {
        let g = generators::complete(8);
        let plan = ShardPlan::new(&g, 2);
        for s in 0..plan.shards() {
            let cut: std::collections::HashSet<usize> = plan.cut_ports(s).iter().copied().collect();
            for k in plan.slot_range(s) {
                assert_eq!(plan.ghost_index(s, k).is_some(), cut.contains(&k));
            }
        }
    }

    #[test]
    fn one_shard_has_no_cut() {
        let g = generators::random_regular(24, 4, 1);
        let plan = ShardPlan::new(&g, 1);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.num_cut_edges(), 0);
        assert_eq!(plan.cut_fraction(), 0.0);
        // Zero shards requested degrades to one.
        assert_eq!(ShardPlan::new(&g, 0).shards(), 1);
    }

    #[test]
    fn empty_graph_yields_no_shards() {
        let g = Graph::empty(0);
        let plan = ShardPlan::new(&g, 4);
        assert_eq!(plan.shards(), 0);
        assert_eq!(plan.num_cut_edges(), 0);
    }

    #[test]
    fn more_shards_than_nodes_degrades() {
        let g = generators::path(3);
        let plan = ShardPlan::new(&g, 16);
        assert!(plan.shards() <= 3);
        assert!(plan.shards() >= 1);
    }

    #[test]
    fn digest_is_a_pure_function_of_graph_and_shards() {
        let g = generators::random_regular(50, 6, 9);
        assert_eq!(
            ShardPlan::new(&g, 3).digest(),
            ShardPlan::new(&g, 3).digest()
        );
        assert_ne!(
            ShardPlan::new(&g, 3).digest(),
            ShardPlan::new(&g, 2).digest()
        );
    }

    #[test]
    fn disconnected_components_can_be_cut_free() {
        let g = generators::disjoint_union(&[generators::cycle(6), generators::cycle(6)]);
        // Ranges aligned with the components: nothing crosses.
        let plan = ShardPlan::from_ranges(&g, &[0..6, 6..12]);
        assert_eq!(plan.num_cut_edges(), 0);
    }
}
