//! Minimal little-endian wire codec for the framed shard protocol.
//!
//! Frames are length-prefixed: a `u32` little-endian payload length
//! followed by the payload bytes ("bincode-style": fixed-width LE integers,
//! `u8` presence tags for options, length-prefixed sequences — no
//! self-description, both ends share the schema). The subprocess transport
//! speaks exactly this over stdio; the in-process channel transport hands
//! the same payloads over `mpsc`, so one codec serves both.

use std::io::{self, Read, Write};

/// Upper bound on a single frame, as a sanity guard against a desynced
/// stream being interpreted as a gigantic length.
const MAX_FRAME: u32 = 1 << 30;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates write failures from the underlying stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. EOF before the length prefix surfaces
/// as `UnexpectedEof` (a clean peer shutdown for callers that care).
///
/// # Errors
///
/// Propagates read failures; an oversized length prefix is `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME} sanity bound"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Sequential reader over one frame payload.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "frame payload truncated",
            )),
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the payload is exhausted.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the payload is exhausted.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the payload is exhausted.
    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the payload is exhausted.
    pub fn bytes(&mut self) -> io::Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Whether the payload is fully consumed (decoders assert this so a
    /// schema drift between coordinator and worker fails loudly).
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Appends a `u32` LE.
pub fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Appends a `u64` LE.
pub fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn cursor_reads_what_put_wrote() {
        let mut out = Vec::new();
        out.push(7u8);
        put_u32(&mut out, 99);
        put_u64(&mut out, u64::MAX - 1);
        put_bytes(&mut out, b"xyz");
        let mut c = Cursor::new(&out);
        assert_eq!(c.u8().unwrap(), 7);
        assert_eq!(c.u32().unwrap(), 99);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.bytes().unwrap(), b"xyz");
        assert!(c.finished());
        assert!(c.u8().is_err(), "reading past the end errors");
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(
            read_frame(&mut &buf[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
