//! Minimal little-endian wire codec for the framed shard protocol.
//!
//! Frames are length-prefixed: a `u32` little-endian payload length
//! followed by the payload bytes ("bincode-style": fixed-width LE integers,
//! `u8` presence tags for options, length-prefixed sequences — no
//! self-description, both ends share the schema). The subprocess transport
//! speaks exactly this over stdio, the socket transports over TCP/UDS
//! streams; the in-process channel transport hands the same payloads over
//! `mpsc`, so one codec serves all of them.
//!
//! Every way the codec can reject bytes is a named [`WireError`] variant —
//! a corrupted stream surfaces as a typed error, never a panic, and never
//! an attacker-chosen allocation: [`read_frame`] grows its buffer only as
//! bytes actually arrive, so a forged multi-gigabyte length prefix costs
//! nothing. [`FrameReader`] pumps whole frames off a blocking stream on a
//! background thread, which is what gives transports whose raw reads cannot
//! time out (child stdio pipes, connected sockets) a receive deadline
//! without ever tearing a frame mid-read.

use std::fmt;
use std::io::{self, Read, Write};
use std::sync::mpsc;
use std::time::Duration;

/// Upper bound on a single frame, as a sanity guard against a desynced
/// stream being interpreted as a gigantic length.
const MAX_FRAME: u32 = 1 << 30;

/// A structural defect in a frame or payload — every way the codec rejects
/// bytes, as a named value. Corruption decodes to one of these; it never
/// panics and never drives an allocation larger than the bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended cleanly before a length prefix (peer shutdown).
    Eof,
    /// The length prefix exceeds the 1 GiB frame sanity bound.
    Oversized {
        /// The claimed payload length.
        len: u32,
    },
    /// The stream ended mid-frame: the prefix promised more than arrived.
    ShortFrame {
        /// Bytes the length prefix promised.
        expected: usize,
        /// Bytes that actually arrived.
        got: usize,
    },
    /// A payload read ran past the end of the buffer.
    Truncated,
    /// An unknown tag byte where a tagged value was expected.
    UnknownTag {
        /// Which decoder saw the tag.
        context: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A decoder finished but bytes were left over.
    TrailingBytes {
        /// Which decoder had leftovers.
        context: &'static str,
    },
    /// A structurally readable frame whose contents contradict the schema
    /// (impossible counts, out-of-range indices, mismatched lengths).
    Invalid {
        /// What was contradicted.
        context: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WireError::Eof => write!(f, "stream closed before a frame length prefix"),
            WireError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME} sanity bound")
            }
            WireError::ShortFrame { expected, got } => {
                write!(
                    f,
                    "frame truncated: length prefix promised {expected} bytes, got {got}"
                )
            }
            WireError::Truncated => write!(f, "frame payload truncated"),
            WireError::UnknownTag { context, tag } => {
                write!(f, "unknown tag {tag:#04x} in {context}")
            }
            WireError::TrailingBytes { context } => write!(f, "trailing bytes after {context}"),
            WireError::Invalid { context } => write!(f, "invalid frame: {context}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        let kind = match e {
            WireError::Eof | WireError::ShortFrame { .. } | WireError::Truncated => {
                io::ErrorKind::UnexpectedEof
            }
            WireError::Oversized { .. }
            | WireError::UnknownTag { .. }
            | WireError::TrailingBytes { .. }
            | WireError::Invalid { .. } => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e.to_string())
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates write failures from the underlying stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. EOF before the length prefix surfaces
/// as `UnexpectedEof` (a clean peer shutdown for callers that care).
///
/// The buffer grows only as bytes arrive, so a forged length prefix cannot
/// trigger an up-front allocation — a prefix that promises more bytes than
/// the stream delivers is a [`WireError::ShortFrame`].
///
/// # Errors
///
/// Propagates read failures; structural defects surface as the matching
/// [`WireError`] converted to `io::Error` (`UnexpectedEof` / `InvalidData`).
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    if let Err(e) = r.read_exact(&mut len) {
        return Err(if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Eof.into()
        } else {
            e
        });
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len }.into());
    }
    let mut payload = Vec::new();
    r.by_ref().take(u64::from(len)).read_to_end(&mut payload)?;
    if payload.len() < len as usize {
        return Err(WireError::ShortFrame {
            expected: len as usize,
            got: payload.len(),
        }
        .into());
    }
    Ok(payload)
}

/// Sequential reader over one frame payload.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(WireError::Truncated),
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the payload is exhausted.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the payload is exhausted.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the payload is exhausted.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `u64` that claims to count `elem_bytes`-sized
    /// elements still to come, rejecting counts the remaining payload could
    /// not possibly hold. This is the allocation cap for sequence decoders:
    /// a bit-flipped count can never drive `Vec::with_capacity` beyond the
    /// bytes actually on the wire.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the payload is exhausted or the count
    /// overruns the remaining bytes.
    pub fn count(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let count = self.u64()?;
        let count = usize::try_from(count).map_err(|_| WireError::Truncated)?;
        if count > self.remaining() / elem_bytes.max(1) {
            return Err(WireError::Truncated);
        }
        Ok(count)
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the payload is exhausted.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the payload is fully consumed (decoders assert this so a
    /// schema drift between coordinator and worker fails loudly).
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Appends a `u32` LE.
pub fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Appends a `u64` LE.
pub fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Background frame pump: a thread does blocking [`read_frame`] reads and
/// queues whole frames, so the owner can wait **with a deadline** even on
/// streams whose raw reads cannot time out (child stdio pipes, connected
/// sockets). Because the pump only ever hands over complete frames, a
/// deadline can expire without leaving the stream desynced mid-frame — the
/// late frame is simply delivered on the next receive.
#[derive(Debug)]
pub struct FrameReader {
    rx: mpsc::Receiver<io::Result<Vec<u8>>>,
    /// The pump's terminal error, replayed on every receive after it died.
    dead: Option<(io::ErrorKind, String)>,
}

impl FrameReader {
    /// Spawns the pump thread over `r`. The thread exits when the stream
    /// errors/EOFs or when this `FrameReader` is dropped.
    ///
    /// # Errors
    ///
    /// Propagates thread-spawn failure.
    pub fn spawn<R: Read + Send + 'static>(mut r: R, name: &str) -> io::Result<FrameReader> {
        let (tx, rx) = mpsc::channel::<io::Result<Vec<u8>>>();
        std::thread::Builder::new()
            .name(format!("deco-frame-pump-{name}"))
            .spawn(move || loop {
                match read_frame(&mut r) {
                    Ok(p) => {
                        if tx.send(Ok(p)).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            })?;
        Ok(FrameReader { rx, dead: None })
    }

    /// Next whole frame. A `None` deadline blocks until the stream delivers
    /// or dies.
    ///
    /// # Errors
    ///
    /// `TimedOut` when the deadline expires first; otherwise the pump's
    /// terminal stream error, which is sticky — every receive after the
    /// stream died reports the same error kind.
    pub fn recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<Vec<u8>> {
        if let Some((kind, msg)) = &self.dead {
            return Err(io::Error::new(*kind, msg.clone()));
        }
        let item = match timeout {
            None => self.rx.recv().map_err(|_| pump_gone())?,
            Some(t) => match self.rx.recv_timeout(t) {
                Ok(item) => item,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no frame within the receive deadline",
                    ))
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return Err(pump_gone()),
            },
        };
        match item {
            Ok(p) => Ok(p),
            Err(e) => {
                self.dead = Some((e.kind(), e.to_string()));
                Err(e)
            }
        }
    }
}

fn pump_gone() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "frame pump exited")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn cursor_reads_what_put_wrote() {
        let mut out = Vec::new();
        out.push(7u8);
        put_u32(&mut out, 99);
        put_u64(&mut out, u64::MAX - 1);
        put_bytes(&mut out, b"xyz");
        let mut c = Cursor::new(&out);
        assert_eq!(c.u8().unwrap(), 7);
        assert_eq!(c.u32().unwrap(), 99);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.bytes().unwrap(), b"xyz");
        assert!(c.finished());
        assert_eq!(c.u8().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut r = &buf[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("sanity bound"));
    }

    #[test]
    fn forged_length_prefix_does_not_preallocate() {
        // A prefix claiming the full 1 GiB with 3 bytes behind it must fail
        // as a short frame after reading only those 3 bytes — the capped
        // read allocates for what arrives, not for what the prefix claims.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAX_FRAME.to_le_bytes());
        buf.extend_from_slice(b"abc");
        let mut r = &buf[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("promised"));
    }

    #[test]
    fn count_rejects_impossible_sequence_lengths() {
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX); // claims 2^64-1 elements...
        put_u64(&mut out, 42); // ...over 8 remaining bytes
        let mut c = Cursor::new(&out);
        assert_eq!(c.count(8).unwrap_err(), WireError::Truncated);

        let mut ok = Vec::new();
        put_u64(&mut ok, 1);
        put_u64(&mut ok, 42);
        let mut c = Cursor::new(&ok);
        assert_eq!(c.count(8).unwrap(), 1);
        assert_eq!(c.u64().unwrap(), 42);
    }

    /// Seeded property loop: truncations, bit flips, and appended junk fed
    /// to a structured decoder must always yield a named `WireError` or a
    /// benign re-decode — never a panic, never an allocation beyond the
    /// corrupted buffer itself.
    #[test]
    fn seeded_corruption_yields_named_errors_never_panics() {
        // A miniature schema exercising every cursor read: tag byte, u32,
        // counted u64 sequence, length-prefixed bytes, finished() check.
        fn decode(payload: &[u8]) -> Result<(), WireError> {
            let mut c = Cursor::new(payload);
            match c.u8()? {
                0xAB => {}
                tag => {
                    return Err(WireError::UnknownTag {
                        context: "probe",
                        tag,
                    })
                }
            }
            let _ = c.u32()?;
            let n = c.count(8)?;
            for _ in 0..n {
                let _ = c.u64()?;
            }
            let _ = c.bytes()?;
            if !c.finished() {
                return Err(WireError::TrailingBytes { context: "probe" });
            }
            Ok(())
        }

        let mut rng = StdRng::seed_from_u64(0xD15EA5E);
        for case in 0..500u32 {
            // Build a valid payload...
            let mut payload = vec![0xABu8];
            put_u32(&mut payload, rng.gen_range(0..1000u32));
            let n = rng.gen_range(0..6usize);
            put_u64(&mut payload, n as u64);
            for _ in 0..n {
                put_u64(&mut payload, rng.gen_range(0..1u64 << 20));
            }
            let blen = rng.gen_range(0..10usize);
            let blob: Vec<u8> = (0..blen).map(|i| i as u8).collect();
            put_bytes(&mut payload, &blob);
            decode(&payload).unwrap_or_else(|e| panic!("case {case}: valid payload: {e}"));

            // ...then corrupt it one of four ways.
            let mut bad = payload.clone();
            match rng.gen_range(0..4u32) {
                0 => bad.truncate(rng.gen_range(0..bad.len())),
                1 => {
                    let i = rng.gen_range(0..bad.len());
                    bad[i] ^= 1 << rng.gen_range(0..8u32);
                }
                2 => bad.extend_from_slice(b"junk"),
                // Oversized interior count: claims far more elements than
                // the payload holds.
                3 => {
                    let huge = u64::MAX - rng.gen_range(0..9u64);
                    bad.splice(5..13, huge.to_le_bytes());
                }
                _ => unreachable!(),
            }
            // Either the corruption is benign (a data bit flipped) or it is
            // a *named* error; reaching here at all proves no panic.
            let _ = decode(&bad);
        }
    }

    /// Seeded property loop at the frame layer: corrupted length prefixes
    /// and short streams always produce named errors.
    #[test]
    fn seeded_frame_corruption_is_rejected() {
        let mut rng = StdRng::seed_from_u64(0xF00DF00D);
        for _ in 0..200 {
            let len = rng.gen_range(0..64usize);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u32) as u8).collect();
            let mut buf = Vec::new();
            write_frame(&mut buf, &payload).unwrap();

            match rng.gen_range(0..3u32) {
                // Truncate the stream mid-frame (or mid-prefix).
                0 => {
                    let cut = rng.gen_range(0..buf.len());
                    buf.truncate(cut);
                    let err = read_frame(&mut &buf[..]).unwrap_err();
                    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
                }
                // Inflate the length prefix past the sanity bound.
                1 => {
                    let huge = MAX_FRAME + 1 + rng.gen_range(0..1000u32);
                    buf[..4].copy_from_slice(&huge.to_le_bytes());
                    let err = read_frame(&mut &buf[..]).unwrap_err();
                    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
                }
                // Inflate the prefix within bounds: promised > delivered.
                2 => {
                    let claimed = (len + 1 + rng.gen_range(0..100usize)) as u32;
                    buf[..4].copy_from_slice(&claimed.to_le_bytes());
                    let err = read_frame(&mut &buf[..]).unwrap_err();
                    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn frame_reader_delivers_and_times_out() {
        use std::io::Cursor as IoCursor;
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut fr = FrameReader::spawn(IoCursor::new(buf), "test").unwrap();
        assert_eq!(
            fr.recv_timeout(Some(Duration::from_millis(500))).unwrap(),
            b"one"
        );
        assert_eq!(fr.recv_timeout(None).unwrap(), b"two");
        // Stream exhausted: EOF, and the error is sticky.
        for _ in 0..2 {
            let err = fr
                .recv_timeout(Some(Duration::from_millis(50)))
                .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        }
    }

    #[test]
    fn frame_reader_deadline_expires_on_a_silent_stream() {
        // A reader that blocks forever: the pump never delivers, the
        // deadline must fire.
        struct Stalled;
        impl Read for Stalled {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                std::thread::sleep(Duration::from_secs(3600));
                Ok(0)
            }
        }
        let mut fr = FrameReader::spawn(Stalled, "stall").unwrap();
        let start = std::time::Instant::now();
        let err = fr
            .recv_timeout(Some(Duration::from_millis(50)))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
