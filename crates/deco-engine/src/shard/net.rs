//! Socket transports for the framed shard protocol: TCP and Unix-domain.
//!
//! This is the multi-host shape of [`framed`](super::framed): the
//! coordinator binds a listener, workers **dial in** (`deco-shardd
//! --connect host:port` / `--connect-uds path`), and the same
//! length-prefixed frames that cross stdio pipes cross real sockets. The
//! dial-in direction is deliberate — it is the one that generalizes to
//! machines behind job schedulers, where the coordinator's address is the
//! only thing a worker needs to know.
//!
//! Each transport launches workers in one of two modes:
//!
//! * **spawn** — one `deco-shardd` child per shard, told to dial the
//!   coordinator back. True multi-process, true sockets; children are
//!   killed when their connection drops.
//! * **in-process** — one serving thread per shard on this host, still
//!   speaking through a real socket pair. Same wire behavior without
//!   needing the worker binary on `$PATH` (benchmarks and experiments use
//!   this; the differential suite covers both).
//!
//! Connections are accepted under a deadline, receives are pumped through
//! a [`FrameReader`] so the coordinator's per-frame budget applies, and a
//! worker that never dials in surfaces as a launch error instead of a
//! hang. Shard identity is assigned by the `Init` frame, not by accept
//! order, so the accept race is harmless.

use super::framed::{serve, ShardConn, ShardTransport};
use super::wire::{read_frame, write_frame, FrameReader};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How long `launch` waits for all workers to dial in before declaring
/// the transport dead.
const DEFAULT_ACCEPT_TIMEOUT: Duration = Duration::from_secs(10);

/// How a socket transport obtains its workers.
#[derive(Debug, Clone)]
enum WorkerMode {
    /// Spawn one `deco-shardd` child per shard and have it dial back.
    Spawn(PathBuf),
    /// Serve each shard from a thread in this process, over a real socket.
    InProcess,
}

/// Worker-side duplex connection over any byte stream: blocking reads (the
/// coordinator owns all deadlines), frames out through `w`.
struct StreamConn<R: Read + Send, W: Write + Send> {
    r: R,
    w: W,
}

impl<R: Read + Send, W: Write + Send> ShardConn for StreamConn<R, W> {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.w, payload)
    }
    fn recv_timeout(&mut self, _timeout: Option<Duration>) -> io::Result<Vec<u8>> {
        read_frame(&mut self.r)
    }
}

/// Runs the worker loop over an explicit read/write half pair — the
/// socket-side equivalent of [`serve_stdio`](super::framed::serve_stdio).
///
/// # Errors
///
/// Propagates transport failures and malformed frames; a clean peer
/// disconnect is `Ok`.
pub fn serve_duplex<R, W>(r: R, w: W) -> io::Result<()>
where
    R: Read + Send,
    W: Write + Send,
{
    serve(&mut StreamConn { r, w })
}

/// Dials `addr` and serves the worker loop over the TCP stream —
/// `deco-shardd --connect addr`'s whole `main`. Retries the connect
/// briefly, since the worker may win the race against the coordinator's
/// listener.
///
/// # Errors
///
/// Propagates connect failures (after retries) and protocol failures.
pub fn connect_and_serve_tcp(addr: &str) -> io::Result<()> {
    let stream = retry_connect(|| TcpStream::connect(addr))?;
    stream.set_nodelay(true)?;
    let r = io::BufReader::new(stream.try_clone()?);
    serve_duplex(r, stream)
}

/// Dials the Unix-domain socket at `path` and serves the worker loop —
/// `deco-shardd --connect-uds path`'s whole `main`.
///
/// # Errors
///
/// Propagates connect failures (after retries) and protocol failures.
#[cfg(unix)]
pub fn connect_and_serve_uds(path: &Path) -> io::Result<()> {
    let stream = retry_connect(|| UnixStream::connect(path))?;
    let r = io::BufReader::new(stream.try_clone()?);
    serve_duplex(r, stream)
}

/// Retries a connect for a short window: the coordinator binds before
/// launching workers, so the first attempt almost always succeeds, but a
/// slow host must not turn the race into a spurious failure.
fn retry_connect<S>(mut connect: impl FnMut() -> io::Result<S>) -> io::Result<S> {
    let mut last = None;
    for _ in 0..40 {
        match connect() {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("connect never attempted")))
}

/// Coordinator-side endpoint of one socket worker: frames out through the
/// write half, frames in through a [`FrameReader`] pump (which is what
/// makes the per-frame deadline enforceable on a blocking socket). For
/// spawned workers the child handle rides along and is killed on drop, so
/// a failed run never leaks worker processes.
pub struct SocketConn {
    child: Option<Child>,
    writer: Box<dyn Write + Send>,
    reader: FrameReader,
}

impl ShardConn for SocketConn {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, payload)
    }

    fn recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<Vec<u8>> {
        self.reader.recv_timeout(timeout)
    }
}

impl Drop for SocketConn {
    fn drop(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// TCP shard transport: the coordinator listens on an ephemeral loopback
/// port and every worker dials in. Frames and worker behavior are
/// byte-identical to every other transport — the differential suite pins
/// it.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    mode: WorkerMode,
    accept_timeout: Duration,
}

impl TcpTransport {
    /// A transport that spawns the worker binary at `bin` per shard with
    /// `--connect <addr>` (tests use `env!("CARGO_BIN_EXE_deco-shardd")`).
    pub fn spawn(bin: impl Into<PathBuf>) -> TcpTransport {
        TcpTransport {
            mode: WorkerMode::Spawn(bin.into()),
            accept_timeout: DEFAULT_ACCEPT_TIMEOUT,
        }
    }

    /// A transport serving each shard from an in-process thread over a
    /// real TCP socket — the wire without the binary dependency.
    pub fn in_process() -> TcpTransport {
        TcpTransport {
            mode: WorkerMode::InProcess,
            accept_timeout: DEFAULT_ACCEPT_TIMEOUT,
        }
    }

    /// Replaces the dial-in accept deadline.
    pub fn with_accept_timeout(mut self, timeout: Duration) -> TcpTransport {
        self.accept_timeout = timeout;
        self
    }
}

impl ShardTransport for TcpTransport {
    type Conn = SocketConn;

    fn launch(&self, shards: usize) -> io::Result<Vec<SocketConn>> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let mut children = Vec::new();
        match &self.mode {
            WorkerMode::Spawn(bin) => {
                for _ in 0..shards {
                    children.push(
                        Command::new(bin)
                            .arg("--connect")
                            .arg(addr.to_string())
                            .stdin(Stdio::null())
                            .stdout(Stdio::null())
                            .stderr(Stdio::inherit())
                            .spawn()?,
                    );
                }
            }
            WorkerMode::InProcess => {
                for s in 0..shards {
                    std::thread::Builder::new()
                        .name(format!("deco-shard-tcp-{s}"))
                        .spawn(move || {
                            if let Ok(stream) = TcpStream::connect(addr) {
                                let _ = stream.set_nodelay(true);
                                if let Ok(clone) = stream.try_clone() {
                                    let _ = serve_duplex(io::BufReader::new(clone), stream);
                                }
                            }
                        })?;
                }
            }
        }
        let streams = accept_n(
            shards,
            self.accept_timeout,
            || {
                listener.set_nonblocking(true)?;
                Ok(())
            },
            || listener.accept().map(|(s, _)| s),
        )?;
        let mut conns = Vec::with_capacity(shards);
        for (i, stream) in streams.into_iter().enumerate() {
            stream.set_nonblocking(false)?;
            let _ = stream.set_nodelay(true);
            let reader = FrameReader::spawn(stream.try_clone()?, &format!("tcp-{i}"))?;
            conns.push(SocketConn {
                child: children.pop(),
                writer: Box::new(stream),
                reader,
            });
        }
        Ok(conns)
    }

    fn label(&self) -> &'static str {
        "tcp"
    }
}

/// Unix-domain socket shard transport: same dial-in shape as
/// [`TcpTransport`] over a per-launch socket path in the temp directory
/// (unlinked as soon as every worker has connected).
#[cfg(unix)]
#[derive(Debug, Clone)]
pub struct UdsTransport {
    mode: WorkerMode,
    accept_timeout: Duration,
}

#[cfg(unix)]
impl UdsTransport {
    /// A transport that spawns the worker binary at `bin` per shard with
    /// `--connect-uds <path>`.
    pub fn spawn(bin: impl Into<PathBuf>) -> UdsTransport {
        UdsTransport {
            mode: WorkerMode::Spawn(bin.into()),
            accept_timeout: DEFAULT_ACCEPT_TIMEOUT,
        }
    }

    /// A transport serving each shard from an in-process thread over a
    /// real Unix-domain socket.
    pub fn in_process() -> UdsTransport {
        UdsTransport {
            mode: WorkerMode::InProcess,
            accept_timeout: DEFAULT_ACCEPT_TIMEOUT,
        }
    }

    /// Replaces the dial-in accept deadline.
    pub fn with_accept_timeout(mut self, timeout: Duration) -> UdsTransport {
        self.accept_timeout = timeout;
        self
    }
}

#[cfg(unix)]
impl ShardTransport for UdsTransport {
    type Conn = SocketConn;

    fn launch(&self, shards: usize) -> io::Result<Vec<SocketConn>> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "deco-shard-{}-{}.sock",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        // Unlink the socket path once every worker is connected (or the
        // launch fails) — connected streams outlive the filesystem name.
        let _guard = UnlinkGuard(path.clone());
        let mut children = Vec::new();
        match &self.mode {
            WorkerMode::Spawn(bin) => {
                for _ in 0..shards {
                    children.push(
                        Command::new(bin)
                            .arg("--connect-uds")
                            .arg(&path)
                            .stdin(Stdio::null())
                            .stdout(Stdio::null())
                            .stderr(Stdio::inherit())
                            .spawn()?,
                    );
                }
            }
            WorkerMode::InProcess => {
                for s in 0..shards {
                    let path = path.clone();
                    std::thread::Builder::new()
                        .name(format!("deco-shard-uds-{s}"))
                        .spawn(move || {
                            if let Ok(stream) = UnixStream::connect(&path) {
                                if let Ok(clone) = stream.try_clone() {
                                    let _ = serve_duplex(io::BufReader::new(clone), stream);
                                }
                            }
                        })?;
                }
            }
        }
        let streams = accept_n(
            shards,
            self.accept_timeout,
            || {
                listener.set_nonblocking(true)?;
                Ok(())
            },
            || listener.accept().map(|(s, _)| s),
        )?;
        let mut conns = Vec::with_capacity(shards);
        for (i, stream) in streams.into_iter().enumerate() {
            stream.set_nonblocking(false)?;
            let reader = FrameReader::spawn(stream.try_clone()?, &format!("uds-{i}"))?;
            conns.push(SocketConn {
                child: children.pop(),
                writer: Box::new(stream),
                reader,
            });
        }
        Ok(conns)
    }

    fn label(&self) -> &'static str {
        "uds"
    }
}

/// Removes a Unix socket path on drop (including every error path).
#[cfg(unix)]
struct UnlinkGuard(PathBuf);

#[cfg(unix)]
impl Drop for UnlinkGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Accepts exactly `n` connections under `timeout`, polling a nonblocking
/// listener. A worker that never dials in turns into a `TimedOut` launch
/// error instead of a coordinator that hangs in `accept`.
fn accept_n<S>(
    n: usize,
    timeout: Duration,
    set_nonblocking: impl FnOnce() -> io::Result<()>,
    mut accept: impl FnMut() -> io::Result<S>,
) -> io::Result<Vec<S>> {
    set_nonblocking()?;
    let deadline = Instant::now() + timeout;
    let mut streams = Vec::with_capacity(n);
    while streams.len() < n {
        match accept() {
            Ok(s) => streams.push(s),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "only {}/{n} shard workers dialed in before the accept deadline",
                            streams.len()
                        ),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(streams)
}

#[cfg(test)]
mod tests {
    use super::super::framed::{run_framed, ChannelTransport, ProtocolSpec};
    use super::*;
    use deco_graph::generators;

    fn seq_ids(n: usize) -> Vec<u64> {
        (1..=n as u64).collect()
    }

    #[test]
    fn in_process_tcp_matches_channel_bit_for_bit() {
        let g = generators::random_regular(24, 4, 5);
        let ids = seq_ids(24);
        let spec = ProtocolSpec::FloodMax { radius: 4 };
        let a = run_framed(&ChannelTransport, &g, &ids, spec, 2, 1, 50).unwrap();
        let b = run_framed(&TcpTransport::in_process(), &g, &ids, spec, 2, 1, 50).unwrap();
        assert_eq!(a.outcome.outputs, b.outcome.outputs);
        assert_eq!(a.outcome.rounds, b.outcome.rounds);
        assert_eq!(a.outcome.messages, b.outcome.messages);
        assert_eq!(
            a.exchange_bytes, b.exchange_bytes,
            "same frames, same bytes"
        );
        assert_eq!(a.total_bytes, b.total_bytes);
    }

    #[cfg(unix)]
    #[test]
    fn in_process_uds_matches_channel_bit_for_bit() {
        let g = generators::cycle(20);
        let ids = seq_ids(20);
        let spec = ProtocolSpec::StaggeredSum { spread: 4 };
        let a = run_framed(&ChannelTransport, &g, &ids, spec, 4, 1, 50).unwrap();
        let b = run_framed(&UdsTransport::in_process(), &g, &ids, spec, 4, 1, 50).unwrap();
        assert_eq!(a.outcome.outputs, b.outcome.outputs);
        assert_eq!(a.outcome.messages, b.outcome.messages);
        assert_eq!(
            a.exchange_bytes, b.exchange_bytes,
            "same frames, same bytes"
        );
        assert_eq!(a.total_bytes, b.total_bytes);
    }

    #[test]
    fn missing_workers_time_out_at_accept() {
        // Nothing ever dials in: launch must fail within the deadline, not
        // hang the coordinator in accept().
        let t = TcpTransport::in_process().with_accept_timeout(Duration::from_millis(100));
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let start = Instant::now();
        let err = accept_n(
            1,
            t.accept_timeout,
            || {
                listener.set_nonblocking(true)?;
                Ok(())
            },
            || listener.accept().map(|(s, _)| s),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
