//! Stock [`NodeProgram`]s for exercising executors.
//!
//! These protocols are deliberately simple and deterministic — they exist
//! to stress the *substrate* (delivery, halting, round accounting), not to
//! solve interesting problems. The differential suite and the benchmarks
//! run them across the scenario matrix on every executor.
//!
//! Note how every program keys its state transitions off its **own local
//! round counter** (`self.round`), never off any global notion of time —
//! that is all the LOCAL model ever promises (a round-`r` state is a
//! function of the radius-`r` ball), and it is the property the
//! barrier-free [`AsyncExecutor`](crate::async_engine::AsyncExecutor)
//! exploits: under its component-local [`RoundClock`](crate::clock), two
//! nodes in different components can be many local rounds apart while each
//! program observes exactly the synchronous semantics. [`StaggeredSum`] is
//! the sharpest stressor here: its nodes halt at ID-dependent local rounds,
//! so executors that conflate local and global time diverge instantly.

use deco_local::network::NodeCtx;
use deco_local::runner::{NodeProgram, Protocol};

/// Every node floods the maximum ID it has seen; halts after `radius`
/// rounds, outputting the maximum ID within distance `radius`.
#[derive(Debug, Clone, Copy)]
pub struct FloodMax {
    /// Rounds to flood (the ball radius the output depends on).
    pub radius: u64,
}

/// Program of [`FloodMax`].
#[derive(Debug)]
pub struct FloodMaxProgram {
    best: u64,
    round: u64,
    radius: u64,
}

impl NodeProgram for FloodMaxProgram {
    type Msg = u64;
    type Output = u64;

    fn send(&mut self, ctx: &NodeCtx<'_>) -> Vec<Option<u64>> {
        vec![Some(self.best); ctx.degree()]
    }

    fn receive(&mut self, _ctx: &NodeCtx<'_>, inbox: &[Option<u64>]) {
        for m in inbox.iter().flatten() {
            self.best = self.best.max(*m);
        }
        self.round += 1;
    }

    fn output(&self, _ctx: &NodeCtx<'_>) -> Option<u64> {
        (self.round >= self.radius).then_some(self.best)
    }
}

impl Protocol for FloodMax {
    type Program = FloodMaxProgram;
    fn spawn(&self, ctx: &NodeCtx<'_>) -> FloodMaxProgram {
        FloodMaxProgram {
            best: ctx.id,
            round: 0,
            radius: self.radius,
        }
    }
}

/// Port-consistency check: each node announces `(its id, the port it sends
/// through)` on every port; each node outputs a digest of everything it
/// heard, *keyed by receiving port*. Any delivery bug — wrong mirror port,
/// wrong neighbor, dropped or duplicated message — changes some digest.
#[derive(Debug, Clone, Copy)]
pub struct PortEcho {
    /// Number of echo rounds (every round re-checks delivery).
    pub rounds: u64,
}

/// Program of [`PortEcho`].
#[derive(Debug)]
pub struct PortEchoProgram {
    digest: u64,
    round: u64,
    limit: u64,
}

impl NodeProgram for PortEchoProgram {
    type Msg = (u64, u64);
    type Output = u64;

    fn send(&mut self, ctx: &NodeCtx<'_>) -> Vec<Option<(u64, u64)>> {
        (0..ctx.degree())
            .map(|p| Some((ctx.id, p as u64)))
            .collect()
    }

    fn receive(&mut self, _ctx: &NodeCtx<'_>, inbox: &[Option<(u64, u64)>]) {
        for (port, slot) in inbox.iter().enumerate() {
            let (sender, sender_port) = slot.expect("every neighbor sends every round");
            // Order-sensitive rolling digest over (receiving port, sender,
            // sender's port): any permutation or corruption shows up.
            for x in [port as u64 + 1, sender, sender_port + 1] {
                self.digest = (self.digest.rotate_left(7) ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        self.round += 1;
    }

    fn output(&self, _ctx: &NodeCtx<'_>) -> Option<u64> {
        (self.round >= self.limit).then_some(self.digest)
    }
}

impl Protocol for PortEcho {
    type Program = PortEchoProgram;
    fn spawn(&self, _ctx: &NodeCtx<'_>) -> PortEchoProgram {
        PortEchoProgram {
            digest: 0,
            round: 0,
            limit: self.rounds,
        }
    }
}

/// Staggered halting: node `v` halts after `(id mod spread) + 1` rounds,
/// outputting the sum of everything it received while alive. Exercises the
/// halted-nodes-stay-silent rule — executors that keep delivering stale
/// slots from halted senders, or that miscount messages once some nodes
/// stop, diverge immediately.
#[derive(Debug, Clone, Copy)]
pub struct StaggeredSum {
    /// Halting times are spread over `1..=spread` rounds.
    pub spread: u64,
}

/// Program of [`StaggeredSum`].
#[derive(Debug)]
pub struct StaggeredSumProgram {
    acc: u64,
    round: u64,
    deadline: u64,
}

impl NodeProgram for StaggeredSumProgram {
    type Msg = u64;
    type Output = u64;

    fn send(&mut self, ctx: &NodeCtx<'_>) -> Vec<Option<u64>> {
        // Odd ports stay silent on odd rounds: exercises None slots.
        (0..ctx.degree())
            .map(|p| {
                (p as u64 + self.round)
                    .is_multiple_of(2)
                    .then_some(self.acc + p as u64)
            })
            .collect()
    }

    fn receive(&mut self, _ctx: &NodeCtx<'_>, inbox: &[Option<u64>]) {
        self.acc = self
            .acc
            .wrapping_add(inbox.iter().flatten().fold(0u64, |a, &m| a.wrapping_add(m)));
        self.round += 1;
    }

    fn output(&self, _ctx: &NodeCtx<'_>) -> Option<u64> {
        (self.round >= self.deadline).then_some(self.acc)
    }
}

impl Protocol for StaggeredSum {
    type Program = StaggeredSumProgram;
    fn spawn(&self, ctx: &NodeCtx<'_>) -> StaggeredSumProgram {
        StaggeredSumProgram {
            acc: ctx.id,
            round: 0,
            deadline: (ctx.id % self.spread) + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;
    use deco_local::network::{IdAssignment, Network};
    use deco_local::runner::run;

    #[test]
    fn flood_max_converges_to_global_max_on_connected_graphs() {
        let g = generators::cycle(9);
        let net = Network::new(&g, IdAssignment::Reversed);
        let out = run(&net, &FloodMax { radius: 9 }, 20).unwrap();
        assert!(out.outputs.iter().all(|&o| o == 9));
    }

    #[test]
    fn port_echo_digest_depends_on_ports() {
        let g = generators::star(3);
        let net = Network::new(&g, IdAssignment::Sequential);
        let out = run(&net, &PortEcho { rounds: 2 }, 10).unwrap();
        // Leaves have one port each but different neighbors' ports: the
        // center's ports 0..3 are distinguished, so digests differ.
        assert_ne!(out.outputs[1], out.outputs[2]);
    }

    #[test]
    fn staggered_sum_halts_at_different_times() {
        let g = generators::cycle(10);
        let net = Network::new(&g, IdAssignment::Sequential);
        let out = run(&net, &StaggeredSum { spread: 4 }, 20).unwrap();
        assert_eq!(out.rounds, 4, "slowest node halts after spread rounds");
    }
}
