//! `deco-shardd` — one shard worker process of the framed sharded engine.
//!
//! Spawned by the subprocess [`ShardTransport`] with a frame pipe on
//! stdin/stdout: reads the `Init` frame (topology, IDs, protocol spec,
//! shard assignment), rebuilds its shard of the network, then answers the
//! coordinator's per-round `SendReq`/`Deliver` frames until `Shutdown`.
//! All protocol logic lives in `deco_engine::shard::framed`; this binary
//! is only the stdio shell around it.
//!
//! [`ShardTransport`]: deco_engine::shard::framed::ShardTransport

fn main() {
    if let Err(e) = deco_engine::shard::framed::serve_stdio() {
        eprintln!("deco-shardd: {e}");
        std::process::exit(1);
    }
}
