//! `deco-shardd` — one shard worker process of the framed sharded engine.
//!
//! Spawned by a [`ShardTransport`] and speaks the framed worker protocol
//! over one of three carriers:
//!
//! * no arguments — frames on stdin/stdout (the subprocess transport);
//! * `--connect <host:port>` — dial the coordinator's TCP listener;
//! * `--connect-uds <path>` — dial the coordinator's Unix-domain socket
//!   (Unix only).
//!
//! Whatever the carrier, it reads the `Init` frame (topology, IDs,
//! protocol spec, shard assignment), rebuilds its shard of the network,
//! then answers the coordinator's per-round `SendReq`/`Deliver` frames
//! until `Shutdown`. All protocol logic lives in
//! `deco_engine::shard::framed`; this binary is only the shell around it.
//!
//! `--stall` (test hook, stdio mode only) reads and discards frames
//! without ever answering — a wedged worker for exercising the
//! coordinator's receive deadline. Unknown arguments exit with status 2.
//!
//! [`ShardTransport`]: deco_engine::shard::framed::ShardTransport

use std::io::Read;

fn usage() -> ! {
    eprintln!(
        "usage: deco-shardd [--connect <host:port> | --connect-uds <path> | --stall]\n\
         serves one shard of the framed engine over stdio (default), TCP, or a Unix socket"
    );
    std::process::exit(2);
}

/// Reads stdin forever without answering — a deliberately wedged worker.
fn stall() -> std::io::Result<()> {
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin().lock();
    loop {
        if stdin.read(&mut sink)? == 0 {
            return Ok(()); // coordinator hung up; exit quietly
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [] => deco_engine::shard::framed::serve_stdio(),
        [flag] if flag == "--stall" => stall(),
        [flag, addr] if flag == "--connect" => deco_engine::shard::net::connect_and_serve_tcp(addr),
        #[cfg(unix)]
        [flag, path] if flag == "--connect-uds" => {
            deco_engine::shard::net::connect_and_serve_uds(std::path::Path::new(path))
        }
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("deco-shardd: {e}");
        std::process::exit(1);
    }
}
