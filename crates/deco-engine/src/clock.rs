//! Component-local round clocks for barrier-free execution.
//!
//! The LOCAL model is round-synchronous, but synchrony is a *semantic*
//! device, not an operational requirement: a node's round-`r` state depends
//! only on its radius-`r` neighborhood, so any execution that feeds each
//! node exactly its neighbors' round-`(r-1)` messages computes the same
//! outputs — no matter how far apart the *local* round counters of distant
//! (or disconnected) nodes drift. [`RoundClock`] is the bookkeeping that
//! makes this safe: one monotone `(sent, received, halted)` triple per node,
//! shared across worker threads as atomics.
//!
//! Two predicates govern all progress (see [`crate::async_engine`]):
//!
//! * **Availability** — node `v` may *receive* local round `r` once every
//!   neighbor has either published its round-`r` messages or halted before
//!   round `r` (halted nodes stay silent forever).
//! * **Capacity** — node `v` may *send* local round `r` only while no
//!   active neighbor still needs the ring slot it would overwrite, i.e.
//!   every active neighbor has received round `r - 2` already. This is the
//!   **depth-1 lookahead invariant**: a node's completed-round counter may
//!   exceed any neighbor's by at most one, which is exactly what lets a
//!   two-round ring buffer per port replace unbounded mailbox queues.
//!
//! Both predicates are monotone (counters only grow), so a readiness check
//! that passes can never be invalidated — the scheduler may re-order work
//! freely without changing what each node observes. All counters use
//! `SeqCst` ordering: the clock is a coordination structure, not a hot
//! loop, and the simplest memory-order argument is worth more here than a
//! few relaxed loads. Message payloads are *not* protected by these
//! atomics; they travel through per-slot mutexes in the ring buffer, whose
//! lock/unlock pairs provide the happens-before edges.
//!
//! ```
//! use deco_engine::RoundClock;
//!
//! let clock = RoundClock::new(2, 10);
//! // Node 0 publishes and completes round 1, then halts there.
//! clock.mark_sent(0, 1);
//! assert_eq!(clock.mark_received(0, 1), 1); // nobody is ahead yet
//! clock.mark_halted(0, 1);
//! // Its round-1 message was real; every later round reads as silence.
//! assert!(!clock.halted_before(0, 1));
//! assert!(clock.halted_before(0, 2));
//! // Node 1 never moved: the counters are per node.
//! assert_eq!(clock.received(1), 0);
//! assert_eq!(clock.finished_count(), 1);
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Sentinel for "still running" in the per-node halt table.
const ACTIVE: u64 = u64::MAX;

/// Per-node local round counters shared across the async engine's workers.
///
/// For every node the clock tracks `sent` (rounds whose outgoing messages
/// are published), `recv` (rounds whose inbox has been processed; the
/// node's *completed* local round), and `halt` (the local round at which
/// the node produced its output, or the `ACTIVE` sentinel). The invariant
/// `recv <= sent <= recv + 1` holds at every instant: a node alternates
/// send and receive, never batching.
#[derive(Debug)]
pub struct RoundClock {
    sent: Vec<AtomicU64>,
    recv: Vec<AtomicU64>,
    halt: Vec<AtomicU64>,
    /// Highest completed local round over all nodes; feeds the
    /// rounds-in-flight samples.
    max_recv: AtomicU64,
    /// Nodes that are finished (halted, or capped at the round limit).
    finished: AtomicUsize,
    /// The run's round limit: a node that completes this many local rounds
    /// without halting is capped (and will make the run error out).
    limit: u64,
}

impl RoundClock {
    /// A clock for `n` nodes, all at local round 0, none halted, with the
    /// given round `limit`.
    pub fn new(n: usize, limit: u64) -> RoundClock {
        RoundClock {
            sent: (0..n).map(|_| AtomicU64::new(0)).collect(),
            recv: (0..n).map(|_| AtomicU64::new(0)).collect(),
            halt: (0..n).map(|_| AtomicU64::new(ACTIVE)).collect(),
            max_recv: AtomicU64::new(0),
            finished: AtomicUsize::new(0),
            limit,
        }
    }

    /// Rounds node `v` has published sends for.
    #[inline]
    pub fn sent(&self, v: usize) -> u64 {
        self.sent[v].load(Ordering::SeqCst)
    }

    /// Rounds node `v` has completed (received and processed).
    #[inline]
    pub fn received(&self, v: usize) -> u64 {
        self.recv[v].load(Ordering::SeqCst)
    }

    /// Whether node `v` halted strictly before local round `r` — if so, its
    /// round-`r` message on every port is `None` by the silent-halt rule.
    #[inline]
    pub fn halted_before(&self, v: usize, r: u64) -> bool {
        self.halt[v].load(Ordering::SeqCst) < r
    }

    /// Whether node `v` has halted (at any round).
    #[inline]
    pub fn halted(&self, v: usize) -> bool {
        self.halt[v].load(Ordering::SeqCst) != ACTIVE
    }

    /// Whether node `v` is finished: halted, or capped at the round limit.
    /// Finished nodes never run again.
    #[inline]
    pub fn finished(&self, v: usize) -> bool {
        self.halted(v) || self.received(v) >= self.limit
    }

    /// Records that node `v` published its round-`r` messages.
    #[inline]
    pub fn mark_sent(&self, v: usize, r: u64) {
        self.sent[v].store(r, Ordering::SeqCst);
    }

    /// Records that node `v` completed local round `r` and returns the
    /// rounds-in-flight sample at this instant: how many rounds the
    /// globally furthest node is ahead of this one, plus one. Under a
    /// global barrier this is always 1; the async engine's whole point is
    /// that it is allowed to exceed 1.
    ///
    /// The sample depends on scheduling and is **not** part of the
    /// deterministic contract — only outputs, round counts, and message
    /// counts are. It is measurement, not semantics.
    #[inline]
    pub fn mark_received(&self, v: usize, r: u64) -> u64 {
        self.recv[v].store(r, Ordering::SeqCst);
        let furthest = self.max_recv.fetch_max(r, Ordering::SeqCst).max(r);
        furthest - r + 1
    }

    /// Records that node `v` halted at local round `r`. Must be called at
    /// most once per node, after its final [`RoundClock::mark_received`].
    pub fn mark_halted(&self, v: usize, r: u64) {
        self.halt[v].store(r, Ordering::SeqCst);
        self.finished.fetch_add(1, Ordering::SeqCst);
    }

    /// Records that node `v` hit the round limit without halting.
    pub fn mark_capped(&self, v: usize) {
        debug_assert!(self.received(v) >= self.limit && !self.halted(v));
        self.finished.fetch_add(1, Ordering::SeqCst);
    }

    /// How many nodes are finished (halted or capped).
    #[inline]
    pub fn finished_count(&self) -> usize {
        self.finished.load(Ordering::SeqCst)
    }

    /// The run's round limit.
    #[inline]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// The halting round of node `v`; `None` if it never halted. Meant for
    /// post-run accounting (global round count, barrier-wait tally).
    pub fn halt_round(&self, v: usize) -> Option<u64> {
        let h = self.halt[v].load(Ordering::SeqCst);
        (h != ACTIVE).then_some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clock_is_all_active_at_round_zero() {
        let c = RoundClock::new(3, 10);
        for v in 0..3 {
            assert_eq!(c.sent(v), 0);
            assert_eq!(c.received(v), 0);
            assert!(!c.halted(v));
            assert!(!c.finished(v));
            assert_eq!(c.halt_round(v), None);
        }
        assert_eq!(c.finished_count(), 0);
    }

    #[test]
    fn halt_semantics_follow_the_silent_halt_rule() {
        let c = RoundClock::new(2, 10);
        c.mark_sent(0, 1);
        assert_eq!(c.mark_received(0, 1), 1);
        c.mark_halted(0, 1);
        assert!(c.halted(0));
        assert!(c.finished(0));
        assert_eq!(c.halt_round(0), Some(1));
        // Round 1's message was really sent; rounds 2+ read as silent.
        assert!(!c.halted_before(0, 1));
        assert!(c.halted_before(0, 2));
        assert_eq!(c.finished_count(), 1);
    }

    #[test]
    fn round_limit_caps_without_halting() {
        let c = RoundClock::new(1, 2);
        c.mark_sent(0, 1);
        c.mark_received(0, 1);
        assert!(!c.finished(0));
        c.mark_sent(0, 2);
        c.mark_received(0, 2);
        assert!(c.finished(0), "capped at the limit");
        assert!(!c.halted(0));
        c.mark_capped(0);
        assert_eq!(c.finished_count(), 1);
        assert_eq!(c.halt_round(0), None);
    }

    #[test]
    fn in_flight_samples_measure_the_spread() {
        let c = RoundClock::new(2, 100);
        // Node 0 races ahead to round 5; node 1 then completes round 1.
        for r in 1..=5 {
            c.mark_sent(0, r);
            assert_eq!(c.mark_received(0, r), 1, "leader always samples 1");
        }
        c.mark_sent(1, 1);
        assert_eq!(c.mark_received(1, 1), 5, "laggard sees the leader's lead");
    }
}
