//! The barrier-free round executor.
//!
//! [`AsyncExecutor`] runs the same LOCAL-model protocols as the serial
//! runner and the phase-parallel [`ParallelExecutor`](crate::engine), but
//! with **no global barrier at all**: every node carries its own local
//! round counter ([`RoundClock`]) and advances the instant its inputs are
//! ready. Disconnected components drift arbitrarily far apart; within a
//! component, frontier nodes run ahead of laggards by up to one round
//! (the depth-1 lookahead invariant — see below). The scenario matrix's
//! disconnected families are where this visibly pays off: a tiny component
//! finishes its whole execution while a large one is still in round 1,
//! instead of idling through every global round.
//!
//! # Why outputs stay deterministic without a barrier
//!
//! A synchronous execution is a dataflow DAG: the state of node `v` after
//! local round `r` is a pure function of `v`'s initial state and exactly
//! the round-`r` inboxes, which are in turn the round-`r` sends of its
//! neighbors — nothing else. The async engine executes *that same DAG*,
//! merely in a different topological order:
//!
//! * a node **receives** local round `r` only once every neighbor has
//!   either published its round-`r` messages or halted before round `r`
//!   (availability — halted nodes are silent forever, exactly as under
//!   the barrier);
//! * a node **sends** local round `r` only once every active neighbor has
//!   consumed round `r - 2` (capacity), so the two-parity ring slot it
//!   overwrites is dead. This bounds the drift between *adjacent* nodes
//!   to one completed round — the depth-1 lookahead invariant — which is
//!   why a [`RingBuffer`] with exactly two rounds per port suffices.
//!
//! Both predicates are monotone, so any scheduler that respects them —
//! including this one's work-stealing ready queue, under any thread count
//! and any interleaving — feeds every `receive` call the bit-identical
//! inbox the serial runner would have built. Outputs, per-node halting
//! rounds (hence the global round count, their maximum), and message
//! counts are therefore equal to the serial runner's on every protocol and
//! every network; the three-way differential suite enforces this. The only
//! schedule-dependent quantities are the *measurements* in [`AsyncStats`],
//! which exist to show the asynchrony, not to define semantics.
//!
//! Deadlock-freedom: order nodes by `(received, sent)`. A minimally
//! advanced non-finished node can always act — its capacity predicate only
//! consults neighbors at least as advanced as itself, and if it waits on
//! availability, the neighbor it waits on can send (by the same minimality
//! argument). So some ready node always exists until all nodes finish.

use crate::clock::RoundClock;
use crate::engine::{EngineMode, ParallelExecutor};
use crate::mailbox::{MailboxPlan, RingBuffer};
use crate::par::{split_by_weight, WorkQueue};
use deco_graph::Graph;
use deco_local::network::Network;
use deco_local::runner::{NodeProgram, Protocol, RunError, RunOutcome};
use deco_local::Executor;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Scheduler state of a node: blocked on a clock predicate, awaiting a
/// worker, on a worker, or finished. Only `IDLE -> QUEUED` is contended
/// (any neighbor's worker may perform it, via compare-exchange); all other
/// transitions are made by the worker currently running the node.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const DONE: u8 = 3;

/// Barrier-free, component-local-clock implementation of [`Executor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncExecutor {
    threads: usize,
}

impl Default for AsyncExecutor {
    fn default() -> Self {
        AsyncExecutor::auto()
    }
}

/// Schedule-dependent measurements of one barrier-free execution. These
/// quantify the asynchrony; they are deliberately *outside* the
/// determinism contract (outputs, rounds, messages), except where noted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncStats {
    /// Mean over all receive events of "how many rounds the globally
    /// furthest node was ahead of the receiving node, plus one". Under a
    /// global barrier this is pinned to 1; values above 1 are rounds that
    /// genuinely overlapped. Schedule-dependent.
    pub mean_rounds_in_flight: f64,
    /// Maximum of the same sample. Schedule-dependent.
    pub max_rounds_in_flight: u64,
    /// Number of receive events sampled (= total node-rounds executed).
    /// Deterministic.
    pub samples: u64,
    /// The global round count a barrier engine would report (maximum
    /// halting round). Deterministic and equal to the serial runner's.
    pub global_rounds: u64,
    /// Σ over nodes of `global_rounds - halt_round(v)`: the idle
    /// node-rounds a barrier engine would have spent marching every
    /// early-halted node through the remaining global rounds. This is the
    /// barrier wait the async engine eliminates. Deterministic.
    pub barrier_wait_eliminated: u64,
}

/// Per-worker accumulator, merged after the scope joins.
#[derive(Debug, Default, Clone, Copy)]
struct WorkerTally {
    messages: u64,
    sample_sum: u64,
    sample_count: u64,
    sample_min: u64,
    sample_max: u64,
}

impl WorkerTally {
    fn record(&mut self, sample: u64) {
        self.sample_sum += sample;
        if self.sample_count == 0 {
            self.sample_min = sample;
        } else {
            self.sample_min = self.sample_min.min(sample);
        }
        self.sample_count += 1;
        self.sample_max = self.sample_max.max(sample);
    }

    fn merge(&mut self, other: WorkerTally) {
        self.messages += other.messages;
        self.sample_sum += other.sample_sum;
        if other.sample_count > 0 {
            self.sample_min = if self.sample_count == 0 {
                other.sample_min
            } else {
                self.sample_min.min(other.sample_min)
            };
        }
        self.sample_count += other.sample_count;
        self.sample_max = self.sample_max.max(other.sample_max);
    }
}

/// Per-node mutable state: the program and its eventual output, behind one
/// mutex so whichever worker runs (or steals) the node gets exclusive
/// access. Uncontended by construction — a node is RUNNING on at most one
/// worker — the mutex is the safe-Rust handoff between quanta.
#[derive(Debug)]
struct NodeCell<Prog, Out> {
    program: Prog,
    output: Option<Out>,
}

/// The per-node cell of protocol `P` (program + output behind the mutex).
type CellOf<P> =
    Mutex<NodeCell<<P as Protocol>::Program, <<P as Protocol>::Program as NodeProgram>::Output>>;

/// A run's outcome paired with its asynchrony measurements.
type OutcomeWithStats<P> = (
    RunOutcome<<<P as Protocol>::Program as NodeProgram>::Output>,
    AsyncStats,
);

impl AsyncExecutor {
    /// Uses all available hardware parallelism (degrading to one worker on
    /// tiny graphs, where scheduler overhead would dominate).
    pub fn auto() -> AsyncExecutor {
        AsyncExecutor { threads: 0 }
    }

    /// Uses exactly `threads` workers, honored even on tiny graphs so the
    /// differential suite can force multi-worker scheduling everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 (use [`AsyncExecutor::auto`]).
    pub fn with_threads(threads: usize) -> AsyncExecutor {
        assert!(
            threads > 0,
            "thread count must be positive; use auto() for hardware default"
        );
        AsyncExecutor { threads }
    }

    fn effective_threads(&self, slots: usize, n: usize) -> usize {
        if self.threads != 0 {
            return self.threads.min(n.max(1));
        }
        if slots < crate::engine::MIN_PARALLEL_SLOTS {
            1
        } else {
            std::thread::available_parallelism()
                .map_or(1, usize::from)
                .min(n.max(1))
        }
    }

    /// Runs `protocol` barrier-free and additionally returns the
    /// [`AsyncStats`] measurements. [`Executor::execute`] is this minus
    /// the stats.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::RoundLimitExceeded`] exactly when the serial
    /// runner would: some node completes `max_rounds` local rounds without
    /// halting.
    pub fn execute_with_stats<P>(
        &self,
        net: &Network<'_>,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<OutcomeWithStats<P>, RunError>
    where
        P: Protocol,
        P::Program: Send,
        <P::Program as NodeProgram>::Msg: Send + Sync,
        <P::Program as NodeProgram>::Output: Send,
    {
        let execute_span = deco_trace::span(deco_trace::Phase::Execute);
        let g = net.graph();
        let n = g.num_nodes();
        let plan = MailboxPlan::new(g);
        let clock = RoundClock::new(n, max_rounds);
        let rings: RingBuffer<<P::Program as NodeProgram>::Msg> = RingBuffer::new(plan.num_slots());
        let status: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(IDLE)).collect();

        // Spawn programs and collect round-0 outputs (0-round algorithms
        // halt here, before any communication, exactly as under the serial
        // runner). Nodes that survive round 0 but face a zero round budget
        // are capped immediately.
        let cells: Vec<CellOf<P>> = (0..n)
            .map(|v| {
                let ctx = net.ctx(v.into());
                let program = protocol.spawn(&ctx);
                let output = program.output(&ctx);
                if output.is_some() {
                    clock.mark_halted(v, 0);
                } else if max_rounds == 0 {
                    clock.mark_capped(v);
                }
                Mutex::new(NodeCell { program, output })
            })
            .collect();

        let mut tally = WorkerTally::default();
        if clock.finished_count() < n {
            let weights: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
            let threads = self.effective_threads(plan.num_slots(), n);
            let ranges = split_by_weight(&weights, threads);
            let queue = WorkQueue::new(&ranges, n);
            for (v, st) in status.iter().enumerate() {
                if clock.finished(v) {
                    // Nodes halted (or capped) during setup must be DONE
                    // before any worker starts: a neighbor's progress
                    // notification CASes IDLE -> QUEUED, and re-running a
                    // finished program would break the silent-halt rule.
                    st.store(DONE, Ordering::SeqCst);
                } else {
                    st.store(QUEUED, Ordering::SeqCst);
                    queue.push(v);
                }
            }
            let shared = Shared {
                g,
                net,
                plan: &plan,
                clock: &clock,
                rings: &rings,
                status: &status,
                cells: &cells,
                queue: &queue,
                n,
            };
            if ranges.len() <= 1 {
                tally = worker_loop::<P>(&shared, 0);
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..ranges.len())
                        .map(|w| {
                            let shared = &shared;
                            scope.spawn(move || {
                                // A panicking worker (a protocol panicked)
                                // must close the queue on the way out, or
                                // sleeping siblings would hang the join.
                                let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    worker_loop::<P>(shared, w)
                                }));
                                match out {
                                    Ok(t) => t,
                                    Err(payload) => {
                                        shared.queue.close();
                                        std::panic::resume_unwind(payload);
                                    }
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        match h.join() {
                            Ok(t) => tally.merge(t),
                            Err(payload) => std::panic::resume_unwind(payload),
                        }
                    }
                });
            }
        }

        let still_running = (0..n).filter(|&v| !clock.halted(v)).count();
        if still_running > 0 {
            execute_span.cancel();
            return Err(RunError::RoundLimitExceeded {
                limit: max_rounds,
                still_running,
            });
        }

        let mut global_rounds = 0u64;
        let mut halt_sum = 0u64;
        for v in 0..n {
            let h = clock.halt_round(v).expect("all nodes halted");
            global_rounds = global_rounds.max(h);
            halt_sum += h;
        }
        let outputs = cells
            .into_iter()
            .map(|cell| {
                cell.into_inner()
                    .expect("no worker panicked")
                    .output
                    .expect("all nodes halted with an output")
            })
            .collect();
        let stats = AsyncStats {
            mean_rounds_in_flight: if tally.sample_count == 0 {
                1.0
            } else {
                tally.sample_sum as f64 / tally.sample_count as f64
            },
            max_rounds_in_flight: tally.sample_max,
            samples: tally.sample_count,
            global_rounds,
            barrier_wait_eliminated: global_rounds * n as u64 - halt_sum,
        };
        drop(execute_span);
        if deco_trace::enabled() {
            deco_trace::count(deco_trace::Counter::Messages, tally.messages);
            deco_trace::count(deco_trace::Counter::Rounds, global_rounds);
            deco_trace::count(
                deco_trace::Counter::BarrierWaitEliminated,
                stats.barrier_wait_eliminated,
            );
            deco_trace::sample_summary(
                deco_trace::Counter::RoundsInFlight,
                tally.sample_count,
                tally.sample_sum,
                tally.sample_min,
                tally.sample_max,
            );
        }
        Ok((
            RunOutcome {
                outputs,
                rounds: global_rounds,
                messages: tally.messages,
            },
            stats,
        ))
    }
}

/// Everything a worker needs, bundled so the scoped closures stay small.
struct Shared<'a, 'g, P: Protocol> {
    g: &'g Graph,
    net: &'a Network<'g>,
    plan: &'a MailboxPlan,
    clock: &'a RoundClock,
    rings: &'a RingBuffer<<P::Program as NodeProgram>::Msg>,
    status: &'a [AtomicU8],
    cells: &'a [CellOf<P>],
    queue: &'a WorkQueue,
    n: usize,
}

/// Capacity predicate: node `v` may publish round `r` once no active
/// neighbor still needs the parity slot round `r` overwrites (i.e. every
/// active neighbor has completed round `r - 2`). Halted neighbors never
/// read again, so they impose no constraint.
fn can_send<P: Protocol>(s: &Shared<'_, '_, P>, v: usize, r: u64) -> bool {
    s.g.adjacent(v.into()).iter().all(|adj| {
        let u = adj.neighbor.index();
        s.clock.halted(u) || s.clock.received(u) + 2 >= r
    })
}

/// Availability predicate: node `v` may consume round `r` once every
/// neighbor has published round `r` or halted before it.
fn can_receive<P: Protocol>(s: &Shared<'_, '_, P>, v: usize, r: u64) -> bool {
    s.g.adjacent(v.into()).iter().all(|adj| {
        let u = adj.neighbor.index();
        s.clock.halted_before(u, r) || s.clock.sent(u) >= r
    })
}

/// Whether node `v` could act right now. Pure clock reads — used by the
/// lost-wakeup re-check and by neighbor notification.
fn is_ready<P: Protocol>(s: &Shared<'_, '_, P>, v: usize) -> bool {
    if s.clock.finished(v) {
        return false;
    }
    let c = s.clock.received(v);
    if s.clock.sent(v) == c {
        can_send(s, v, c + 1)
    } else {
        can_receive(s, v, c + 1)
    }
}

/// Enqueues `v` unless it is already queued, running, or done. Spurious
/// enqueues (node turns out blocked when popped) are harmless; *missing*
/// one would strand the dataflow, so notification over-approximates.
fn try_enqueue<P: Protocol>(s: &Shared<'_, '_, P>, v: usize) {
    if s.status[v]
        .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        s.queue.push(v);
    }
}

/// One worker: pop a node, run it as far as the clock predicates allow,
/// notify neighbors of the progress, repeat until the queue closes.
fn worker_loop<P>(s: &Shared<'_, '_, P>, worker: usize) -> WorkerTally
where
    P: Protocol,
    P::Program: Send,
    <P::Program as NodeProgram>::Msg: Send + Sync,
    <P::Program as NodeProgram>::Output: Send,
{
    let mut tally = WorkerTally::default();
    let mut inbox: Vec<Option<<P::Program as NodeProgram>::Msg>> = Vec::new();
    while let Some(v) = s.queue.pop(worker) {
        s.status[v].store(RUNNING, Ordering::SeqCst);
        let progressed = run_node(s, v, &mut tally, &mut inbox);
        if s.clock.finished(v) {
            s.status[v].store(DONE, Ordering::SeqCst);
            if s.clock.finished_count() == s.n {
                s.queue.close();
            }
        } else {
            s.status[v].store(IDLE, Ordering::SeqCst);
        }
        if progressed {
            // This node's clock moved: neighbors blocked on availability
            // (our sends) or capacity (our receives) may be ready now.
            for adj in s.g.adjacent(v.into()) {
                try_enqueue(s, adj.neighbor.index());
            }
        }
        // Close the lost-wakeup race: a neighbor that progressed while we
        // were RUNNING skipped notifying us (it saw RUNNING, not IDLE), so
        // after stepping back to IDLE we must re-check and requeue
        // ourselves. SeqCst ordering makes the re-check see any progress
        // that the skipped notification would have announced.
        if !s.clock.finished(v) && is_ready(s, v) {
            try_enqueue(s, v);
        }
    }
    tally
}

/// Runs node `v`'s micro-steps — alternating `send(r)` / `receive(r)` —
/// until a clock predicate blocks it or it finishes. Returns whether any
/// step ran. The quantum is naturally short: the capacity predicate stops
/// a node one round past its slowest active neighbor, so no node can
/// monopolize a worker (isolated nodes, with no neighbors to wait on, run
/// to completion in one quantum — that is the showcase, not a bug).
fn run_node<P>(
    s: &Shared<'_, '_, P>,
    v: usize,
    tally: &mut WorkerTally,
    inbox: &mut Vec<Option<<P::Program as NodeProgram>::Msg>>,
) -> bool
where
    P: Protocol,
    P::Program: Send,
{
    let mut cell = s.cells[v].lock().expect("node cell poisoned");
    let mut progressed = false;
    loop {
        let c = s.clock.received(v);
        debug_assert!(!s.clock.finished(v), "finished nodes are never queued");
        let r = c + 1;
        if s.clock.sent(v) == c {
            // Next micro-step: publish round r.
            if !can_send(s, v, r) {
                break;
            }
            let ctx = s.net.ctx(v.into());
            let deg = ctx.degree();
            let out = cell.program.send(&ctx);
            let mut it = out.into_iter();
            let base = s.plan.offset(v.into());
            for j in 0..deg {
                // Matches the serial runner's `resize_with(degree)`:
                // missing entries are silence, surplus entries are dropped.
                let msg = it.next().flatten();
                if msg.is_some() {
                    tally.messages += 1;
                }
                s.rings.publish(s.plan.mirror(base + j), r, msg);
            }
            s.clock.mark_sent(v, r);
        } else {
            // Next micro-step: consume round r.
            if !can_receive(s, v, r) {
                break;
            }
            let ctx = s.net.ctx(v.into());
            let base = s.plan.offset(v.into());
            inbox.clear();
            for (j, adj) in s.g.adjacent(v.into()).iter().enumerate() {
                let u = adj.neighbor.index();
                if s.clock.halted_before(u, r) {
                    inbox.push(None);
                } else {
                    inbox.push(s.rings.take(base + j, r));
                }
            }
            cell.program.receive(&ctx, inbox);
            let output = cell.program.output(&ctx);
            tally.record(s.clock.mark_received(v, r));
            if let Some(o) = output {
                cell.output = Some(o);
                s.clock.mark_halted(v, r);
                progressed = true;
                break;
            }
            if r >= s.clock.limit() {
                s.clock.mark_capped(v);
                progressed = true;
                break;
            }
        }
        progressed = true;
    }
    progressed
}

impl Executor for AsyncExecutor {
    fn execute<P>(
        &self,
        net: &Network<'_>,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<RunOutcome<<P::Program as NodeProgram>::Output>, RunError>
    where
        P: Protocol,
        P::Program: Send,
        <P::Program as NodeProgram>::Msg: Send + Sync,
        <P::Program as NodeProgram>::Output: Send,
    {
        self.execute_with_stats(net, protocol, max_rounds)
            .map(|(outcome, _)| outcome)
    }

    /// Branch fan-out is round-free, so asynchrony buys nothing there: the
    /// async executor delegates to the phase-parallel engine's
    /// weight-balanced scoped-thread fan-out with the same thread request.
    fn execute_branches<T, F>(&self, weights: &[usize], run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.barrier_twin().execute_branches(weights, run)
    }
}

impl AsyncExecutor {
    /// The phase-parallel executor with the same thread request, for the
    /// operations where a barrier engine is the right tool.
    fn barrier_twin(&self) -> ParallelExecutor {
        if self.threads == 0 {
            ParallelExecutor::auto()
        } else {
            ParallelExecutor::with_threads(self.threads)
        }
    }

    /// The [`EngineMode`] this executor embodies (always
    /// [`EngineMode::Async`]); parallels
    /// [`ParallelExecutor`]'s mode-dispatch surface.
    pub fn mode(&self) -> EngineMode {
        EngineMode::Async
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{FloodMax, PortEcho, StaggeredSum};
    use deco_graph::generators;
    use deco_local::network::IdAssignment;
    use deco_local::SerialExecutor;

    fn assert_identical<O: PartialEq + std::fmt::Debug>(a: &RunOutcome<O>, b: &RunOutcome<O>) {
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn matches_serial_on_a_cycle() {
        let g = generators::cycle(50);
        let net = Network::new(&g, IdAssignment::Shuffled(3));
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 7 }, 100)
            .unwrap();
        for threads in [1, 2, 5] {
            let engine = AsyncExecutor::with_threads(threads)
                .execute(&net, &FloodMax { radius: 7 }, 100)
                .unwrap();
            assert_identical(&serial, &engine);
        }
    }

    #[test]
    fn matches_serial_with_staggered_halting() {
        let g = generators::random_regular(48, 4, 11);
        let net = Network::new(&g, IdAssignment::SparseRandom(5));
        let serial = SerialExecutor
            .execute(&net, &StaggeredSum { spread: 6 }, 20)
            .unwrap();
        for threads in [1, 3] {
            let engine = AsyncExecutor::with_threads(threads)
                .execute(&net, &StaggeredSum { spread: 6 }, 20)
                .unwrap();
            assert_identical(&serial, &engine);
        }
    }

    #[test]
    fn port_delivery_is_exact_without_a_barrier() {
        let g = generators::disjoint_union(&[
            generators::star(4),
            generators::cycle(5),
            generators::complete(4),
        ]);
        let net = Network::new(&g, IdAssignment::Reversed);
        let serial = SerialExecutor
            .execute(&net, &PortEcho { rounds: 4 }, 10)
            .unwrap();
        let engine = AsyncExecutor::with_threads(2)
            .execute(&net, &PortEcho { rounds: 4 }, 10)
            .unwrap();
        assert_identical(&serial, &engine);
    }

    #[test]
    fn zero_round_protocols_short_circuit() {
        let g = generators::path(4);
        let net = Network::new(&g, IdAssignment::Sequential);
        let out = AsyncExecutor::auto()
            .execute(&net, &FloodMax { radius: 0 }, 5)
            .unwrap();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.messages, 0);
        assert_eq!(out.outputs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn round_limit_error_matches_serial() {
        let g = generators::path(3);
        let net = Network::new(&g, IdAssignment::Sequential);
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 50 }, 5)
            .unwrap_err();
        for threads in [1, 2] {
            let engine = AsyncExecutor::with_threads(threads)
                .execute(&net, &FloodMax { radius: 50 }, 5)
                .unwrap_err();
            assert_eq!(serial, engine);
        }
    }

    #[test]
    fn zero_round_budget_errors_like_serial() {
        let g = generators::cycle(4);
        let net = Network::new(&g, IdAssignment::Sequential);
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 2 }, 0)
            .unwrap_err();
        let engine = AsyncExecutor::with_threads(2)
            .execute(&net, &FloodMax { radius: 2 }, 0)
            .unwrap_err();
        assert_eq!(serial, engine);
    }

    #[test]
    fn empty_graph_executes() {
        let g = Graph::empty(3);
        let net = Network::new(&g, IdAssignment::Sequential);
        let (out, stats) = AsyncExecutor::auto()
            .execute_with_stats(&net, &FloodMax { radius: 2 }, 5)
            .unwrap();
        assert_eq!(out.messages, 0);
        assert_eq!(out.outputs, vec![1, 2, 3]);
        // Isolated nodes still execute their local rounds.
        assert_eq!(out.rounds, 2);
        assert_eq!(stats.global_rounds, 2);
    }

    #[test]
    fn no_nodes_at_all() {
        let g = Graph::empty(0);
        let net = Network::new(&g, IdAssignment::Sequential);
        let out = AsyncExecutor::with_threads(2)
            .execute(&net, &FloodMax { radius: 3 }, 5)
            .unwrap();
        assert!(out.outputs.is_empty());
        assert_eq!(out.rounds, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_rejected() {
        let _ = AsyncExecutor::with_threads(0);
    }

    /// Even-ID nodes halt at spawn (round 0) while their odd-ID neighbors
    /// keep flooding — the sharpest test of the silent-halt rule under the
    /// async scheduler. Regression: setup-halted nodes used to be left
    /// IDLE, so a neighbor's progress notification could re-enqueue and
    /// re-run a finished program.
    struct EvenIdsHaltAtSpawn;
    struct EvenHaltProgram {
        inner: crate::protocols::FloodMaxProgram,
        spawn_halted: bool,
    }

    impl deco_local::runner::NodeProgram for EvenHaltProgram {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, ctx: &deco_local::network::NodeCtx<'_>) -> Vec<Option<u64>> {
            assert!(!self.spawn_halted, "halted node asked to send");
            self.inner.send(ctx)
        }
        fn receive(&mut self, ctx: &deco_local::network::NodeCtx<'_>, inbox: &[Option<u64>]) {
            assert!(!self.spawn_halted, "halted node asked to receive");
            self.inner.receive(ctx, inbox);
        }
        fn output(&self, ctx: &deco_local::network::NodeCtx<'_>) -> Option<u64> {
            if self.spawn_halted {
                Some(0)
            } else {
                self.inner.output(ctx)
            }
        }
    }

    impl Protocol for EvenIdsHaltAtSpawn {
        type Program = EvenHaltProgram;
        fn spawn(&self, ctx: &deco_local::network::NodeCtx<'_>) -> EvenHaltProgram {
            EvenHaltProgram {
                inner: FloodMax { radius: 3 }.spawn(ctx),
                spawn_halted: ctx.id.is_multiple_of(2),
            }
        }
    }

    #[test]
    fn nodes_halted_at_spawn_stay_silent_and_unscheduled() {
        for g in [
            generators::path(9),
            generators::cycle(12),
            generators::disjoint_union(&[generators::star(4), generators::path(6)]),
        ] {
            let net = Network::new(&g, IdAssignment::Sequential);
            let serial = SerialExecutor
                .execute(&net, &EvenIdsHaltAtSpawn, 20)
                .unwrap();
            for threads in [1, 2, 4] {
                let engine = AsyncExecutor::with_threads(threads)
                    .execute(&net, &EvenIdsHaltAtSpawn, 20)
                    .unwrap();
                assert_identical(&serial, &engine);
            }
        }
    }

    #[test]
    fn stats_show_asynchrony_on_skewed_components() {
        // A long cycle next to isolated nodes: the isolated nodes halt in
        // their own time while the cycle grinds through all its rounds.
        let g = generators::disjoint_union(&[generators::cycle(40), Graph::empty(5)]);
        let net = Network::new(&g, IdAssignment::Sequential);
        let serial = SerialExecutor
            .execute(&net, &StaggeredSum { spread: 9 }, 20)
            .unwrap();
        let (out, stats) = AsyncExecutor::with_threads(2)
            .execute_with_stats(&net, &StaggeredSum { spread: 9 }, 20)
            .unwrap();
        assert_identical(&serial, &out);
        assert_eq!(stats.global_rounds, out.rounds);
        // Barrier-wait elimination is deterministic: every node that halts
        // before the last one stops burning rounds.
        let expected: u64 = (0..g.num_nodes())
            .map(|v| out.rounds - ((net.id(v.into()) % 9) + 1).min(out.rounds))
            .sum();
        assert_eq!(stats.barrier_wait_eliminated, expected);
        assert!(stats.samples > 0);
        assert!(stats.mean_rounds_in_flight >= 1.0);
    }

    #[test]
    fn branch_execution_matches_serial_default() {
        let weights: Vec<usize> = (0..23).map(|i| (i * 7) % 5 + 1).collect();
        let job = |i: usize| (i, (i as u64) * 3 % 17);
        let serial = SerialExecutor.execute_branches(&weights, job);
        for threads in [1, 2, 4] {
            let par = AsyncExecutor::with_threads(threads).execute_branches(&weights, job);
            assert_eq!(serial, par, "threads={threads}");
        }
    }
}
