//! The parallel round executor.
//!
//! [`ParallelExecutor`] runs the same synchronous schedule as the serial
//! reference runner — send, deliver, receive, repeat — but on a different
//! substrate:
//!
//! * **Flat mailboxes.** All ports live in one CSR-packed arena
//!   ([`MailboxPlan`]); the send phase writes each node's outgoing messages
//!   directly into its slot range, and the receive phase reads each inbox
//!   entry from the sender's slot through the precomputed mirror table —
//!   O(1) per message, no per-round allocation, no adjacency scans.
//! * **Phase parallelism.** Nodes are partitioned into contiguous ranges
//!   balanced by degree; each phase runs one scoped thread per range over
//!   disjoint `&mut` slices, with the scope join as the barrier between
//!   phases. The partition is a pure function of the graph and thread
//!   count, so results are bit-identical for every thread count — including
//!   one — and identical to [`deco_local::runner::run`].
//!
//! Determinism is not best-effort here; it is the contract. The
//! differential suite in `tests/` runs every scenario of the matrix on both
//! executors and demands equal outputs, round counts, and message counts.

use crate::config::EngineEnvError;
use crate::mailbox::{DoubleBuffer, MailboxPlan};
use crate::par::{split_by_weight, split_mut_by_ranges};
use deco_local::arena::PortArena;
use deco_local::network::Network;
use deco_local::runner::{NodeProgram, Protocol, RunError, RunOutcome};
use deco_local::Executor;
use std::ops::Range;

/// Arena slots below which [`ParallelExecutor::auto`] degrades to one range
/// (the spawn/join cost of a phase dwarfs the work; the flat mailbox fast
/// path still applies). An explicit [`ParallelExecutor::with_threads`]
/// request is always honored, so tests can force the threaded path on
/// arbitrarily small graphs. Outputs are identical either way. Shared with
/// the async engine, whose auto mode degrades on the same boundary.
pub(crate) const MIN_PARALLEL_SLOTS: usize = 4096;

/// Which round-execution substrate a [`ParallelExecutor`] dispatches to.
/// Both modes are observationally identical to the serial runner; they
/// differ only in how rounds are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Phase-parallel: global send/receive phases with a scope-join barrier
    /// between them (this file).
    #[default]
    Barrier,
    /// Barrier-free: component-local round clocks with a work-stealing
    /// ready queue ([`crate::async_engine::AsyncExecutor`]).
    Async,
}

/// Multi-threaded, flat-mailbox implementation of [`Executor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelExecutor {
    threads: usize,
    mode: EngineMode,
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        ParallelExecutor::auto()
    }
}

impl ParallelExecutor {
    /// Uses all available hardware parallelism.
    pub fn auto() -> ParallelExecutor {
        ParallelExecutor {
            threads: 0,
            mode: EngineMode::Barrier,
        }
    }

    /// Uses exactly `threads` worker threads (1 = single-threaded engine,
    /// still on the flat-mailbox fast path). Unlike
    /// [`ParallelExecutor::auto`], the request is honored even on tiny
    /// graphs — this is what lets the differential suite drive the threaded
    /// path on every scenario of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 (use [`ParallelExecutor::auto`]).
    pub fn with_threads(threads: usize) -> ParallelExecutor {
        assert!(
            threads > 0,
            "thread count must be positive; use auto() for hardware default"
        );
        ParallelExecutor {
            threads,
            mode: EngineMode::Barrier,
        }
    }

    /// This executor with its round substrate switched to `mode`; the
    /// thread request is unchanged. `Async` dispatches every
    /// [`Executor::execute`] to the barrier-free
    /// [`AsyncExecutor`](crate::async_engine::AsyncExecutor) — same
    /// observable behavior, component-local scheduling.
    pub fn with_mode(self, mode: EngineMode) -> ParallelExecutor {
        ParallelExecutor { mode, ..self }
    }

    /// The round substrate this executor dispatches to.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// The requested worker thread count (0 = [`ParallelExecutor::auto`]'s
    /// hardware default).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Reads the thread count from the `DECO_ENGINE_THREADS` environment
    /// variable (unset, empty, or `0` means [`ParallelExecutor::auto`])
    /// and the round substrate from `DECO_ENGINE_ASYNC` (unset, empty, or
    /// `0` means [`EngineMode::Barrier`]; `1` means [`EngineMode::Async`]).
    /// This is how CI pins the engine across its threads × mode test
    /// matrix without touching test code. See [`crate::config`] for the
    /// full variable reference, including `DECO_ENGINE_SHARDS` (this
    /// constructor deliberately ignores sharding —
    /// [`crate::config::EngineSelection::from_env`] is the entry point
    /// that honors all three).
    ///
    /// # Errors
    ///
    /// Returns the structured [`EngineEnvError`] naming the variable and
    /// the offending value — a typo must fail loudly, never silently
    /// un-pin the matrix, and callers decide whether that is a panic or a
    /// report.
    pub fn from_env() -> Result<ParallelExecutor, EngineEnvError> {
        let cfg = crate::config::EngineConfig {
            shards: 0,
            ..crate::config::EngineConfig::from_env()?
        };
        match cfg.selection() {
            crate::config::EngineSelection::Parallel(exec) => Ok(exec),
            crate::config::EngineSelection::Sharded(_) => {
                unreachable!("shards pinned to 0 above")
            }
        }
    }

    /// The barrier-free executor carrying this executor's thread request,
    /// used by the [`EngineMode::Async`] dispatch.
    fn async_twin(&self) -> crate::async_engine::AsyncExecutor {
        if self.threads == 0 {
            crate::async_engine::AsyncExecutor::auto()
        } else {
            crate::async_engine::AsyncExecutor::with_threads(self.threads)
        }
    }

    fn effective_threads(&self, slots: usize, n: usize) -> usize {
        if self.threads != 0 {
            return self.threads.min(n.max(1));
        }
        if slots < MIN_PARALLEL_SLOTS {
            1
        } else {
            std::thread::available_parallelism()
                .map_or(1, usize::from)
                .min(n.max(1))
        }
    }
}

impl Executor for ParallelExecutor {
    fn execute<P>(
        &self,
        net: &Network<'_>,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<RunOutcome<<P::Program as NodeProgram>::Output>, RunError>
    where
        P: Protocol,
        P::Program: Send,
        <P::Program as NodeProgram>::Msg: Send + Sync,
        <P::Program as NodeProgram>::Output: Send,
    {
        if self.mode == EngineMode::Async {
            return self.async_twin().execute(net, protocol, max_rounds);
        }
        let g = net.graph();
        let n = g.num_nodes();
        let plan = MailboxPlan::new(g);
        let weights: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        let threads = self.effective_threads(plan.num_slots(), n);
        let ranges = split_by_weight(&weights, threads);

        let mut programs: Vec<P::Program> =
            (0..n).map(|v| protocol.spawn(&net.ctx(v.into()))).collect();
        let mut outputs: Vec<Option<<P::Program as NodeProgram>::Output>> = (0..n)
            .map(|v| programs[v].output(&net.ctx(v.into())))
            .collect();
        // Halting state mirrored into plain bools so the send phase can
        // share it across threads without requiring `Output: Sync`.
        let mut halted: Vec<bool> = outputs.iter().map(Option::is_some).collect();

        let mut bufs: DoubleBuffer<<P::Program as NodeProgram>::Msg> =
            DoubleBuffer::new(plan.num_slots());
        let mut rounds = 0u64;
        let mut messages = 0u64;

        while halted.iter().any(|h| !h) {
            if rounds >= max_rounds {
                return Err(RunError::RoundLimitExceeded {
                    limit: max_rounds,
                    still_running: halted.iter().filter(|h| !**h).count(),
                });
            }
            let round_span = deco_trace::round_span(deco_trace::Phase::Round, rounds);
            let send_span = deco_trace::round_span(deco_trace::Phase::Send, rounds);
            messages += send_phase::<P>(
                net,
                &plan,
                &ranges,
                &halted,
                &mut programs,
                bufs.current_mut(),
            );
            drop(send_span);
            let receive_span = deco_trace::round_span(deco_trace::Phase::Receive, rounds);
            receive_phase::<P>(
                net,
                &plan,
                &ranges,
                bufs.current(),
                &mut programs,
                &mut outputs,
                &mut halted,
            );
            drop(receive_span);
            bufs.swap();
            rounds += 1;
            drop(round_span);
        }

        if deco_trace::enabled() {
            deco_trace::count(deco_trace::Counter::Messages, messages);
            deco_trace::count(deco_trace::Counter::Rounds, rounds);
        }

        Ok(RunOutcome {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("loop exits when all nodes have halted"))
                .collect(),
            rounds,
            messages,
        })
    }

    /// Branch fan-out on scoped worker threads: branches are packed into
    /// contiguous weight-balanced ranges ([`split_by_weight`]) and each
    /// range runs on its own thread, writing results into its disjoint
    /// chunk of the index-ordered result vector. Assembly by index makes
    /// the output independent of scheduling, so this is observationally
    /// identical to the serial default for every thread count. Branches may
    /// recurse into the executor (nested scopes are fine); an explicit
    /// [`ParallelExecutor::with_threads`] request is honored even for tiny
    /// batches so tests can force the threaded path.
    fn execute_branches<T, F>(&self, weights: &[usize], run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let n = weights.len();
        if n <= 1 {
            return (0..n).map(run).collect();
        }
        let total: usize = weights.iter().sum();
        let threads = self.effective_threads(total, n);
        let ranges = split_by_weight(weights, threads);
        if ranges.len() <= 1 {
            return (0..n).map(run).collect();
        }
        let mut results: Vec<Option<T>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        std::thread::scope(|scope| {
            for (range, chunk) in ranges
                .iter()
                .zip(split_mut_by_ranges(&mut results, &ranges))
            {
                let run = &run;
                let range = range.clone();
                scope.spawn(move || {
                    for (slot, i) in chunk.iter_mut().zip(range) {
                        *slot = Some(run(i));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every branch in a range is executed"))
            .collect()
    }
}

/// Send phase: every active node writes its outgoing messages into its own
/// arena slot range; halted nodes' ranges are cleared. Returns the number
/// of messages sent (= delivered, since every written `Some` is read).
///
/// Workers get exclusive payload-slot chunks via
/// [`PortArena::split_writers`]; presence bits go through the shared atomic
/// bitmap, which is what keeps the per-thread slot ranges degree-aligned
/// instead of word-aligned.
fn send_phase<P>(
    net: &Network<'_>,
    plan: &MailboxPlan,
    ranges: &[Range<usize>],
    halted: &[bool],
    programs: &mut [P::Program],
    arena: &mut PortArena<<P::Program as NodeProgram>::Msg>,
) -> u64
where
    P: Protocol,
    P::Program: Send,
    <P::Program as NodeProgram>::Msg: Send + Sync,
{
    let slot_ranges: Vec<Range<usize>> = ranges
        .iter()
        .map(|r| plan.offsets()[r.start]..plan.offsets()[r.end])
        .collect();
    let prog_chunks = split_mut_by_ranges(programs, ranges);
    let writers = arena.split_writers(&slot_ranges);

    let run_chunk =
        |range: Range<usize>,
         progs: &mut [P::Program],
         writer: &mut deco_local::arena::ArenaWriter<'_, <P::Program as NodeProgram>::Msg>|
         -> u64 {
            let mut sent = 0u64;
            for v in range.clone() {
                let ctx = net.ctx(v.into());
                let deg = ctx.degree();
                let base = plan.offset(v.into());
                if halted[v] {
                    for k in base..base + deg {
                        writer.clear(k);
                    }
                    continue;
                }
                let out = progs[v - range.start].send(&ctx);
                let mut it = out.into_iter();
                for k in base..base + deg {
                    // Matches the serial runner: missing entries become vacant,
                    // surplus entries are dropped.
                    let msg = it.next().flatten();
                    if msg.is_some() {
                        sent += 1;
                    }
                    writer.write(k, msg);
                }
            }
            sent
        };

    if ranges.len() <= 1 {
        return match (prog_chunks.into_iter().next(), writers.into_iter().next()) {
            (Some(progs), Some(mut writer)) => run_chunk(ranges[0].clone(), progs, &mut writer),
            _ => 0,
        };
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .zip(prog_chunks)
            .zip(writers)
            .map(|((range, progs), mut writer)| {
                let range = range.clone();
                let run_chunk = &run_chunk;
                scope.spawn(move || run_chunk(range, progs, &mut writer))
            })
            .collect();
        // Join in spawn order: the total is a sum, so the count is
        // deterministic regardless of completion order.
        handles
            .into_iter()
            .map(|h| h.join().expect("send worker panicked"))
            .sum()
    })
}

/// Receive phase: every active node gathers its inbox by reading the
/// mirror slot of each port from the send arena, processes it, and
/// re-evaluates its output.
fn receive_phase<P>(
    net: &Network<'_>,
    plan: &MailboxPlan,
    ranges: &[Range<usize>],
    arena: &PortArena<<P::Program as NodeProgram>::Msg>,
    programs: &mut [P::Program],
    outputs: &mut [Option<<P::Program as NodeProgram>::Output>],
    halted: &mut [bool],
) where
    P: Protocol,
    P::Program: Send,
    <P::Program as NodeProgram>::Msg: Send + Sync,
    <P::Program as NodeProgram>::Output: Send,
{
    let prog_chunks = split_mut_by_ranges(programs, ranges);
    let out_chunks = split_mut_by_ranges(outputs, ranges);
    let halted_chunks = split_mut_by_ranges(halted, ranges);

    let run_chunk = |range: Range<usize>,
                     progs: &mut [P::Program],
                     outs: &mut [Option<<P::Program as NodeProgram>::Output>],
                     halts: &mut [bool]| {
        // One inbox scratch buffer per worker, reused across its nodes.
        let mut inbox: Vec<Option<<P::Program as NodeProgram>::Msg>> = Vec::new();
        for v in range.clone() {
            let i = v - range.start;
            if halts[i] {
                continue;
            }
            let ctx = net.ctx(v.into());
            inbox.clear();
            inbox.extend(
                plan.slots(v.into())
                    .map(|k| arena.clone_out(plan.mirror(k))),
            );
            progs[i].receive(&ctx, &inbox);
            outs[i] = progs[i].output(&ctx);
            halts[i] = outs[i].is_some();
        }
    };

    if ranges.len() <= 1 {
        if let (Some(progs), Some(outs), Some(halts)) = (
            prog_chunks.into_iter().next(),
            out_chunks.into_iter().next(),
            halted_chunks.into_iter().next(),
        ) {
            run_chunk(ranges[0].clone(), progs, outs, halts);
        }
        return;
    }
    std::thread::scope(|scope| {
        for (((range, progs), outs), halts) in ranges
            .iter()
            .zip(prog_chunks)
            .zip(out_chunks)
            .zip(halted_chunks)
        {
            let range = range.clone();
            let run_chunk = &run_chunk;
            scope.spawn(move || run_chunk(range, progs, outs, halts));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_local::network::IdAssignment;
    use deco_local::SerialExecutor;

    use crate::protocols::FloodMax;
    use deco_graph::generators;

    fn assert_identical<O: PartialEq + std::fmt::Debug>(a: &RunOutcome<O>, b: &RunOutcome<O>) {
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn matches_serial_on_a_cycle() {
        let g = generators::cycle(50);
        let net = Network::new(&g, IdAssignment::Shuffled(3));
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 7 }, 100)
            .unwrap();
        for threads in [1, 2, 5] {
            let engine = ParallelExecutor::with_threads(threads)
                .execute(&net, &FloodMax { radius: 7 }, 100)
                .unwrap();
            assert_identical(&serial, &engine);
        }
    }

    #[test]
    fn zero_round_protocols_short_circuit() {
        let g = generators::path(4);
        let net = Network::new(&g, IdAssignment::Sequential);
        let out = ParallelExecutor::auto()
            .execute(&net, &FloodMax { radius: 0 }, 5)
            .unwrap();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.messages, 0);
        assert_eq!(out.outputs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn round_limit_error_matches_serial() {
        let g = generators::path(3);
        let net = Network::new(&g, IdAssignment::Sequential);
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 50 }, 5)
            .unwrap_err();
        let engine = ParallelExecutor::with_threads(2)
            .execute(&net, &FloodMax { radius: 50 }, 5)
            .unwrap_err();
        assert_eq!(serial, engine);
    }

    #[test]
    fn empty_graph_executes() {
        let g = deco_graph::Graph::empty(3);
        let net = Network::new(&g, IdAssignment::Sequential);
        let out = ParallelExecutor::auto()
            .execute(&net, &FloodMax { radius: 2 }, 5)
            .unwrap();
        // Radius > 0 on isolated nodes: rounds pass without messages.
        assert_eq!(out.messages, 0);
        assert_eq!(out.outputs, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_rejected() {
        let _ = ParallelExecutor::with_threads(0);
    }

    #[test]
    fn branch_execution_matches_serial_default() {
        let weights: Vec<usize> = (0..37).map(|i| (i * 13) % 7 + 1).collect();
        let job = |i: usize| (i, (i as u64) * (i as u64) % 101);
        let serial = SerialExecutor.execute_branches(&weights, job);
        for threads in [1, 2, 3, 8, 64] {
            let par = ParallelExecutor::with_threads(threads).execute_branches(&weights, job);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn branch_execution_recurses_through_nested_scopes() {
        // Each outer branch fans out again on the same executor; results
        // must still come back in index order at both levels.
        let exec = ParallelExecutor::with_threads(3);
        let outer = exec.execute_branches(&[1, 1, 1, 1], |i| {
            let inner = exec.execute_branches(&[1, 1, 1], |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(outer, vec![3, 33, 63, 93]);
    }

    #[test]
    fn branch_execution_handles_empty_and_singleton() {
        let exec = ParallelExecutor::with_threads(4);
        let empty: Vec<u32> = exec.execute_branches(&[], |_| unreachable!());
        assert!(empty.is_empty());
        assert_eq!(exec.execute_branches(&[5], |i| i + 1), vec![1]);
    }

    #[test]
    fn from_env_defaults_to_auto() {
        // The test environment does not set the variables, so from_env()
        // must fall back to auto barrier mode. (Value-driven behavior is
        // covered by the CI matrix, which exports DECO_ENGINE_THREADS and
        // DECO_ENGINE_ASYNC across its cells; malformed-value behavior is
        // covered by the pure parsers in crate::config.)
        if std::env::var("DECO_ENGINE_THREADS").is_err()
            && std::env::var("DECO_ENGINE_ASYNC").is_err()
        {
            let exec = ParallelExecutor::from_env().expect("clean environment parses");
            assert_eq!(exec, ParallelExecutor::auto());
            assert_eq!(exec.mode(), EngineMode::Barrier);
        }
    }

    #[test]
    fn async_mode_dispatches_to_the_barrier_free_engine() {
        let g = generators::cycle(30);
        let net = Network::new(&g, IdAssignment::Shuffled(8));
        let barrier = ParallelExecutor::with_threads(2)
            .execute(&net, &FloodMax { radius: 5 }, 50)
            .unwrap();
        let asynch = ParallelExecutor::with_threads(2)
            .with_mode(EngineMode::Async)
            .execute(&net, &FloodMax { radius: 5 }, 50)
            .unwrap();
        assert_identical(&barrier, &asynch);
        assert_eq!(
            ParallelExecutor::auto().with_mode(EngineMode::Async).mode(),
            EngineMode::Async
        );
    }

    #[test]
    fn mode_knob_parses_like_the_thread_knob() {
        // The parsers are pure (std::env is process-global, so the test
        // drives them directly rather than mutating the environment under
        // concurrently running tests). Whitespace and the two canonical
        // values are accepted; anything else is a structured error naming
        // the variable — it must never silently un-pin the CI matrix.
        use crate::config::parse_mode;
        assert_eq!(parse_mode("").unwrap(), EngineMode::Barrier);
        assert_eq!(parse_mode("0").unwrap(), EngineMode::Barrier);
        assert_eq!(parse_mode(" 0 ").unwrap(), EngineMode::Barrier);
        assert_eq!(parse_mode("1").unwrap(), EngineMode::Async);
        assert_eq!(parse_mode("1\n").unwrap(), EngineMode::Async);
        let err = parse_mode("yes").unwrap_err();
        assert!(err.to_string().contains("must be 0 or 1"));
    }
}
