//! Deterministic data-parallel helpers over contiguous node ranges.
//!
//! The engine's parallelism is intentionally simple: nodes are split into
//! contiguous ranges balanced by degree sum, and each phase (send, receive)
//! runs one scoped thread per range with mutable access only to that
//! range's disjoint slices. Because the partition is a pure function of the
//! graph and thread count, and because the phases are separated by the
//! scope join (a full barrier), the execution is deterministic and
//! observationally identical to the serial loop for *any* thread count —
//! parallelism never changes outputs, round counts, or message counts,
//! only wall-clock time.
//!
//! Implemented on `std::thread::scope` rather than `rayon`: the build
//! environment has no registry access, and scoped threads cover everything
//! a barrier-synchronized round engine needs. Should `rayon` become
//! available, only this module would change.
//!
//! ```
//! use deco_engine::par::split_by_weight;
//!
//! // Four nodes with skewed degrees, two workers: the heavy head is
//! // isolated and the tail is spread over the remaining parts.
//! let ranges = split_by_weight(&[100, 1, 1, 1], 2);
//! assert_eq!(ranges, vec![0..1, 1..4]);
//! // The same inputs always produce the same partition — that is what
//! // makes thread count observationally invisible.
//! assert_eq!(ranges, split_by_weight(&[100, 1, 1, 1], 2));
//! ```

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::{Condvar, Mutex};

/// Splits `0..weights.len()` into at most `parts` contiguous ranges whose
/// weight sums are approximately balanced. The per-range target is
/// recomputed from the *remaining* weight each time a range closes: a heavy
/// head that blows far past the initial `ceil(total/parts)` therefore does
/// not starve the tail — the leftover items are still spread evenly over
/// the leftover parts. Empty ranges are never produced; fewer than `parts`
/// ranges are returned when items run out.
///
/// Deterministic: depends only on `weights` and `parts`.
pub fn split_by_weight(weights: &[usize], parts: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    let parts = parts.max(1);
    if n == 0 {
        return Vec::new();
    }
    if parts == 1 {
        return std::iter::once(0..n).collect();
    }
    // +n: count each item once so zero-weight nodes still spread out.
    let mut remaining: usize = weights.iter().sum::<usize>() + n;
    let mut target = remaining.div_ceil(parts);
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        acc += w + 1;
        let remaining_parts = parts - ranges.len();
        let is_last_part = remaining_parts == 1;
        if !is_last_part && acc >= target {
            ranges.push(start..i + 1);
            start = i + 1;
            remaining -= acc.min(remaining);
            acc = 0;
            target = remaining.div_ceil(remaining_parts - 1);
        }
    }
    if start < n {
        ranges.push(start..n);
    }
    ranges
}

/// Splits `slice` into consecutive chunks sized by `ranges` (which must
/// tile `0..slice.len()` in order) and returns them as independent `&mut`
/// slices, enabling one thread per chunk.
///
/// # Panics
///
/// Panics if the ranges are not consecutive starting at 0.
pub fn split_mut_by_ranges<'a, T>(
    mut slice: &'a mut [T],
    ranges: &[Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut consumed = 0usize;
    for r in ranges {
        assert_eq!(
            r.start, consumed,
            "ranges must tile the slice consecutively"
        );
        let (head, tail) = slice.split_at_mut(r.end - r.start);
        out.push(head);
        slice = tail;
        consumed = r.end;
    }
    out
}

/// A work-stealing ready queue over the engine's degree-balanced worker
/// partition, used by the barrier-free executor's scheduler.
///
/// Every node has a *home worker* — the owner of its [`split_by_weight`]
/// range, so the steady-state assignment inherits the same degree balance
/// the phase-parallel engine uses. [`WorkQueue::push`] enqueues a node at
/// its home worker; [`WorkQueue::pop`] serves a worker from its own deque
/// first (FIFO, keeping frontier waves roughly in node order) and *steals
/// from the back* of the busiest sibling when its own deque runs dry.
/// Workers with nothing to pop or steal sleep on a condvar until new work
/// arrives or the queue is closed.
///
/// The deques live behind one mutex: on the hardware this project targets
/// today (few cores; the dev container has one) scheduler contention is
/// noise next to protocol work, and a single lock keeps the sleep/wake
/// protocol trivially correct. Per-worker lock-free deques are the upgrade
/// path if core counts grow — the API already speaks in worker ids, so
/// only the internals would change. Correctness never depends on *which*
/// worker runs a node: the async engine's outputs are a pure function of
/// the dataflow, not the schedule.
#[derive(Debug)]
pub struct WorkQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    /// `home[v]` = index of the worker whose range owns node `v`.
    home: Vec<usize>,
}

#[derive(Debug)]
struct QueueState {
    deques: Vec<VecDeque<usize>>,
    closed: bool,
}

impl WorkQueue {
    /// A queue for the workers owning `ranges` (a [`split_by_weight`]
    /// tiling of `0..n`). Panics if the ranges do not tile `0..n`.
    pub fn new(ranges: &[Range<usize>], n: usize) -> WorkQueue {
        let mut home = vec![0usize; n];
        let mut covered = 0usize;
        for (w, r) in ranges.iter().enumerate() {
            assert_eq!(r.start, covered, "ranges must tile 0..n consecutively");
            for h in &mut home[r.clone()] {
                *h = w;
            }
            covered = r.end;
        }
        assert_eq!(covered, n, "ranges must cover 0..n");
        WorkQueue {
            state: Mutex::new(QueueState {
                deques: vec![VecDeque::new(); ranges.len().max(1)],
                closed: false,
            }),
            available: Condvar::new(),
            home,
        }
    }

    /// Enqueues node `v` at its home worker and wakes one sleeper. Pushing
    /// after [`WorkQueue::close`] is a no-op (late notifications racing
    /// shutdown are harmless).
    pub fn push(&self, v: usize) {
        let mut s = self.state.lock().expect("work queue poisoned");
        if s.closed {
            return;
        }
        let w = self.home[v];
        s.deques[w].push_back(v);
        drop(s);
        self.available.notify_one();
    }

    /// Dequeues work for `worker`: its own deque front first, else steals
    /// from the back of the fullest sibling, else sleeps. Returns `None`
    /// once the queue is closed and empty-handed.
    pub fn pop(&self, worker: usize) -> Option<usize> {
        let mut s = self.state.lock().expect("work queue poisoned");
        loop {
            if let Some(v) = s.deques[worker].pop_front() {
                return Some(v);
            }
            let victim = (0..s.deques.len())
                .filter(|&w| w != worker)
                .max_by_key(|&w| s.deques[w].len())
                .filter(|&w| !s.deques[w].is_empty());
            if let Some(w) = victim {
                return s.deques[w].pop_back();
            }
            if s.closed {
                return None;
            }
            s = self
                .available
                .wait(s)
                .expect("work queue poisoned while waiting");
        }
    }

    /// Closes the queue and wakes every sleeper; subsequent pops drain
    /// nothing and return `None`. Called when the last node finishes — or
    /// on a worker panic, so sleeping siblings cannot hang the scope join.
    pub fn close(&self) {
        self.state.lock().expect("work queue poisoned").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_tiles_the_index_space() {
        for (n, parts) in [(0usize, 4usize), (1, 4), (5, 2), (100, 7), (8, 16), (64, 1)] {
            let weights = vec![3usize; n];
            let ranges = split_by_weight(&weights, parts);
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.end > r.start, "no empty ranges");
                next = r.end;
            }
            assert_eq!(next, n, "ranges must cover 0..n");
            assert!(ranges.len() <= parts.max(1));
        }
    }

    #[test]
    fn split_balances_skewed_weights() {
        // One heavy node at the front must not drag everything into part 0.
        let mut weights = vec![1usize; 99];
        weights.insert(0, 1000);
        let ranges = split_by_weight(&weights, 4);
        assert!(ranges.len() >= 2, "skewed weights still split: {ranges:?}");
        assert_eq!(ranges[0], 0..1, "heavy head isolated");
    }

    #[test]
    fn split_rebalances_tail_after_heavy_head() {
        // Regression: with a fixed target computed once from the total, a
        // heavy head consumed most of the budget in range 0 and the entire
        // tail collapsed into one final range holding far more than
        // total/parts. The target must re-adapt to the remaining weight.
        let mut weights = vec![1usize; 99];
        weights.insert(0, 10_000);
        let ranges = split_by_weight(&weights, 4);
        assert_eq!(ranges.len(), 4, "tail must still split: {ranges:?}");
        assert_eq!(ranges[0], 0..1, "heavy head isolated");
        for r in &ranges[1..] {
            let size = r.end - r.start;
            assert!(
                (30..=36).contains(&size),
                "tail ranges must share the 99 unit items evenly: {ranges:?}"
            );
        }
    }

    #[test]
    fn split_handles_degenerate_inputs() {
        // Empty weight slice: no ranges (and no panic) — the partitioner
        // and the sharded executor both lean on this for empty graphs.
        assert!(split_by_weight(&[], 1).is_empty());
        assert!(split_by_weight(&[], 8).is_empty());

        // A single item, however heavy, yields exactly one range no matter
        // how many parts were requested.
        assert_eq!(split_by_weight(&[10_000], 6), vec![0..1]);

        // More parts than items: one range per item at most, never empty.
        let ranges = split_by_weight(&[2, 2, 2], 16);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3]);

        // All-zero weights still spread by item count (the +1 per item).
        let ranges = split_by_weight(&[0; 10], 5);
        assert_eq!(ranges.len(), 5);
        assert!(ranges.iter().all(|r| r.len() == 2));

        // Zero parts degrades to one.
        assert_eq!(split_by_weight(&[1, 1], 0), vec![0..2]);
    }

    #[test]
    fn split_is_deterministic() {
        let weights: Vec<usize> = (0..500).map(|i| (i * 37) % 23).collect();
        assert_eq!(split_by_weight(&weights, 8), split_by_weight(&weights, 8));
    }

    #[test]
    fn split_mut_hands_out_disjoint_chunks() {
        let mut data: Vec<u32> = (0..10).collect();
        let ranges = vec![0..3, 3..7, 7..10];
        let chunks = split_mut_by_ranges(&mut data, &ranges);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], &[0, 1, 2]);
        assert_eq!(chunks[2], &[7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "consecutively")]
    fn split_mut_rejects_gaps() {
        let mut data = [0u8; 5];
        let _ = split_mut_by_ranges(&mut data, &[0..2, 3..5]);
    }

    #[test]
    fn work_queue_serves_home_worker_first() {
        let q = WorkQueue::new(&[0..3, 3..6], 6);
        q.push(4);
        q.push(0);
        q.push(1);
        // Worker 0 drains its own deque in FIFO order before stealing.
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.pop(0), Some(1));
        // Own deque empty: steals worker 1's node.
        assert_eq!(q.pop(0), Some(4));
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // one worker range, not a vec-of-indices
    fn work_queue_close_releases_sleepers() {
        let q = WorkQueue::new(&[0..4], 4);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| q.pop(0));
            // Give the waiter a moment to block, then close.
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.close();
            assert_eq!(waiter.join().unwrap(), None);
        });
        // Pushes after close are dropped; pops keep returning None.
        q.push(2);
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn work_queue_hands_work_across_threads() {
        let q = WorkQueue::new(&[0..2, 2..4], 4);
        let got = std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut seen = Vec::new();
                while let Some(v) = q.pop(1) {
                    seen.push(v);
                }
                seen
            });
            for v in 0..4 {
                q.push(v);
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.close();
            consumer.join().unwrap()
        });
        // Worker 1 owns {2,3} and may steal {0,1}; order aside, nothing is
        // lost or duplicated.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), got.len(), "no duplicates");
    }
}
