//! Deterministic data-parallel helpers over contiguous node ranges.
//!
//! The engine's parallelism is intentionally simple: nodes are split into
//! contiguous ranges balanced by degree sum, and each phase (send, receive)
//! runs one scoped thread per range with mutable access only to that
//! range's disjoint slices. Because the partition is a pure function of the
//! graph and thread count, and because the phases are separated by the
//! scope join (a full barrier), the execution is deterministic and
//! observationally identical to the serial loop for *any* thread count —
//! parallelism never changes outputs, round counts, or message counts,
//! only wall-clock time.
//!
//! Implemented on `std::thread::scope` rather than `rayon`: the build
//! environment has no registry access, and scoped threads cover everything
//! a barrier-synchronized round engine needs. Should `rayon` become
//! available, only this module would change.

use std::ops::Range;

/// Splits `0..weights.len()` into at most `parts` contiguous ranges whose
/// weight sums are approximately balanced. The per-range target is
/// recomputed from the *remaining* weight each time a range closes: a heavy
/// head that blows far past the initial `ceil(total/parts)` therefore does
/// not starve the tail — the leftover items are still spread evenly over
/// the leftover parts. Empty ranges are never produced; fewer than `parts`
/// ranges are returned when items run out.
///
/// Deterministic: depends only on `weights` and `parts`.
pub fn split_by_weight(weights: &[usize], parts: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    let parts = parts.max(1);
    if n == 0 {
        return Vec::new();
    }
    if parts == 1 {
        return std::iter::once(0..n).collect();
    }
    // +n: count each item once so zero-weight nodes still spread out.
    let mut remaining: usize = weights.iter().sum::<usize>() + n;
    let mut target = remaining.div_ceil(parts);
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        acc += w + 1;
        let remaining_parts = parts - ranges.len();
        let is_last_part = remaining_parts == 1;
        if !is_last_part && acc >= target {
            ranges.push(start..i + 1);
            start = i + 1;
            remaining -= acc.min(remaining);
            acc = 0;
            target = remaining.div_ceil(remaining_parts - 1);
        }
    }
    if start < n {
        ranges.push(start..n);
    }
    ranges
}

/// Splits `slice` into consecutive chunks sized by `ranges` (which must
/// tile `0..slice.len()` in order) and returns them as independent `&mut`
/// slices, enabling one thread per chunk.
///
/// # Panics
///
/// Panics if the ranges are not consecutive starting at 0.
pub fn split_mut_by_ranges<'a, T>(
    mut slice: &'a mut [T],
    ranges: &[Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut consumed = 0usize;
    for r in ranges {
        assert_eq!(
            r.start, consumed,
            "ranges must tile the slice consecutively"
        );
        let (head, tail) = slice.split_at_mut(r.end - r.start);
        out.push(head);
        slice = tail;
        consumed = r.end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_tiles_the_index_space() {
        for (n, parts) in [(0usize, 4usize), (1, 4), (5, 2), (100, 7), (8, 16), (64, 1)] {
            let weights = vec![3usize; n];
            let ranges = split_by_weight(&weights, parts);
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.end > r.start, "no empty ranges");
                next = r.end;
            }
            assert_eq!(next, n, "ranges must cover 0..n");
            assert!(ranges.len() <= parts.max(1));
        }
    }

    #[test]
    fn split_balances_skewed_weights() {
        // One heavy node at the front must not drag everything into part 0.
        let mut weights = vec![1usize; 99];
        weights.insert(0, 1000);
        let ranges = split_by_weight(&weights, 4);
        assert!(ranges.len() >= 2, "skewed weights still split: {ranges:?}");
        assert_eq!(ranges[0], 0..1, "heavy head isolated");
    }

    #[test]
    fn split_rebalances_tail_after_heavy_head() {
        // Regression: with a fixed target computed once from the total, a
        // heavy head consumed most of the budget in range 0 and the entire
        // tail collapsed into one final range holding far more than
        // total/parts. The target must re-adapt to the remaining weight.
        let mut weights = vec![1usize; 99];
        weights.insert(0, 10_000);
        let ranges = split_by_weight(&weights, 4);
        assert_eq!(ranges.len(), 4, "tail must still split: {ranges:?}");
        assert_eq!(ranges[0], 0..1, "heavy head isolated");
        for r in &ranges[1..] {
            let size = r.end - r.start;
            assert!(
                (30..=36).contains(&size),
                "tail ranges must share the 99 unit items evenly: {ranges:?}"
            );
        }
    }

    #[test]
    fn split_is_deterministic() {
        let weights: Vec<usize> = (0..500).map(|i| (i * 37) % 23).collect();
        assert_eq!(split_by_weight(&weights, 8), split_by_weight(&weights, 8));
    }

    #[test]
    fn split_mut_hands_out_disjoint_chunks() {
        let mut data: Vec<u32> = (0..10).collect();
        let ranges = vec![0..3, 3..7, 7..10];
        let chunks = split_mut_by_ranges(&mut data, &ranges);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], &[0, 1, 2]);
        assert_eq!(chunks[2], &[7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "consecutively")]
    fn split_mut_rejects_gaps() {
        let mut data = [0u8; 5];
        let _ = split_mut_by_ranges(&mut data, &[0..2, 3..5]);
    }
}
