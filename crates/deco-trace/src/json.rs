//! A minimal parser for flat JSON objects (one nesting level, scalar
//! values), shared by [`crate::event::TraceEvent::from_jsonl`] and the
//! `bench-trend` tool. The workspace is std-only, and every line format we
//! consume — trace JSONL and the criterion shim's bench JSON — is a flat
//! object of strings/numbers/bools/null, so a full JSON tree is
//! deliberately out of scope.

/// A scalar JSON value (the only values flat line formats use).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string (escapes decoded).
    String(String),
    /// A JSON number.
    Number(f64),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

/// Parses one flat JSON object into its key/value pairs, in source order.
///
/// # Errors
///
/// A human-readable description of the first syntax problem: input that is
/// not an object, nested arrays/objects, bad escapes, malformed numbers,
/// duplicate keys, or trailing garbage.
pub fn parse_object(input: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if !p.eat(b'{') {
        return Err("expected a JSON object".into());
    }
    let mut fields: Vec<(String, JsonValue)> = Vec::new();
    p.skip_ws();
    if !p.eat(b'}') {
        loop {
            p.skip_ws();
            let key = p.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            p.skip_ws();
            if !p.eat(b':') {
                return Err(format!("expected ':' after key {key:?}"));
            }
            p.skip_ws();
            let value = p.value()?;
            fields.push((key, value));
            p.skip_ws();
            if p.eat(b',') {
                continue;
            }
            if p.eat(b'}') {
                break;
            }
            return Err("expected ',' or '}' in object".into());
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after object".into());
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'{') | Some(b'[') => Err("nested objects/arrays are not supported".into()),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal (expected {word})"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if !self.eat(b'"') {
            return Err("expected a string".into());
        }
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape sequence")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        self.eat(b'-');
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        raw.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {raw:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects_with_all_scalar_types() {
        let fields = parse_object(
            "{\"name\":\"solve/cycle\",\"mean_ns\":1234.5,\"ok\":true,\"skip\":false,\"x\":null}",
        )
        .unwrap();
        assert_eq!(fields.len(), 5);
        assert_eq!(fields[0].1, JsonValue::String("solve/cycle".into()));
        assert_eq!(fields[1].1, JsonValue::Number(1234.5));
        assert_eq!(fields[2].1, JsonValue::Bool(true));
        assert_eq!(fields[3].1, JsonValue::Bool(false));
        assert_eq!(fields[4].1, JsonValue::Null);
    }

    #[test]
    fn decodes_escapes() {
        let fields = parse_object("{\"k\":\"a\\n\\t\\\"b\\\\\\u0041\"}").unwrap();
        assert_eq!(fields[0].1, JsonValue::String("a\n\t\"b\\A".into()));
    }

    #[test]
    fn handles_empty_object_and_whitespace() {
        assert!(parse_object("  { }  ").unwrap().is_empty());
        let fields = parse_object("{ \"a\" : 1 , \"b\" : 2 }").unwrap();
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        for (input, needle) in [
            ("", "expected a JSON object"),
            ("[1]", "expected a JSON object"),
            ("{\"a\":1", "expected ',' or '}'"),
            ("{\"a\" 1}", "expected ':'"),
            ("{\"a\":{}}", "nested"),
            ("{\"a\":[1]}", "nested"),
            ("{\"a\":1,\"a\":2}", "duplicate key"),
            ("{\"a\":1} x", "trailing"),
            ("{\"a\":tru}", "invalid literal"),
            ("{\"a\":--1}", "invalid number"),
            ("{\"a\":\"unterminated}", "unterminated string"),
            ("{\"a\":\"bad \\q\"}", "invalid escape"),
        ] {
            let err = parse_object(input).unwrap_err();
            assert!(err.contains(needle), "input {input:?}: {err}");
        }
    }
}
