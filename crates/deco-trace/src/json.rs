//! A minimal codec for flat JSON objects (one nesting level, scalar
//! values), shared by [`crate::event::TraceEvent::from_jsonl`], the
//! `bench-trend` tool, the report codec in `deco-core::jsonl`, and the
//! `deco-serve` wire protocol. The workspace is std-only, and every line
//! format we produce or consume — trace JSONL, the criterion shim's bench
//! JSON, report lines, serve frames — is a flat object of
//! strings/numbers/bools/null, so a full JSON tree is deliberately out of
//! scope.
//!
//! Three pieces: [`parse_object`] (text → key/value pairs),
//! [`ObjectWriter`] (the encode-side twin — builds one canonical line,
//! escaping handled), and [`Fields`] (typed, error-reporting access to a
//! parsed object for codecs that parse back into structs).

/// A scalar JSON value (the only values flat line formats use).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string (escapes decoded).
    String(String),
    /// A JSON number.
    Number(f64),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

/// Parses one flat JSON object into its key/value pairs, in source order.
///
/// # Errors
///
/// A human-readable description of the first syntax problem: input that is
/// not an object, nested arrays/objects, bad escapes, malformed numbers,
/// duplicate keys, or trailing garbage.
pub fn parse_object(input: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if !p.eat(b'{') {
        return Err("expected a JSON object".into());
    }
    let mut fields: Vec<(String, JsonValue)> = Vec::new();
    p.skip_ws();
    if !p.eat(b'}') {
        loop {
            p.skip_ws();
            let key = p.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            p.skip_ws();
            if !p.eat(b':') {
                return Err(format!("expected ':' after key {key:?}"));
            }
            p.skip_ws();
            let value = p.value()?;
            fields.push((key, value));
            p.skip_ws();
            if p.eat(b',') {
                continue;
            }
            if p.eat(b'}') {
                break;
            }
            return Err("expected ',' or '}' in object".into());
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after object".into());
    }
    Ok(fields)
}

/// Appends `s` to `out` with JSON string escaping (the surrounding quotes
/// are the caller's). The escapes are exactly the ones [`parse_object`]
/// decodes, so writer and parser round-trip every Rust string.
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Builds one flat line-JSON object — the encode twin of [`parse_object`].
/// Keys are written in call order; the output is canonical (no whitespace),
/// so equal field sequences encode to byte-equal lines.
///
/// ```
/// use deco_trace::json::{parse_object, JsonValue, ObjectWriter};
///
/// let mut w = ObjectWriter::new();
/// w.string("kind", "demo").u64("n", 7).bool("ok", true);
/// let line = w.finish();
/// assert_eq!(line, "{\"kind\":\"demo\",\"n\":7,\"ok\":true}");
/// assert_eq!(parse_object(&line).unwrap()[1].1, JsonValue::Number(7.0));
/// ```
#[derive(Debug, Clone)]
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> ObjectWriter {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) -> &mut String {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// Writes a string field (escaped).
    pub fn string(&mut self, key: &str, value: &str) -> &mut ObjectWriter {
        let buf = self.key(key);
        buf.push('"');
        escape_into(buf, value);
        buf.push('"');
        self
    }

    /// Writes an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut ObjectWriter {
        use std::fmt::Write as _;
        let _ = write!(self.key(key), "{value}");
        self
    }

    /// Writes a float field. Rust's shortest-round-trip formatting means
    /// the value parses back bit-identical; non-finite values (which JSON
    /// cannot represent) are written as `null`.
    pub fn f64(&mut self, key: &str, value: f64) -> &mut ObjectWriter {
        use std::fmt::Write as _;
        if value.is_finite() {
            let _ = write!(self.key(key), "{value}");
        } else {
            self.key(key).push_str("null");
        }
        self
    }

    /// Writes a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut ObjectWriter {
        let word = if value { "true" } else { "false" };
        self.key(key).push_str(word);
        self
    }

    /// Closes the object and returns the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for ObjectWriter {
    fn default() -> ObjectWriter {
        ObjectWriter::new()
    }
}

/// Typed, error-reporting access to a parsed flat object — the shape every
/// line codec wants: parse once, then pull named fields with "missing
/// field" / "wrong type" errors that name the field.
#[derive(Debug, Clone)]
pub struct Fields(Vec<(String, JsonValue)>);

impl Fields {
    /// Parses `line` as a flat JSON object.
    ///
    /// # Errors
    ///
    /// Propagates the [`parse_object`] syntax error.
    pub fn parse(line: &str) -> Result<Fields, String> {
        parse_object(line).map(Fields)
    }

    /// The raw field list, in source order.
    pub fn as_slice(&self) -> &[(String, JsonValue)] {
        &self.0
    }

    /// The value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A required string field.
    ///
    /// # Errors
    ///
    /// Names the field when it is missing or not a string.
    pub fn str(&self, key: &str) -> Result<&str, String> {
        match self.get(key) {
            Some(JsonValue::String(s)) => Ok(s),
            Some(_) => Err(format!("field {key:?} is not a string")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    /// An optional string field (`None` when absent or `null`).
    ///
    /// # Errors
    ///
    /// Names the field when it is present but not a string.
    pub fn opt_str(&self, key: &str) -> Result<Option<&str>, String> {
        match self.get(key) {
            Some(JsonValue::String(s)) => Ok(Some(s)),
            Some(JsonValue::Null) | None => Ok(None),
            Some(_) => Err(format!("field {key:?} is not a string")),
        }
    }

    /// A required numeric field as `f64`.
    ///
    /// # Errors
    ///
    /// Names the field when it is missing or not a number.
    pub fn f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(JsonValue::Number(n)) => Ok(*n),
            Some(_) => Err(format!("field {key:?} is not a number")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    /// A required non-negative integer field. Rejects fractional and
    /// out-of-range numbers instead of truncating them.
    ///
    /// # Errors
    ///
    /// Names the field when it is missing, not a number, or not a `u64`.
    pub fn u64(&self, key: &str) -> Result<u64, String> {
        let n = self.f64(key)?;
        if n >= 0.0 && n <= u64::MAX as f64 && n.fract() == 0.0 {
            Ok(n as u64)
        } else {
            Err(format!("field {key:?} is not an unsigned integer"))
        }
    }

    /// An optional non-negative integer field (`None` when absent).
    ///
    /// # Errors
    ///
    /// Names the field when it is present but not a `u64`.
    pub fn opt_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(_) => self.u64(key).map(Some),
        }
    }

    /// A required boolean field.
    ///
    /// # Errors
    ///
    /// Names the field when it is missing or not a boolean.
    pub fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            Some(JsonValue::Bool(b)) => Ok(*b),
            Some(_) => Err(format!("field {key:?} is not a boolean")),
            None => Err(format!("missing field {key:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'{') | Some(b'[') => Err("nested objects/arrays are not supported".into()),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal (expected {word})"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if !self.eat(b'"') {
            return Err("expected a string".into());
        }
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape sequence")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        self.eat(b'-');
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        raw.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {raw:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects_with_all_scalar_types() {
        let fields = parse_object(
            "{\"name\":\"solve/cycle\",\"mean_ns\":1234.5,\"ok\":true,\"skip\":false,\"x\":null}",
        )
        .unwrap();
        assert_eq!(fields.len(), 5);
        assert_eq!(fields[0].1, JsonValue::String("solve/cycle".into()));
        assert_eq!(fields[1].1, JsonValue::Number(1234.5));
        assert_eq!(fields[2].1, JsonValue::Bool(true));
        assert_eq!(fields[3].1, JsonValue::Bool(false));
        assert_eq!(fields[4].1, JsonValue::Null);
    }

    #[test]
    fn decodes_escapes() {
        let fields = parse_object("{\"k\":\"a\\n\\t\\\"b\\\\\\u0041\"}").unwrap();
        assert_eq!(fields[0].1, JsonValue::String("a\n\t\"b\\A".into()));
    }

    #[test]
    fn handles_empty_object_and_whitespace() {
        assert!(parse_object("  { }  ").unwrap().is_empty());
        let fields = parse_object("{ \"a\" : 1 , \"b\" : 2 }").unwrap();
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn writer_round_trips_through_the_parser() {
        let mut w = ObjectWriter::new();
        w.string("s", "a\n\"b\\c\u{0001}")
            .u64("n", u64::MAX)
            .f64("f", -12.25)
            .f64("inf", f64::INFINITY)
            .bool("yes", true)
            .bool("no", false);
        let line = w.finish();
        let fields = Fields::parse(&line).unwrap();
        assert_eq!(fields.str("s").unwrap(), "a\n\"b\\c\u{0001}");
        // u64::MAX exceeds f64 precision; the codec's own integers stay
        // well below 2^53, where round-tripping is exact.
        assert_eq!(fields.f64("f").unwrap(), -12.25);
        assert_eq!(fields.get("inf"), Some(&JsonValue::Null));
        assert!(fields.bool("yes").unwrap());
        assert!(!fields.bool("no").unwrap());
        let mut w = ObjectWriter::new();
        w.u64("n", 1u64 << 53);
        let line = w.finish();
        assert_eq!(Fields::parse(&line).unwrap().u64("n").unwrap(), 1u64 << 53);
    }

    #[test]
    fn empty_writer_is_the_empty_object() {
        assert_eq!(ObjectWriter::new().finish(), "{}");
    }

    #[test]
    fn fields_report_missing_and_mistyped_keys_by_name() {
        let fields = Fields::parse("{\"n\":1.5,\"s\":\"x\",\"b\":true}").unwrap();
        assert!(fields.str("gone").unwrap_err().contains("gone"));
        assert!(fields.u64("n").unwrap_err().contains("unsigned"));
        assert!(fields.f64("s").unwrap_err().contains('s'));
        assert!(fields.bool("n").unwrap_err().contains("boolean"));
        assert_eq!(fields.opt_str("gone").unwrap(), None);
        assert_eq!(fields.opt_str("s").unwrap(), Some("x"));
        assert!(fields.opt_str("n").is_err());
        assert_eq!(fields.opt_u64("gone").unwrap(), None);
        assert!(fields.opt_u64("n").is_err());
        assert_eq!(fields.f64("n").unwrap(), 1.5);
    }

    #[test]
    fn rejects_malformed_input() {
        for (input, needle) in [
            ("", "expected a JSON object"),
            ("[1]", "expected a JSON object"),
            ("{\"a\":1", "expected ',' or '}'"),
            ("{\"a\" 1}", "expected ':'"),
            ("{\"a\":{}}", "nested"),
            ("{\"a\":[1]}", "nested"),
            ("{\"a\":1,\"a\":2}", "duplicate key"),
            ("{\"a\":1} x", "trailing"),
            ("{\"a\":tru}", "invalid literal"),
            ("{\"a\":--1}", "invalid number"),
            ("{\"a\":\"unterminated}", "unterminated string"),
            ("{\"a\":\"bad \\q\"}", "invalid escape"),
        ] {
            let err = parse_object(input).unwrap_err();
            assert!(err.contains(needle), "input {input:?}: {err}");
        }
    }
}
