//! Schema validator for trace JSONL files.
//!
//! Parses every line of the given file back into the [`TraceEvent`] enum
//! and prints per-kind counts. Exit 0 when every line validates, exit 1 on
//! the first invalid line (named by line number) or an empty file, exit 2
//! on usage or I/O errors. CI's `trace-smoke` job runs this against the
//! `TRACE_<sha>.jsonl` artifact.

use deco_trace::TraceEvent;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: trace-validate <trace.jsonl>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace-validate: cannot read {path}: {err}");
            return ExitCode::from(2);
        }
    };
    let mut total = 0u64;
    let mut spans = 0u64;
    let mut counts = 0u64;
    let mut samples = 0u64;
    for (i, line) in text.lines().enumerate() {
        match TraceEvent::from_jsonl(line) {
            Ok(TraceEvent::Span { .. }) => spans += 1,
            Ok(TraceEvent::Count { .. }) => counts += 1,
            Ok(TraceEvent::Sample { .. }) | Ok(TraceEvent::SampleSummary { .. }) => samples += 1,
            Err(err) => {
                eprintln!("trace-validate: {path}:{}: {err}", i + 1);
                return ExitCode::from(1);
            }
        }
        total += 1;
    }
    if total == 0 {
        eprintln!("trace-validate: {path} is empty (no events emitted)");
        return ExitCode::from(1);
    }
    println!("{path}: {total} events valid ({spans} spans, {counts} counts, {samples} samples)");
    ExitCode::SUCCESS
}
