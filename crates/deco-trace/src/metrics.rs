//! Aggregation of raw events into a [`MetricsReport`].
//!
//! The aggregator is array-backed and indexed by enum discriminant — no
//! hashing, no allocation per event — so keeping it up to date alongside an
//! active sink stays cheap even on per-round hot paths. A report is the
//! *digested* view (totals per phase/counter, count/sum/min/max per
//! sample); the raw event stream, if wanted, comes from the ring or JSONL
//! sink.

use crate::event::{Counter, Phase, TraceEvent};

/// Wall-time total for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Which phase.
    pub phase: Phase,
    /// Number of spans recorded for it.
    pub count: u64,
    /// Total wall time across those spans, in nanoseconds.
    pub total_nanos: u64,
}

/// Running total for one counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterStat {
    /// Which counter.
    pub counter: Counter,
    /// Sum of all recorded values.
    pub value: u64,
}

/// Distribution summary for one sampled counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleStat {
    /// Which distribution.
    pub counter: Counter,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Minimum observation.
    pub min: u64,
    /// Maximum observation.
    pub max: u64,
}

impl SampleStat {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Digested metrics of one traced run: per-phase wall time, counter totals,
/// and sample distributions. Embedded in `deco-core`'s `RunReport` when
/// tracing is enabled; rendered by [`crate::summary`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsReport {
    /// Phases with at least one span, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseStat>,
    /// Counters with at least one count, in [`Counter::ALL`] order.
    pub counters: Vec<CounterStat>,
    /// Sampled counters with at least one observation, in
    /// [`Counter::ALL`] order.
    pub samples: Vec<SampleStat>,
}

impl MetricsReport {
    /// The stat for `phase`, if any span was recorded.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.phase == phase)
    }

    /// The total for `counter`, if any count was recorded.
    pub fn counter(&self, counter: Counter) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.counter == counter)
            .map(|c| c.value)
    }

    /// The distribution for `counter`, if any sample was recorded.
    pub fn sample(&self, counter: Counter) -> Option<&SampleStat> {
        self.samples.iter().find(|s| s.counter == counter)
    }

    /// True when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty() && self.counters.is_empty() && self.samples.is_empty()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SampleAcc {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Array-backed accumulator turning an event stream into a
/// [`MetricsReport`].
#[derive(Debug, Default)]
pub struct Aggregator {
    span_count: [u64; Phase::ALL.len()],
    span_nanos: [u64; Phase::ALL.len()],
    counts: [u64; Counter::ALL.len()],
    counted: [bool; Counter::ALL.len()],
    samples: [SampleAcc; Counter::ALL.len()],
}

impl Aggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Folds one event into the running totals.
    pub fn observe(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Span { phase, nanos, .. } => {
                let i = phase.index();
                self.span_count[i] += 1;
                self.span_nanos[i] = self.span_nanos[i].saturating_add(*nanos);
            }
            TraceEvent::Count { counter, value } => {
                let i = counter.index();
                self.counts[i] = self.counts[i].saturating_add(*value);
                self.counted[i] = true;
            }
            TraceEvent::Sample { counter, value } => {
                self.merge_samples(*counter, 1, *value, *value, *value);
            }
            TraceEvent::SampleSummary {
                counter,
                count,
                sum,
                min,
                max,
            } => {
                if *count > 0 {
                    self.merge_samples(*counter, *count, *sum, *min, *max);
                }
            }
        }
    }

    fn merge_samples(&mut self, counter: Counter, count: u64, sum: u64, min: u64, max: u64) {
        let acc = &mut self.samples[counter.index()];
        if acc.count == 0 {
            *acc = SampleAcc {
                count,
                sum,
                min,
                max,
            };
        } else {
            acc.count += count;
            acc.sum = acc.sum.saturating_add(sum);
            acc.min = acc.min.min(min);
            acc.max = acc.max.max(max);
        }
    }

    /// Snapshots the totals into a report (only touched phases/counters
    /// appear).
    pub fn report(&self) -> MetricsReport {
        let phases = Phase::ALL
            .into_iter()
            .filter(|p| self.span_count[p.index()] > 0)
            .map(|p| PhaseStat {
                phase: p,
                count: self.span_count[p.index()],
                total_nanos: self.span_nanos[p.index()],
            })
            .collect();
        let counters = Counter::ALL
            .into_iter()
            .filter(|c| self.counted[c.index()])
            .map(|c| CounterStat {
                counter: c,
                value: self.counts[c.index()],
            })
            .collect();
        let samples = Counter::ALL
            .into_iter()
            .filter(|c| self.samples[c.index()].count > 0)
            .map(|c| {
                let acc = self.samples[c.index()];
                SampleStat {
                    counter: c,
                    count: acc.count,
                    sum: acc.sum,
                    min: acc.min,
                    max: acc.max,
                }
            })
            .collect();
        MetricsReport {
            phases,
            counters,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_aggregator_yields_empty_report() {
        let report = Aggregator::new().report();
        assert!(report.is_empty());
        assert_eq!(report.counter(Counter::Messages), None);
        assert!(report.phase(Phase::Round).is_none());
        assert!(report.sample(Counter::RoundsInFlight).is_none());
    }

    #[test]
    fn spans_counts_and_samples_aggregate() {
        let mut agg = Aggregator::new();
        agg.observe(&TraceEvent::Span {
            phase: Phase::Round,
            round: Some(0),
            nanos: 10,
        });
        agg.observe(&TraceEvent::Span {
            phase: Phase::Round,
            round: Some(1),
            nanos: 30,
        });
        agg.observe(&TraceEvent::Count {
            counter: Counter::Messages,
            value: 5,
        });
        agg.observe(&TraceEvent::Count {
            counter: Counter::Messages,
            value: 7,
        });
        agg.observe(&TraceEvent::Count {
            counter: Counter::Rounds,
            value: 0,
        });
        agg.observe(&TraceEvent::Sample {
            counter: Counter::RoundsInFlight,
            value: 3,
        });
        agg.observe(&TraceEvent::SampleSummary {
            counter: Counter::RoundsInFlight,
            count: 2,
            sum: 9,
            min: 1,
            max: 8,
        });
        let report = agg.report();
        let round = report.phase(Phase::Round).unwrap();
        assert_eq!((round.count, round.total_nanos), (2, 40));
        assert_eq!(report.counter(Counter::Messages), Some(12));
        // A zero-valued count still registers the counter as present.
        assert_eq!(report.counter(Counter::Rounds), Some(0));
        let rif = report.sample(Counter::RoundsInFlight).unwrap();
        assert_eq!((rif.count, rif.sum, rif.min, rif.max), (3, 12, 1, 8));
        assert_eq!(rif.mean(), 4.0);
    }

    #[test]
    fn empty_sample_summary_is_ignored() {
        let mut agg = Aggregator::new();
        agg.observe(&TraceEvent::SampleSummary {
            counter: Counter::RoundsInFlight,
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        });
        assert!(agg.report().is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut agg = Aggregator::new();
        agg.observe(&TraceEvent::Count {
            counter: Counter::Messages,
            value: 1,
        });
        agg.reset();
        assert!(agg.report().is_empty());
    }
}
