//! The event taxonomy: everything a sink can receive, with a stable JSONL
//! wire form.
//!
//! Events are deliberately *closed* enums, not free-form strings: the
//! aggregator indexes by discriminant (no hashing on the hot path), the
//! JSONL schema is enumerable, and the schema-validation test can parse
//! every emitted line back into [`TraceEvent`] without a grammar. Adding an
//! instrumentation point means adding a variant here — the summary tables,
//! the JSONL round trip, and the validator all pick it up from the `ALL`
//! arrays.

use crate::json::{self, JsonValue};

/// A span-style phase of an execution: what a wall-time measurement is
/// attributed to. One engine run nests phases (a `Round` contains `Send` /
/// `Deliver` / `Receive`; a `Pipeline` contains everything), so phase
/// totals overlap by design — compare within a level, not across levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// One whole synchronous round (serial runner and barrier engine).
    Round,
    /// The send half of a round: gathering every node's outgoing messages.
    Send,
    /// The delivery half of a round (serial runner only; the engines
    /// deliver implicitly through mirror-slot reads during `Receive`).
    Deliver,
    /// The receive half of a round: processing inboxes and re-evaluating
    /// outputs.
    Receive,
    /// One whole engine execution that has no global round structure to
    /// attribute finer (the async and sharded engines).
    Execute,
    /// The cross-shard cut exchange of the framed coordinator: collecting
    /// every shard's cut-out vector and routing it to ghost ports.
    CutExchange,
    /// One Lemma 4.2 sweep of the solver (dependency-wavefront class
    /// solves).
    Sweep,
    /// One logically-parallel solver recursion branch (a per-subspace
    /// residual or a per-class slack-β solve).
    SolverBranch,
    /// One end-to-end pipeline run (initial coloring + solve).
    Pipeline,
}

impl Phase {
    /// Every phase, in canonical rendering order.
    pub const ALL: [Phase; 9] = [
        Phase::Pipeline,
        Phase::Execute,
        Phase::Round,
        Phase::Send,
        Phase::Deliver,
        Phase::Receive,
        Phase::CutExchange,
        Phase::Sweep,
        Phase::SolverBranch,
    ];

    /// Dense index for array-backed aggregation.
    pub(crate) fn index(self) -> usize {
        Phase::ALL.iter().position(|p| *p == self).expect("in ALL")
    }

    /// The stable wire name (kebab-case).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Round => "round",
            Phase::Send => "send",
            Phase::Deliver => "deliver",
            Phase::Receive => "receive",
            Phase::Execute => "execute",
            Phase::CutExchange => "cut-exchange",
            Phase::Sweep => "sweep",
            Phase::SolverBranch => "solver-branch",
            Phase::Pipeline => "pipeline",
        }
    }

    /// Parses a wire name back (the inverse of [`Phase::as_str`]).
    pub fn from_str_name(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.as_str() == s)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A named quantity: the subject of [`TraceEvent::Count`] (monotone totals,
/// summed by the aggregator) and of [`TraceEvent::Sample`] /
/// [`TraceEvent::SampleSummary`] (distributions, merged into
/// count/sum/min/max).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Counter {
    /// Messages delivered by one engine execution.
    Messages,
    /// Rounds executed by one engine execution (maximum halting round).
    Rounds,
    /// Idle node-rounds a global barrier would have burned, eliminated by
    /// the async engine (Σ over nodes of `global_rounds − halt_round`).
    BarrierWaitEliminated,
    /// Rounds-in-flight samples of the async engine (how far the globally
    /// furthest node was ahead of a receiving node, plus one).
    RoundsInFlight,
    /// Bytes crossing shard boundaries through the framed coordinator's
    /// cut exchange.
    ShardExchangeBytes,
    /// Peak resident set size of the process, snapshotted at run-scope
    /// finish (sampled, max-merged: concurrent scopes see one process).
    PeakRssBytes,
}

impl Counter {
    /// Every counter, in canonical rendering order.
    pub const ALL: [Counter; 6] = [
        Counter::Messages,
        Counter::Rounds,
        Counter::BarrierWaitEliminated,
        Counter::RoundsInFlight,
        Counter::ShardExchangeBytes,
        Counter::PeakRssBytes,
    ];

    /// Dense index for array-backed aggregation.
    pub(crate) fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|c| *c == self)
            .expect("in ALL")
    }

    /// The stable wire name (kebab-case).
    pub fn as_str(self) -> &'static str {
        match self {
            Counter::Messages => "messages",
            Counter::Rounds => "rounds",
            Counter::BarrierWaitEliminated => "barrier-wait-eliminated",
            Counter::RoundsInFlight => "rounds-in-flight",
            Counter::ShardExchangeBytes => "shard-exchange-bytes",
            Counter::PeakRssBytes => "peak-rss-bytes",
        }
    }

    /// Parses a wire name back (the inverse of [`Counter::as_str`]).
    pub fn from_str_name(s: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured trace event. The JSONL wire form is one object per line,
/// discriminated by the `"ev"` key; [`TraceEvent::to_jsonl`] and
/// [`TraceEvent::from_jsonl`] round-trip exactly (the schema test pins
/// this), so any emitted file can be parsed back without a schema file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A completed phase with its wall time; `round` attributes per-round
    /// phases of round-structured engines.
    Span {
        /// What the wall time is attributed to.
        phase: Phase,
        /// The round number for round-structured phases.
        round: Option<u64>,
        /// Wall-clock duration of the phase in nanoseconds.
        nanos: u64,
    },
    /// A monotone total; the aggregator sums values per counter.
    Count {
        /// Which quantity.
        counter: Counter,
        /// The amount to add.
        value: u64,
    },
    /// One observation of a distribution; the aggregator merges it into
    /// count/sum/min/max per counter.
    Sample {
        /// Which distribution.
        counter: Counter,
        /// The observed value.
        value: u64,
    },
    /// A pre-aggregated batch of samples (used by engines that tally
    /// observations in worker-local accumulators and publish once).
    SampleSummary {
        /// Which distribution.
        counter: Counter,
        /// Number of observations in the batch.
        count: u64,
        /// Sum of the observations.
        sum: u64,
        /// Minimum observation.
        min: u64,
        /// Maximum observation.
        max: u64,
    },
}

impl TraceEvent {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        match self {
            TraceEvent::Span {
                phase,
                round,
                nanos,
            } => match round {
                Some(r) => format!(
                    "{{\"ev\":\"span\",\"phase\":\"{}\",\"round\":{r},\"nanos\":{nanos}}}",
                    phase.as_str()
                ),
                None => format!(
                    "{{\"ev\":\"span\",\"phase\":\"{}\",\"nanos\":{nanos}}}",
                    phase.as_str()
                ),
            },
            TraceEvent::Count { counter, value } => format!(
                "{{\"ev\":\"count\",\"counter\":\"{}\",\"value\":{value}}}",
                counter.as_str()
            ),
            TraceEvent::Sample { counter, value } => format!(
                "{{\"ev\":\"sample\",\"counter\":\"{}\",\"value\":{value}}}",
                counter.as_str()
            ),
            TraceEvent::SampleSummary {
                counter,
                count,
                sum,
                min,
                max,
            } => format!(
                "{{\"ev\":\"sample-summary\",\"counter\":\"{}\",\"count\":{count},\
                 \"sum\":{sum},\"min\":{min},\"max\":{max}}}",
                counter.as_str()
            ),
        }
    }

    /// Parses one JSON line back into an event.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first schema violation: not an
    /// object, unknown `"ev"` discriminator, unknown phase/counter name,
    /// missing or mistyped field, or an unexpected extra field.
    pub fn from_jsonl(line: &str) -> Result<TraceEvent, String> {
        let fields = json::parse_object(line)?;
        let get = |key: &str| -> Result<&JsonValue, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?}"))
        };
        let get_u64 = |key: &str| -> Result<u64, String> {
            match get(key)? {
                JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
                other => Err(format!(
                    "field {key:?} must be a non-negative integer, got {other:?}"
                )),
            }
        };
        let get_str = |key: &str| -> Result<&str, String> {
            match get(key)? {
                JsonValue::String(s) => Ok(s.as_str()),
                other => Err(format!("field {key:?} must be a string, got {other:?}")),
            }
        };
        let expect_fields = |allowed: &[&str]| -> Result<(), String> {
            for (k, _) in &fields {
                if !allowed.contains(&k.as_str()) {
                    return Err(format!("unexpected field {k:?}"));
                }
            }
            Ok(())
        };
        let counter_of = |raw: &str| -> Result<Counter, String> {
            Counter::from_str_name(raw).ok_or_else(|| format!("unknown counter {raw:?}"))
        };
        match get_str("ev")? {
            "span" => {
                expect_fields(&["ev", "phase", "round", "nanos"])?;
                let raw = get_str("phase")?;
                let phase =
                    Phase::from_str_name(raw).ok_or_else(|| format!("unknown phase {raw:?}"))?;
                let round = if fields.iter().any(|(k, _)| k == "round") {
                    Some(get_u64("round")?)
                } else {
                    None
                };
                Ok(TraceEvent::Span {
                    phase,
                    round,
                    nanos: get_u64("nanos")?,
                })
            }
            "count" => {
                expect_fields(&["ev", "counter", "value"])?;
                Ok(TraceEvent::Count {
                    counter: counter_of(get_str("counter")?)?,
                    value: get_u64("value")?,
                })
            }
            "sample" => {
                expect_fields(&["ev", "counter", "value"])?;
                Ok(TraceEvent::Sample {
                    counter: counter_of(get_str("counter")?)?,
                    value: get_u64("value")?,
                })
            }
            "sample-summary" => {
                expect_fields(&["ev", "counter", "count", "sum", "min", "max"])?;
                Ok(TraceEvent::SampleSummary {
                    counter: counter_of(get_str("counter")?)?,
                    count: get_u64("count")?,
                    sum: get_u64("sum")?,
                    min: get_u64("min")?,
                    max: get_u64("max")?,
                })
            }
            other => Err(format!("unknown event discriminator {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_for_every_variant() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_str_name(p.as_str()), Some(p));
        }
        for c in Counter::ALL {
            assert_eq!(Counter::from_str_name(c.as_str()), Some(c));
        }
        assert_eq!(Phase::from_str_name("warp"), None);
        assert_eq!(Counter::from_str_name("bogons"), None);
    }

    #[test]
    fn jsonl_round_trips_every_event_shape() {
        let events = vec![
            TraceEvent::Span {
                phase: Phase::Send,
                round: Some(17),
                nanos: 12_345,
            },
            TraceEvent::Span {
                phase: Phase::Pipeline,
                round: None,
                nanos: u64::MAX >> 12,
            },
            TraceEvent::Count {
                counter: Counter::Messages,
                value: 0,
            },
            TraceEvent::Sample {
                counter: Counter::PeakRssBytes,
                value: 1 << 30,
            },
            TraceEvent::SampleSummary {
                counter: Counter::RoundsInFlight,
                count: 10,
                sum: 30,
                min: 1,
                max: 5,
            },
        ];
        for ev in events {
            let line = ev.to_jsonl();
            let back = TraceEvent::from_jsonl(&line).expect("line parses");
            assert_eq!(back, ev, "{line}");
        }
    }

    #[test]
    fn malformed_lines_are_structured_errors() {
        for (line, needle) in [
            ("", "object"),
            ("[1,2]", "object"),
            ("{\"ev\":\"warp\"}", "unknown event"),
            (
                "{\"ev\":\"span\",\"phase\":\"warp\",\"nanos\":1}",
                "unknown phase",
            ),
            ("{\"ev\":\"span\",\"nanos\":1}", "missing field"),
            (
                "{\"ev\":\"count\",\"counter\":\"messages\"}",
                "missing field",
            ),
            (
                "{\"ev\":\"count\",\"counter\":\"bogons\",\"value\":1}",
                "unknown counter",
            ),
            (
                "{\"ev\":\"count\",\"counter\":\"messages\",\"value\":-1}",
                "non-negative",
            ),
            (
                "{\"ev\":\"count\",\"counter\":\"messages\",\"value\":1,\"extra\":2}",
                "unexpected field",
            ),
            (
                "{\"ev\":\"span\",\"phase\":\"send\",\"nanos\":1.5}",
                "non-negative integer",
            ),
        ] {
            let err = TraceEvent::from_jsonl(line).unwrap_err();
            assert!(err.contains(needle), "line {line:?}: {err}");
        }
    }
}
