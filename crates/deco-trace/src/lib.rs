//! Zero-cost-when-off tracing, metrics, and per-round profiling shared by
//! every execution engine in the workspace.
//!
//! # Design
//!
//! One process-global dispatch (in the style of the `log` crate) holds the
//! active [`TraceSink`] plus an [`Aggregator`]. Instrumentation points call
//! [`enabled`] — a single relaxed atomic load — before doing *anything*
//! else: when tracing is off, no clock is read, no event is built, no lock
//! is taken. The differential suites pin this observational neutrality by
//! re-running every engine with tracing on and asserting bit-identical
//! outputs.
//!
//! Three sinks ship in [`sink`]: [`NoopSink`] (default), [`RingSink`]
//! (in-memory, for tests and experiments), and [`JsonlSink`] (one JSON line
//! per event, parseable back via [`TraceEvent::from_jsonl`]). Selection
//! normally happens through `deco-runtime`'s `RuntimeBuilder` or the
//! `DECO_TRACE` env var (`off` / `ring` / `jsonl`, path via
//! `DECO_TRACE_PATH`).
//!
//! # Example
//!
//! Install a ring sink, time a phase inside a run scope, and digest the
//! emissions into a [`MetricsReport`]:
//!
//! ```
//! use deco_trace::{Counter, Phase, TraceConfig};
//!
//! deco_trace::install(TraceConfig::ring()).unwrap();
//! let scope = deco_trace::run_scope();
//! {
//!     let _span = deco_trace::span(Phase::Round);
//!     deco_trace::count(Counter::Messages, 42);
//! } // span emits its wall time here
//! let metrics = scope.finish().expect("tracing is on");
//! assert_eq!(metrics.counter(Counter::Messages), Some(42));
//! assert_eq!(metrics.phase(Phase::Round).unwrap().count, 1);
//!
//! // Every emitted event is retained by the ring and parses back.
//! for event in deco_trace::ring_events() {
//!     let line = event.to_jsonl();
//!     assert_eq!(deco_trace::TraceEvent::from_jsonl(&line).unwrap(), event);
//! }
//! deco_trace::install(TraceConfig::off()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod summary;

pub use event::{Counter, Phase, TraceEvent};
pub use metrics::{Aggregator, CounterStat, MetricsReport, PhaseStat, SampleStat};
pub use sink::{JsonlSink, NoopSink, RingSink, TraceSink};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Which sink a [`TraceConfig`] selects. `Off` is the default everywhere;
/// parsing of the `DECO_TRACE` env var into this lives in
/// `deco-engine::config` next to the other env parsers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Tracing disabled (the zero-cost path).
    #[default]
    Off,
    /// In-memory ring buffer of recent events.
    Ring,
    /// JSONL file, one event per line.
    Jsonl,
}

impl TraceMode {
    /// The stable descriptor name (matches what `parse_trace` accepts).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Ring => "ring",
            TraceMode::Jsonl => "jsonl",
        }
    }
}

impl std::fmt::Display for TraceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Env var naming the JSONL output path (consumed at [`install`] time).
pub const ENV_TRACE_PATH: &str = "DECO_TRACE_PATH";

/// Default JSONL output path when neither [`TraceConfig::path`] nor
/// [`ENV_TRACE_PATH`] is set.
pub const DEFAULT_JSONL_PATH: &str = "trace.jsonl";

/// Full sink selection passed to [`install`].
#[derive(Debug, Clone, Default)]
pub struct TraceConfig {
    /// Which sink.
    pub mode: TraceMode,
    /// JSONL output path override (mode [`TraceMode::Jsonl`] only). When
    /// `None`, [`ENV_TRACE_PATH`] is consulted, then
    /// [`DEFAULT_JSONL_PATH`].
    pub path: Option<PathBuf>,
}

impl TraceConfig {
    /// Tracing disabled.
    pub fn off() -> Self {
        Self::default()
    }

    /// In-memory ring sink.
    pub fn ring() -> Self {
        Self {
            mode: TraceMode::Ring,
            path: None,
        }
    }

    /// JSONL sink writing to `path`.
    pub fn jsonl(path: impl Into<PathBuf>) -> Self {
        Self {
            mode: TraceMode::Jsonl,
            path: Some(path.into()),
        }
    }

    /// Config for `mode` with no path override.
    pub fn from_mode(mode: TraceMode) -> Self {
        Self { mode, path: None }
    }
}

struct Dispatch {
    sink: Box<dyn TraceSink>,
    agg: Mutex<Aggregator>,
    /// Number of open [`RunScope`]s; the aggregator resets when the first
    /// one opens so nested scopes share one accumulation window.
    depth: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static RwLock<Option<Arc<Dispatch>>> {
    static STATE: OnceLock<RwLock<Option<Arc<Dispatch>>>> = OnceLock::new();
    STATE.get_or_init(|| RwLock::new(None))
}

fn with_dispatch<R>(f: impl FnOnce(&Dispatch) -> R) -> Option<R> {
    let guard = state().read().ok()?;
    guard.as_deref().map(f)
}

/// True when a sink is installed. A single relaxed atomic load; every
/// instrumentation point checks this first so the disabled path reads no
/// clock, builds no event, and takes no lock.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs the sink selected by `config`, replacing any previous one
/// (flushed first). `TraceMode::Off` uninstalls and restores the zero-cost
/// path. JSONL mode truncates the target file.
///
/// # Errors
///
/// Propagates the I/O error if the JSONL file cannot be created.
pub fn install(config: TraceConfig) -> std::io::Result<()> {
    let new: Option<Arc<Dispatch>> = match config.mode {
        TraceMode::Off => None,
        TraceMode::Ring => Some(Arc::new(Dispatch {
            sink: Box::new(RingSink::new()),
            agg: Mutex::new(Aggregator::new()),
            depth: AtomicU64::new(0),
        })),
        TraceMode::Jsonl => {
            let path = config
                .path
                .or_else(|| std::env::var_os(ENV_TRACE_PATH).map(PathBuf::from))
                .unwrap_or_else(|| PathBuf::from(DEFAULT_JSONL_PATH));
            Some(Arc::new(Dispatch {
                sink: Box::new(JsonlSink::create(Path::new(&path))?),
                agg: Mutex::new(Aggregator::new()),
                depth: AtomicU64::new(0),
            }))
        }
    };
    let enabled = new.is_some();
    if let Ok(mut guard) = state().write() {
        if let Some(old) = guard.take() {
            old.sink.flush();
        }
        *guard = new;
    }
    ENABLED.store(enabled, Ordering::Relaxed);
    Ok(())
}

/// Emits one event to the active sink and folds it into the aggregator.
/// No-op when tracing is off.
pub fn emit(event: TraceEvent) {
    if !enabled() {
        return;
    }
    with_dispatch(|d| {
        if let Ok(mut agg) = d.agg.lock() {
            agg.observe(&event);
        }
        d.sink.record(&event);
    });
}

/// Emits a [`TraceEvent::Count`]. No-op when tracing is off.
#[inline]
pub fn count(counter: Counter, value: u64) {
    if enabled() {
        emit(TraceEvent::Count { counter, value });
    }
}

/// Emits a [`TraceEvent::Sample`]. No-op when tracing is off.
#[inline]
pub fn sample(counter: Counter, value: u64) {
    if enabled() {
        emit(TraceEvent::Sample { counter, value });
    }
}

/// Emits a [`TraceEvent::SampleSummary`] (skipped when `count == 0`).
/// No-op when tracing is off.
#[inline]
pub fn sample_summary(counter: Counter, count: u64, sum: u64, min: u64, max: u64) {
    if enabled() && count > 0 {
        emit(TraceEvent::SampleSummary {
            counter,
            count,
            sum,
            min,
            max,
        });
    }
}

/// An in-flight phase measurement; emits a [`TraceEvent::Span`] with its
/// wall time when dropped. Inert (no clock read) when tracing was off at
/// construction.
#[derive(Debug)]
#[must_use = "a span measures until dropped"]
pub struct Span {
    phase: Phase,
    round: Option<u64>,
    start: Option<Instant>,
}

impl Span {
    /// Discards the span without emitting (for error paths that should not
    /// be attributed wall time).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            emit(TraceEvent::Span {
                phase: self.phase,
                round: self.round,
                nanos,
            });
        }
    }
}

/// Starts timing `phase`; the returned guard emits on drop. Inert when
/// tracing is off.
#[inline]
pub fn span(phase: Phase) -> Span {
    Span {
        phase,
        round: None,
        start: enabled().then(Instant::now),
    }
}

/// Like [`span`], with a round attribution.
#[inline]
pub fn round_span(phase: Phase, round: u64) -> Span {
    Span {
        phase,
        round: Some(round),
        start: enabled().then(Instant::now),
    }
}

/// An open metrics accumulation window; see [`run_scope`].
#[derive(Debug)]
#[must_use = "call finish() to obtain the MetricsReport"]
pub struct RunScope {
    open: bool,
}

impl RunScope {
    /// Closes the scope and returns the digested metrics, or `None` when
    /// tracing is off (or was off when the scope opened).
    pub fn finish(mut self) -> Option<MetricsReport> {
        if !self.open {
            return None;
        }
        self.open = false;
        // Snapshot peak RSS before reading the aggregator so it lands in
        // this scope's report.
        if let Some(rss) = peak_rss_bytes() {
            sample(Counter::PeakRssBytes, rss);
        }
        with_dispatch(|d| {
            d.depth.fetch_sub(1, Ordering::AcqRel);
            d.sink.flush();
            d.agg.lock().ok().map(|agg| agg.report())
        })
        .flatten()
    }
}

impl Drop for RunScope {
    fn drop(&mut self) {
        if self.open {
            with_dispatch(|d| d.depth.fetch_sub(1, Ordering::AcqRel));
        }
    }
}

/// Opens a metrics accumulation window. The outermost scope resets the
/// aggregator, so each top-level run (e.g. one `solve_pipeline` call) gets
/// a fresh [`MetricsReport`]; nested scopes share the outer window.
/// Returns an inert scope when tracing is off.
pub fn run_scope() -> RunScope {
    if !enabled() {
        return RunScope { open: false };
    }
    let open = with_dispatch(|d| {
        if d.depth.fetch_add(1, Ordering::AcqRel) == 0 {
            if let Ok(mut agg) = d.agg.lock() {
                agg.reset();
            }
        }
    })
    .is_some();
    RunScope { open }
}

/// Snapshot of the current aggregator totals without closing any scope.
/// `None` when tracing is off.
pub fn snapshot() -> Option<MetricsReport> {
    with_dispatch(|d| d.agg.lock().ok().map(|agg| agg.report())).flatten()
}

/// Drains the ring sink's retained events (empty when the active sink does
/// not retain events or tracing is off).
pub fn ring_events() -> Vec<TraceEvent> {
    with_dispatch(|d| d.sink.take_events())
        .flatten()
        .unwrap_or_default()
}

/// Flushes the active sink, if any.
pub fn flush() {
    with_dispatch(|d| d.sink.flush());
}

/// Current peak resident set size of the process in bytes (Linux `VmHWM`
/// from `/proc/self/status`); `None` off-Linux or if unreadable.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Temporarily ensures a sink is installed (a ring, if tracing was off) so
/// metrics can be collected; restores `Off` on drop if this guard did the
/// installing. Used by experiments that want metrics regardless of env.
#[derive(Debug)]
pub struct MeasureGuard {
    installed_here: bool,
}

impl Drop for MeasureGuard {
    fn drop(&mut self) {
        if self.installed_here {
            let _ = install(TraceConfig::off());
        }
    }
}

/// See [`MeasureGuard`].
pub fn measure() -> MeasureGuard {
    if enabled() {
        MeasureGuard {
            installed_here: false,
        }
    } else {
        let _ = install(TraceConfig::ring());
        MeasureGuard {
            installed_here: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The dispatch is process-global; tests in this file serialize on
    /// this lock so installs don't race.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_path_emits_nothing_and_scope_yields_none() {
        let _g = guard();
        install(TraceConfig::off()).unwrap();
        assert!(!enabled());
        let scope = run_scope();
        {
            let _span = span(Phase::Round);
            count(Counter::Messages, 7);
            sample(Counter::RoundsInFlight, 3);
        }
        assert_eq!(scope.finish(), None);
        assert_eq!(snapshot(), None);
        assert!(ring_events().is_empty());
    }

    #[test]
    fn ring_mode_collects_spans_counts_and_rss() {
        let _g = guard();
        install(TraceConfig::ring()).unwrap();
        let scope = run_scope();
        {
            let _span = round_span(Phase::Send, 4);
            count(Counter::Messages, 11);
        }
        sample_summary(Counter::RoundsInFlight, 2, 6, 2, 4);
        sample_summary(Counter::RoundsInFlight, 0, 0, 0, 0); // ignored
        let metrics = scope.finish().expect("tracing on");
        assert_eq!(metrics.counter(Counter::Messages), Some(11));
        let send = metrics.phase(Phase::Send).expect("send span recorded");
        assert_eq!(send.count, 1);
        let rif = metrics.sample(Counter::RoundsInFlight).unwrap();
        assert_eq!((rif.count, rif.sum), (2, 6));
        if cfg!(target_os = "linux") {
            assert!(metrics.sample(Counter::PeakRssBytes).is_some());
        }
        let events = ring_events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Span {
                phase: Phase::Send,
                round: Some(4),
                ..
            }
        )));
        install(TraceConfig::off()).unwrap();
    }

    #[test]
    fn outermost_scope_resets_and_nested_scopes_share_a_window() {
        let _g = guard();
        install(TraceConfig::ring()).unwrap();
        {
            let scope = run_scope();
            count(Counter::Messages, 5);
            let _ = scope.finish();
        }
        let outer = run_scope();
        count(Counter::Messages, 1);
        {
            let inner = run_scope();
            count(Counter::Messages, 2);
            let inner_metrics = inner.finish().unwrap();
            // Inner scope sees the shared window, not a fresh one.
            assert_eq!(inner_metrics.counter(Counter::Messages), Some(3));
        }
        let metrics = outer.finish().unwrap();
        // The earlier finished run (value 5) was reset away.
        assert_eq!(metrics.counter(Counter::Messages), Some(3));
        install(TraceConfig::off()).unwrap();
    }

    #[test]
    fn span_cancel_suppresses_emission() {
        let _g = guard();
        install(TraceConfig::ring()).unwrap();
        let scope = run_scope();
        span(Phase::Sweep).cancel();
        let metrics = scope.finish().unwrap();
        assert!(metrics.phase(Phase::Sweep).is_none());
        install(TraceConfig::off()).unwrap();
    }

    #[test]
    fn jsonl_mode_writes_parseable_lines() {
        let _g = guard();
        let path =
            std::env::temp_dir().join(format!("deco-trace-lib-test-{}.jsonl", std::process::id()));
        install(TraceConfig::jsonl(&path)).unwrap();
        let scope = run_scope();
        count(Counter::Messages, 3);
        {
            let _span = span(Phase::Execute);
        }
        let metrics = scope.finish().unwrap();
        assert_eq!(metrics.counter(Counter::Messages), Some(3));
        install(TraceConfig::off()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() >= 2);
        for line in text.lines() {
            TraceEvent::from_jsonl(line).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn measure_guard_installs_ring_and_restores_off() {
        let _g = guard();
        install(TraceConfig::off()).unwrap();
        {
            let _m = measure();
            assert!(enabled());
            let scope = run_scope();
            count(Counter::Rounds, 9);
            assert_eq!(scope.finish().unwrap().counter(Counter::Rounds), Some(9));
        }
        assert!(!enabled());
    }
}
