//! Rendering of [`MetricsReport`]s into aligned text tables.
//!
//! This is the single formatting point the experiments share: per-engine
//! stat sections and the `trace-profile` cross-engine matrix all render
//! here, so engine experiments carry no bespoke stat formatting. The
//! aligner is internal (deco-trace sits below deco-bench and cannot use its
//! `Table`).

use crate::event::{Counter, Phase};
use crate::metrics::MetricsReport;

/// Formats nanoseconds with an adaptive unit (ns / µs / ms / s).
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.1} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Renders rows as a markdown-pipe table with aligned columns; the first
/// row is the header.
fn render(rows: &[Vec<String>]) -> String {
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        out.push('|');
        for (i, width) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            let pad = width - cell.chars().count();
            out.push(' ');
            out.push_str(cell);
            out.extend(std::iter::repeat_n(' ', pad + 1));
            out.push('|');
        }
        out.push('\n');
        if r == 0 {
            out.push('|');
            for width in &widths {
                out.push_str(&"-".repeat(width + 2));
                out.push('|');
            }
            out.push('\n');
        }
    }
    out
}

/// Renders the per-phase wall-time table of one report.
pub fn phase_table(report: &MetricsReport) -> String {
    let mut rows = vec![vec![
        "phase".to_string(),
        "spans".to_string(),
        "total time".to_string(),
        "mean/span".to_string(),
    ]];
    for stat in &report.phases {
        rows.push(vec![
            stat.phase.to_string(),
            stat.count.to_string(),
            fmt_nanos(stat.total_nanos),
            fmt_nanos(stat.total_nanos / stat.count.max(1)),
        ]);
    }
    render(&rows)
}

/// Renders the counter totals and sample distributions of one report.
pub fn counter_table(report: &MetricsReport) -> String {
    let mut rows = vec![vec![
        "counter".to_string(),
        "total".to_string(),
        "samples".to_string(),
        "mean".to_string(),
        "min".to_string(),
        "max".to_string(),
    ]];
    for stat in &report.counters {
        rows.push(vec![
            stat.counter.to_string(),
            stat.value.to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    for stat in &report.samples {
        rows.push(vec![
            stat.counter.to_string(),
            String::new(),
            stat.count.to_string(),
            format!("{:.2}", stat.mean()),
            stat.min.to_string(),
            stat.max.to_string(),
        ]);
    }
    render(&rows)
}

/// Renders a cross-engine per-phase wall-time matrix: one row per phase
/// that any run touched, one column per named run. This is the
/// `trace-profile` experiment's main table.
pub fn phase_matrix(runs: &[(String, MetricsReport)]) -> String {
    let mut header = vec!["phase".to_string()];
    header.extend(runs.iter().map(|(name, _)| name.clone()));
    let mut rows = vec![header];
    for phase in Phase::ALL {
        if !runs.iter().any(|(_, m)| m.phase(phase).is_some()) {
            continue;
        }
        let mut row = vec![phase.to_string()];
        for (_, metrics) in runs {
            row.push(match metrics.phase(phase) {
                Some(stat) => fmt_nanos(stat.total_nanos),
                None => "—".to_string(),
            });
        }
        rows.push(row);
    }
    render(&rows)
}

/// Renders a cross-engine counter matrix: one row per counter that any run
/// touched (totals, and sample means shown as `mean (max)`).
pub fn counter_matrix(runs: &[(String, MetricsReport)]) -> String {
    let mut header = vec!["counter".to_string()];
    header.extend(runs.iter().map(|(name, _)| name.clone()));
    let mut rows = vec![header];
    for counter in Counter::ALL {
        let touched = runs
            .iter()
            .any(|(_, m)| m.counter(counter).is_some() || m.sample(counter).is_some());
        if !touched {
            continue;
        }
        let mut row = vec![counter.to_string()];
        for (_, metrics) in runs {
            row.push(if let Some(total) = metrics.counter(counter) {
                total.to_string()
            } else if let Some(stat) = metrics.sample(counter) {
                format!("{:.2} (max {})", stat.mean(), stat.max)
            } else {
                "—".to_string()
            });
        }
        rows.push(row);
    }
    render(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CounterStat, PhaseStat, SampleStat};

    fn sample_report() -> MetricsReport {
        MetricsReport {
            phases: vec![
                PhaseStat {
                    phase: Phase::Round,
                    count: 4,
                    total_nanos: 40_000,
                },
                PhaseStat {
                    phase: Phase::Send,
                    count: 4,
                    total_nanos: 8_000,
                },
            ],
            counters: vec![CounterStat {
                counter: Counter::Messages,
                value: 128,
            }],
            samples: vec![SampleStat {
                counter: Counter::RoundsInFlight,
                count: 10,
                sum: 25,
                min: 1,
                max: 4,
            }],
        }
    }

    #[test]
    fn fmt_nanos_picks_units() {
        assert_eq!(fmt_nanos(999), "999 ns");
        assert_eq!(fmt_nanos(40_000), "40.0 µs");
        assert_eq!(fmt_nanos(12_000_000), "12.0 ms");
        assert_eq!(fmt_nanos(12_000_000_000), "12.00 s");
    }

    #[test]
    fn phase_table_lists_each_phase_once() {
        let table = phase_table(&sample_report());
        assert!(table.contains("| round"), "{table}");
        assert!(table.contains("| send"), "{table}");
        assert!(table.contains("40.0 µs"), "{table}");
        // Header + separator + 2 phases.
        assert_eq!(table.lines().count(), 4, "{table}");
    }

    #[test]
    fn counter_table_mixes_totals_and_samples() {
        let table = counter_table(&sample_report());
        assert!(table.contains("messages"), "{table}");
        assert!(table.contains("128"), "{table}");
        assert!(table.contains("rounds-in-flight"), "{table}");
        assert!(table.contains("2.50"), "{table}");
    }

    #[test]
    fn matrices_align_runs_side_by_side() {
        let runs = vec![
            ("serial".to_string(), sample_report()),
            ("barrier".to_string(), MetricsReport::default()),
        ];
        let phases = phase_matrix(&runs);
        assert!(phases.contains("serial"), "{phases}");
        assert!(phases.contains("barrier"), "{phases}");
        assert!(phases.contains('—'), "{phases}");
        let counters = counter_matrix(&runs);
        assert!(counters.contains("messages"), "{counters}");
        assert!(counters.contains("2.50 (max 4)"), "{counters}");
    }
}
