//! Sink implementations: where emitted [`TraceEvent`]s go.
//!
//! The contract is deliberately thin — [`TraceSink::record`] must be
//! callable from any thread (engines emit from worker threads), must not
//! panic on I/O trouble (tracing is observability, not control flow), and
//! must make each event durable atomically enough that a crashed process
//! leaves only whole lines behind (the JSONL sink writes one line per
//! `record`, unbuffered).

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// Receiver of structured trace events. Implementations must be cheap and
/// thread-safe; a sink that drops events (ring overflow, I/O error) does so
/// silently — aggregation for [`crate::MetricsReport`] happens upstream and
/// is never affected by sink lossiness.
pub trait TraceSink: Send + Sync {
    /// Receives one event.
    fn record(&self, event: &TraceEvent);

    /// Flushes any buffered state (default: nothing to flush).
    fn flush(&self) {}

    /// Drains and returns buffered events, if this sink retains them
    /// (default: `None` — the sink does not buffer).
    fn take_events(&self) -> Option<Vec<TraceEvent>> {
        None
    }
}

/// A sink that discards everything. The installed default; [`crate::enabled`]
/// short-circuits before any event is even built, so this type mostly
/// exists to make the dispatch table total.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _event: &TraceEvent) {}
}

/// Maximum number of events a [`RingSink`] retains before evicting the
/// oldest.
pub const RING_CAPACITY: usize = 65_536;

/// An in-memory ring buffer of the most recent [`RING_CAPACITY`] events.
/// Used by tests and the `trace-profile` experiment to inspect emissions
/// without touching the filesystem.
#[derive(Debug, Default)]
pub struct RingSink {
    events: Mutex<VecDeque<TraceEvent>>,
}

impl RingSink {
    /// Creates an empty ring.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: &TraceEvent) {
        let Ok(mut events) = self.events.lock() else {
            return;
        };
        if events.len() == RING_CAPACITY {
            events.pop_front();
        }
        events.push_back(event.clone());
    }

    fn take_events(&self) -> Option<Vec<TraceEvent>> {
        let Ok(mut events) = self.events.lock() else {
            return Some(Vec::new());
        };
        Some(events.drain(..).collect())
    }
}

/// A sink appending one JSON line per event to a file.
///
/// Writes are unbuffered and line-atomic (one `write_all` per event under a
/// mutex): the global dispatch holding this sink lives for the process, so
/// a buffered writer's tail would never be flushed. I/O errors are silently
/// swallowed — a full disk must not fail the algorithm under observation.
#[derive(Debug)]
pub struct JsonlSink {
    file: Mutex<File>,
}

impl JsonlSink {
    /// Creates (truncating) `path` and returns a sink writing to it.
    ///
    /// # Errors
    ///
    /// Propagates the [`std::io::Error`] if the file cannot be created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            file: Mutex::new(File::create(path)?),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &TraceEvent) {
        let mut line = event.to_jsonl();
        line.push('\n');
        if let Ok(mut file) = self.file.lock() {
            let _ = file.write_all(line.as_bytes());
        }
    }

    fn flush(&self) {
        if let Ok(mut file) = self.file.lock() {
            let _ = file.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Counter, Phase};

    fn count(value: u64) -> TraceEvent {
        TraceEvent::Count {
            counter: Counter::Messages,
            value,
        }
    }

    #[test]
    fn ring_retains_and_drains() {
        let ring = RingSink::new();
        ring.record(&count(1));
        ring.record(&count(2));
        let events = ring.take_events().unwrap();
        assert_eq!(events, vec![count(1), count(2)]);
        assert_eq!(ring.take_events().unwrap(), vec![]);
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let ring = RingSink::new();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            ring.record(&count(i));
        }
        let events = ring.take_events().unwrap();
        assert_eq!(events.len(), RING_CAPACITY);
        assert_eq!(events[0], count(10));
    }

    #[test]
    fn jsonl_writes_parseable_lines_immediately() {
        let path =
            std::env::temp_dir().join(format!("deco-trace-sink-test-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&TraceEvent::Span {
            phase: Phase::Round,
            round: Some(3),
            nanos: 99,
        });
        sink.record(&count(7));
        // No flush: line-atomic unbuffered writes must already be on disk.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            TraceEvent::from_jsonl(line).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
}
