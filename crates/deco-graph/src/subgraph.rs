//! Edge-induced subgraphs with provenance back to the parent graph.
//!
//! The recursive algorithms in this workspace constantly restrict attention
//! to a subset of edges (a defective color class, the still-uncolored edges,
//! the edges assigned to one color subspace, …) and then need to translate
//! results back to the original instance. [`EdgeSubgraph`] materializes the
//! restriction as a fresh [`Graph`] over the *same node set* and keeps the
//! edge-id mapping in both directions.

use crate::{EdgeId, Graph, GraphBuilder};

/// A subgraph of a parent [`Graph`] induced by a subset of its edges.
///
/// Nodes are preserved 1:1 (same `NodeId` space as the parent); only edges
/// are filtered, so node-indexed state can be shared between parent and
/// subgraph. Edge ids are re-densified; use [`EdgeSubgraph::parent_edge`] /
/// [`EdgeSubgraph::sub_edge`] to translate.
///
/// # Examples
///
/// ```
/// use deco_graph::{EdgeSubgraph, Graph, EdgeId};
///
/// # fn main() -> Result<(), deco_graph::BuildGraphError> {
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let sub = EdgeSubgraph::new(&g, |e| e != EdgeId(1));
/// assert_eq!(sub.graph().num_edges(), 2);
/// assert_eq!(sub.parent_edge(EdgeId(1)), EdgeId(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EdgeSubgraph {
    graph: Graph,
    to_parent: Vec<EdgeId>,
    from_parent: Vec<Option<EdgeId>>,
}

impl EdgeSubgraph {
    /// Builds the subgraph containing exactly the parent edges for which
    /// `keep` returns `true`.
    pub fn new<F>(parent: &Graph, mut keep: F) -> EdgeSubgraph
    where
        F: FnMut(EdgeId) -> bool,
    {
        let kept: Vec<EdgeId> = parent.edges().filter(|&e| keep(e)).collect();
        EdgeSubgraph::from_edge_ids(parent, &kept)
    }

    /// Builds the subgraph containing exactly `edges` (parent edge ids).
    ///
    /// # Panics
    ///
    /// Panics if `edges` contains duplicates or out-of-range ids.
    pub fn from_edge_ids(parent: &Graph, edges: &[EdgeId]) -> EdgeSubgraph {
        let mut builder = GraphBuilder::new(parent.num_nodes());
        let mut from_parent = vec![None; parent.num_edges()];
        for (sub_idx, &pe) in edges.iter().enumerate() {
            let [u, v] = parent.endpoints(pe);
            builder.add_edge(u, v);
            assert!(
                from_parent[pe.index()].is_none(),
                "duplicate edge {pe} in subgraph edge list"
            );
            from_parent[pe.index()] = Some(EdgeId::from(sub_idx));
        }
        let graph = builder
            .build()
            .expect("edges taken from a valid parent graph are valid");
        EdgeSubgraph {
            graph,
            to_parent: edges.to_vec(),
            from_parent,
        }
    }

    /// The materialized subgraph (same node set as the parent).
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Translates a subgraph edge id back to the parent edge id.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for the subgraph.
    #[inline]
    pub fn parent_edge(&self, e: EdgeId) -> EdgeId {
        self.to_parent[e.index()]
    }

    /// Translates a parent edge id into this subgraph, if the edge was kept.
    #[inline]
    pub fn sub_edge(&self, parent_edge: EdgeId) -> Option<EdgeId> {
        self.from_parent[parent_edge.index()]
    }

    /// The full sub→parent edge mapping, indexed by subgraph edge id.
    #[inline]
    pub fn edge_map(&self) -> &[EdgeId] {
        &self.to_parent
    }

    /// Copies subgraph-edge-indexed values into a parent-edge-indexed buffer.
    ///
    /// For each subgraph edge `e` with value `values[e]`, writes the value to
    /// `out[parent_edge(e)]`. Entries of `out` for edges outside the subgraph
    /// are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `values` or `out` have the wrong length.
    pub fn scatter_to_parent<T: Clone>(&self, values: &[T], out: &mut [Option<T>]) {
        assert_eq!(
            values.len(),
            self.graph.num_edges(),
            "values length mismatch"
        );
        assert_eq!(out.len(), self.from_parent.len(), "out length mismatch");
        for (idx, pe) in self.to_parent.iter().enumerate() {
            out[pe.index()] = Some(values[idx].clone());
        }
    }
}

/// Degree of `e` counted only against neighbors inside `mask`
/// (`mask[f] == true` means `f` is in the subgraph). The edge `e` itself does
/// not need to be in the mask.
pub fn edge_degree_within(parent: &Graph, mask: &[bool], e: EdgeId) -> usize {
    parent.edge_neighbors(e).filter(|f| mask[f.index()]).count()
}

/// Maximum, over edges in `mask`, of [`edge_degree_within`]; 0 if the mask is
/// empty.
pub fn max_edge_degree_within(parent: &Graph, mask: &[bool]) -> usize {
    parent
        .edges()
        .filter(|e| mask[e.index()])
        .map(|e| edge_degree_within(parent, mask, e))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn keeps_selected_edges() {
        let g = path5();
        let sub = EdgeSubgraph::new(&g, |e| e.index() % 2 == 0);
        assert_eq!(sub.graph().num_edges(), 2);
        assert_eq!(sub.parent_edge(EdgeId(0)), EdgeId(0));
        assert_eq!(sub.parent_edge(EdgeId(1)), EdgeId(2));
        assert_eq!(sub.sub_edge(EdgeId(2)), Some(EdgeId(1)));
        assert_eq!(sub.sub_edge(EdgeId(1)), None);
    }

    #[test]
    fn node_set_is_preserved() {
        let g = path5();
        let sub = EdgeSubgraph::new(&g, |_| false);
        assert_eq!(sub.graph().num_nodes(), 5);
        assert_eq!(sub.graph().num_edges(), 0);
    }

    #[test]
    fn scatter_to_parent_translates_values() {
        let g = path5();
        let sub = EdgeSubgraph::new(&g, |e| e.index() >= 2);
        let vals = vec![10u32, 20u32];
        let mut out: Vec<Option<u32>> = vec![None; g.num_edges()];
        sub.scatter_to_parent(&vals, &mut out);
        assert_eq!(out, vec![None, None, Some(10), Some(20)]);
    }

    #[test]
    fn degree_within_mask() {
        let g = path5();
        // Keep edges e0 and e1 (sharing node 1).
        let mask = vec![true, true, false, false];
        assert_eq!(edge_degree_within(&g, &mask, EdgeId(0)), 1);
        assert_eq!(edge_degree_within(&g, &mask, EdgeId(1)), 1);
        assert_eq!(edge_degree_within(&g, &mask, EdgeId(2)), 1); // neighbor e1 in mask
        assert_eq!(max_edge_degree_within(&g, &mask), 1);
    }

    #[test]
    fn subgraph_degrees_match_mask_degrees() {
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (1, 2), (4, 5), (3, 4)]).unwrap();
        let mask: Vec<bool> = g.edges().map(|e| e.index() != 3).collect();
        let kept: Vec<EdgeId> = g.edges().filter(|e| mask[e.index()]).collect();
        let sub = EdgeSubgraph::from_edge_ids(&g, &kept);
        for se in sub.graph().edges() {
            let pe = sub.parent_edge(se);
            assert_eq!(
                sub.graph().edge_degree(se),
                edge_degree_within(&g, &mask, pe),
                "edge degree mismatch for {pe}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge_ids() {
        let g = path5();
        let _ = EdgeSubgraph::from_edge_ids(&g, &[EdgeId(0), EdgeId(0)]);
    }
}
