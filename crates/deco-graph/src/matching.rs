//! Matchings and the matching view of edge colorings.
//!
//! A proper edge coloring partitions the edges into matchings (one per
//! color) — that equivalence is what makes edge coloring a scheduling
//! primitive: each color class can run simultaneously.

use crate::coloring::EdgeColoring;
use crate::{EdgeId, Graph};

/// Whether `edges` is a matching in `g` (no two share an endpoint).
pub fn is_matching(g: &Graph, edges: &[EdgeId]) -> bool {
    let mut used = vec![false; g.num_nodes()];
    for &e in edges {
        let [u, v] = g.endpoints(e);
        if used[u.index()] || used[v.index()] {
            return false;
        }
        used[u.index()] = true;
        used[v.index()] = true;
    }
    true
}

/// Whether `edges` is a *maximal* matching: a matching no edge of `g` can
/// extend.
pub fn is_maximal_matching(g: &Graph, edges: &[EdgeId]) -> bool {
    if !is_matching(g, edges) {
        return false;
    }
    let mut used = vec![false; g.num_nodes()];
    for &e in edges {
        let [u, v] = g.endpoints(e);
        used[u.index()] = true;
        used[v.index()] = true;
    }
    g.edges().all(|e| {
        let [u, v] = g.endpoints(e);
        used[u.index()] || used[v.index()]
    })
}

/// Greedy maximal matching in edge-id order (centralized utility).
pub fn greedy_maximal_matching(g: &Graph) -> Vec<EdgeId> {
    let mut used = vec![false; g.num_nodes()];
    let mut matching = Vec::new();
    for e in g.edges() {
        let [u, v] = g.endpoints(e);
        if !used[u.index()] && !used[v.index()] {
            used[u.index()] = true;
            used[v.index()] = true;
            matching.push(e);
        }
    }
    matching
}

/// Splits a complete edge coloring into its color classes, indexed by color
/// `0..=max_color` (classes of unused colors are empty).
///
/// For a *proper* coloring, every class is a matching — checked by
/// [`classes_are_matchings`].
///
/// # Panics
///
/// Panics if the coloring is incomplete.
pub fn color_classes(g: &Graph, coloring: &EdgeColoring) -> Vec<Vec<EdgeId>> {
    let max = coloring.max_color().map_or(0, |c| c as usize);
    let mut classes = vec![Vec::new(); max + 1];
    for e in g.edges() {
        let c = coloring.get(e).expect("coloring must be complete");
        classes[c as usize].push(e);
    }
    classes
}

/// Whether every color class of a complete coloring is a matching —
/// equivalent to the coloring being proper.
pub fn classes_are_matchings(g: &Graph, coloring: &EdgeColoring) -> bool {
    color_classes(g, coloring)
        .iter()
        .all(|class| is_matching(g, class))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn matching_detection() {
        let g = generators::path(5); // e0={0,1}, e1={1,2}, e2={2,3}, e3={3,4}
        assert!(is_matching(&g, &[EdgeId(0), EdgeId(2)]));
        assert!(!is_matching(&g, &[EdgeId(0), EdgeId(1)]));
        assert!(is_matching(&g, &[]));
    }

    #[test]
    fn maximality() {
        let g = generators::path(5);
        assert!(is_maximal_matching(&g, &[EdgeId(0), EdgeId(2)]));
        // {e0, e3} leaves e1..e2 both blocked? e1 touches node1 (used), e2
        // touches node 3 (used) -> maximal.
        assert!(is_maximal_matching(&g, &[EdgeId(0), EdgeId(3)]));
        // {e1} alone: e3 = {3,4} is free to add -> not maximal.
        assert!(!is_maximal_matching(&g, &[EdgeId(1)]));
    }

    #[test]
    fn greedy_is_maximal_on_families() {
        for g in [
            generators::complete(9),
            generators::gnp(60, 0.1, 3),
            generators::petersen(),
            generators::random_regular(40, 5, 4),
        ] {
            let m = greedy_maximal_matching(&g);
            assert!(is_maximal_matching(&g, &m));
        }
    }

    #[test]
    fn proper_coloring_classes_are_matchings() {
        let g = generators::cycle(6);
        let proper = EdgeColoring::from_complete(vec![0, 1, 0, 1, 0, 1]);
        assert!(classes_are_matchings(&g, &proper));
        let improper = EdgeColoring::from_complete(vec![0, 0, 1, 1, 0, 1]);
        assert!(!classes_are_matchings(&g, &improper));
    }

    #[test]
    fn classes_partition_edges() {
        let g = generators::complete(6);
        let c = crate::coloring::EdgeColoring::from_complete(g.edges().map(|e| e.0 % 5).collect());
        let classes = color_classes(&g, &c);
        assert_eq!(classes.iter().map(Vec::len).sum::<usize>(), g.num_edges());
    }
}
