//! Bulk CSR builder for large edge lists.
//!
//! [`Builder`] is the million-edge path into [`Graph`]: endpoints are
//! validated and normalized *as they are added* (one branch per edge, no
//! deferred re-scan), storage is pre-sized via [`Builder::with_capacity`],
//! and [`Builder::build`] runs the shared degree-count → prefix-sum →
//! scatter core in O(n + m) with duplicate detection by a stamp sweep over
//! the scattered adjacency lists — no per-edge re-sorting anywhere.
//!
//! The incremental [`GraphBuilder`](crate::GraphBuilder) remains the
//! convenient API for small, hand-written graphs; both builders feed the
//! same assembly core and produce bit-identical [`Graph`]s for the same
//! edge sequence.

use crate::graph::{assemble_csr, validate_edge};
use crate::{BuildGraphError, Graph, NodeId};

/// Pre-sized, validate-on-insert builder for large graphs.
///
/// # Examples
///
/// ```
/// use deco_graph::Builder;
///
/// # fn main() -> Result<(), deco_graph::BuildGraphError> {
/// let mut b = Builder::with_capacity(4, 3);
/// b.add_edge(0, 1)?;
/// b.add_edge(2, 1)?; // endpoint order is irrelevant
/// b.add_edge(2, 3)?;
/// let g = b.build()?;
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.num_edges(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Builder {
    n: usize,
    /// Normalized (smaller endpoint first), range- and loop-checked edges;
    /// index order is the final [`EdgeId`](crate::EdgeId) order.
    edges: Vec<[NodeId; 2]>,
}

impl Builder {
    /// A builder for a graph on `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Builder {
            n,
            edges: Vec::new(),
        }
    }

    /// A builder for `n` nodes with room for `m` edges before reallocating.
    ///
    /// The single up-front allocation is what keeps bulk construction at one
    /// `memcpy`-class pass instead of amortized doubling over 10^6 pushes.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Builder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`, validating and normalizing it
    /// immediately.
    ///
    /// Duplicate detection is global and stays deferred to
    /// [`Builder::build`] (it falls out of the O(n + m) stamp sweep there);
    /// everything local to the edge — self-loops, range — is rejected here,
    /// so a bad edge is reported at its insertion site, not at the end of a
    /// million-edge load.
    ///
    /// # Errors
    ///
    /// [`BuildGraphError::SelfLoop`] if `u == v`,
    /// [`BuildGraphError::NodeOutOfRange`] if an endpoint is outside `0..n`.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), BuildGraphError> {
        let edge = validate_edge(self.n, NodeId::from(u), NodeId::from(v))?;
        self.edges.push(edge);
        Ok(())
    }

    /// Adds every `(u, v)` pair from an iterator, stopping at the first
    /// invalid edge.
    ///
    /// # Errors
    ///
    /// Same as [`Builder::add_edge`].
    pub fn extend_pairs<I>(&mut self, iter: I) -> Result<(), BuildGraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        for (u, v) in iter {
            self.add_edge(u, v)?;
        }
        Ok(())
    }

    /// Freezes the builder into an immutable [`Graph`] in O(n + m).
    ///
    /// # Errors
    ///
    /// [`BuildGraphError::DuplicateEdge`] if the same undirected pair was
    /// added twice.
    pub fn build(self) -> Result<Graph, BuildGraphError> {
        assemble_csr(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn matches_graph_builder_output_exactly() {
        let pairs = [(0usize, 3usize), (1, 2), (3, 1), (0, 2), (4, 0)];
        let mut bulk = Builder::with_capacity(5, pairs.len());
        bulk.extend_pairs(pairs).unwrap();
        let mut push = GraphBuilder::new(5);
        for (u, v) in pairs {
            push.add_edge(NodeId::from(u), NodeId::from(v));
        }
        assert_eq!(bulk.build().unwrap(), push.build().unwrap());
    }

    #[test]
    fn rejects_self_loop_at_insertion() {
        let mut b = Builder::new(3);
        assert!(matches!(
            b.add_edge(1, 1),
            Err(BuildGraphError::SelfLoop { node: NodeId(1) })
        ));
    }

    #[test]
    fn rejects_out_of_range_at_insertion() {
        let mut b = Builder::new(3);
        assert!(matches!(
            b.add_edge(0, 7),
            Err(BuildGraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_duplicates_at_build() {
        let mut b = Builder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        assert!(matches!(
            b.build(),
            Err(BuildGraphError::DuplicateEdge {
                u: NodeId(0),
                v: NodeId(1)
            })
        ));
    }

    #[test]
    fn capacity_is_a_hint_not_a_cap() {
        let mut b = Builder::with_capacity(4, 1);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(2, 3).unwrap();
        assert_eq!(b.num_edges(), 3);
        assert_eq!(b.build().unwrap().num_edges(), 3);
    }

    #[test]
    fn empty_builder_builds_isolated_nodes() {
        let g = Builder::new(6).build().unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 0);
    }
}
