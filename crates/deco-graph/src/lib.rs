//! # deco-graph — graph substrate for distributed edge coloring
//!
//! Undirected simple graphs in CSR form, plus everything the LOCAL-model
//! edge-coloring stack needs around them: line graphs, edge-induced
//! subgraphs with provenance, deterministic seeded generators, traversal
//! utilities, coloring validators, and lightweight I/O.
//!
//! Built from scratch (see `DESIGN.md` §6 for why no external graph crate is
//! used): the coloring algorithms need line graphs, masked edge-degree
//! queries, and subgraph back-mappings as first-class, cheap operations.
//!
//! ## Quick tour
//!
//! ```
//! use deco_graph::{generators, coloring::EdgeColoring, coloring};
//!
//! let g = generators::cycle(6);
//! assert_eq!(g.max_degree(), 2);
//! assert_eq!(g.max_edge_degree(), 2); // deg(e) = deg(u) + deg(v) − 2
//!
//! // A proper 2-edge-coloring of an even cycle.
//! let c = EdgeColoring::from_complete(vec![0, 1, 0, 1, 0, 1]);
//! assert!(coloring::check_edge_coloring(&g, &c).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod coloring;
pub mod dot;
pub mod generators;
mod graph;
pub mod hashing;
mod ids;
pub mod io;
mod line_graph;
pub mod matching;
mod mutable;
pub mod partition;
mod subgraph;
pub mod traversal;

pub use builder::Builder;
pub use graph::{Adjacent, BuildGraphError, Graph, GraphBuilder};
pub use ids::{EdgeId, NodeId};
pub use line_graph::LineGraph;
pub use mutable::{EdgeUpdate, MutableGraph, MutateError};
pub use subgraph::{edge_degree_within, max_edge_degree_within, EdgeSubgraph};
