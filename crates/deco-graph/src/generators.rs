//! Deterministic, seeded graph generators.
//!
//! Every random generator takes an explicit `seed` and uses
//! [`rand::rngs::StdRng`], so workloads are reproducible across runs and
//! platforms. The structured families (paths, cycles, grids, hypercubes,
//! complete and bipartite graphs) exercise the extremes the paper's claims
//! quantify over: bounded-degree graphs for the `O(log* n)` term, dense
//! graphs for the `Δ` dependency, and bipartite graphs for the
//! switch-scheduling example.

use crate::hashing::DetHashSet;
use crate::{Graph, GraphBuilder, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Path `P_n` on `n` nodes (`n − 1` edges).
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (i - 1, i))).expect("path is simple")
}

/// Cycle `C_n` on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires n >= 3, got {n}");
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).expect("cycle is simple")
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let edges = (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j)));
    Graph::from_edges(n, edges).expect("complete graph is simple")
}

/// Complete bipartite graph `K_{a,b}`; left side is `0..a`, right `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let edges = (0..a).flat_map(move |i| (0..b).map(move |j| (i, a + j)));
    Graph::from_edges(a + b, edges).expect("complete bipartite graph is simple")
}

/// Star `K_{1,k}` with center node `0`.
pub fn star(k: usize) -> Graph {
    Graph::from_edges(k + 1, (1..=k).map(|i| (0, i))).expect("star is simple")
}

/// `w × h` grid graph (4-neighborhood).
pub fn grid(w: usize, h: usize) -> Graph {
    let id = |x: usize, y: usize| y * w + x;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    Graph::from_edges(w * h, edges).expect("grid is simple")
}

/// `w × h` torus (grid with wraparound); requires `w, h ≥ 3` so the wrapped
/// edges stay simple.
///
/// # Panics
///
/// Panics if `w < 3` or `h < 3`.
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus requires w, h >= 3, got {w}x{h}");
    let id = |x: usize, y: usize| y * w + x;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            edges.push((id(x, y), id((x + 1) % w, y)));
            edges.push((id(x, y), id(x, (y + 1) % h)));
        }
    }
    Graph::from_edges(w * h, edges).expect("torus is simple")
}

/// `d`-dimensional hypercube `Q_d` on `2^d` nodes.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut edges = Vec::new();
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                edges.push((v, u));
            }
        }
    }
    Graph::from_edges(n, edges).expect("hypercube is simple")
}

/// The Petersen graph (3-regular, 10 nodes, girth 5). A classic adversarial
/// instance for greedy colorers.
pub fn petersen() -> Graph {
    let mut edges = Vec::new();
    for i in 0..5 {
        edges.push((i, (i + 1) % 5)); // outer cycle
        edges.push((i, i + 5)); // spokes
        edges.push((i + 5, (i + 2) % 5 + 5)); // inner pentagram
    }
    Graph::from_edges(10, edges).expect("petersen is simple")
}

/// Caterpillar: a spine path of `spine` nodes with `legs` pendant nodes
/// attached to every spine node. Maximum degree `legs + 2`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut edges = Vec::new();
    for i in 1..spine {
        edges.push((i - 1, i));
    }
    for s in 0..spine {
        for l in 0..legs {
            edges.push((s, spine + s * legs + l));
        }
    }
    Graph::from_edges(n, edges).expect("caterpillar is simple")
}

/// Complete binary tree with `depth` levels of edges (`2^(depth+1) − 1`
/// nodes).
pub fn binary_tree(depth: u32) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    let edges = (1..n).map(|i| ((i - 1) / 2, i));
    Graph::from_edges(n, edges).expect("tree is simple")
}

/// Erdős–Rényi `G(n, p)` with geometric edge skipping (O(n + m) expected
/// time).
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    if p > 0.0 {
        if (p - 1.0).abs() < f64::EPSILON {
            return complete(n);
        }
        // Iterate over the n*(n-1)/2 potential edges in row-major order,
        // skipping ahead geometrically.
        let log_q = (1.0 - p).ln();
        let mut v: usize = 1;
        let mut w: i64 = -1;
        while v < n {
            let r: f64 = rng.gen_range(0.0..1.0f64);
            let skip = ((1.0 - r).ln() / log_q).floor() as i64;
            w += 1 + skip;
            while w >= v as i64 && v < n {
                w -= v as i64;
                v += 1;
            }
            if v < n {
                edges.push((w as usize, v));
            }
        }
    }
    Graph::from_edges(n, edges).expect("gnp produces distinct pairs")
}

/// Uniform random graph with exactly `m` edges (`G(n, m)`), sampled without
/// replacement.
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible edges.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_m = n * n.saturating_sub(1) / 2;
    assert!(m <= max_m, "m={m} exceeds max possible edges {max_m}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = DetHashSet::with_capacity_and_hasher(m * 2, Default::default());
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            edges.push(key);
        }
    }
    Graph::from_edges(n, edges).expect("gnm produces distinct pairs")
}

/// Random `d`-regular simple graph on `n` nodes via a seeded circulant
/// start followed by `10·m` double-edge swaps (degree-preserving Markov
/// chain). Requires `n·d` even, `d < n`.
///
/// # Panics
///
/// Panics if `d ≥ n` or `n·d` is odd.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d < n, "degree d={d} must be < n={n}");
    assert!((n * d).is_multiple_of(2), "n*d must be even (n={n}, d={d})");
    if d == 0 {
        return Graph::empty(n);
    }
    // Circulant base graph: connect i to i±1, …, i±⌊d/2⌋; if d is odd also
    // to the antipode i + n/2 (n is even in that case since n·d is even).
    let mut edge_set: DetHashSet<(usize, usize)> = DetHashSet::default();
    let key = |u: usize, v: usize| if u < v { (u, v) } else { (v, u) };
    for i in 0..n {
        for off in 1..=(d / 2) {
            edge_set.insert(key(i, (i + off) % n));
        }
        if d % 2 == 1 {
            edge_set.insert(key(i, (i + n / 2) % n));
        }
    }
    let mut edges: Vec<(usize, usize)> = edge_set.iter().copied().collect();
    edges.sort_unstable();
    let m = edges.len();
    debug_assert_eq!(m, n * d / 2, "circulant base must be exactly d-regular");

    // Randomize with double-edge swaps: pick edges (a,b),(c,e), replace with
    // (a,c),(b,e) when the result stays simple. Preserves all degrees.
    let mut rng = StdRng::seed_from_u64(seed);
    let swaps = 10 * m;
    for _ in 0..swaps {
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m);
        if i == j {
            continue;
        }
        let (mut a, mut b) = edges[i];
        let (mut c, mut e) = edges[j];
        // Randomize orientation of both edges.
        if rng.gen_bool(0.5) {
            std::mem::swap(&mut a, &mut b);
        }
        if rng.gen_bool(0.5) {
            std::mem::swap(&mut c, &mut e);
        }
        if a == c || a == e || b == c || b == e {
            continue; // shares a node; swap would create a loop
        }
        let new1 = key(a, c);
        let new2 = key(b, e);
        if edge_set.contains(&new1) || edge_set.contains(&new2) {
            continue;
        }
        edge_set.remove(&key(a, b));
        edge_set.remove(&key(c, e));
        edge_set.insert(new1);
        edge_set.insert(new2);
        edges[i] = new1;
        edges[j] = new2;
    }
    Graph::from_edges(n, edges).expect("double-edge swaps preserve simplicity")
}

/// Random bipartite graph where every left node has degree exactly `d`
/// (right degrees are random). Left side `0..a`, right side `a..a+b`.
///
/// # Panics
///
/// Panics if `d > b`.
pub fn random_bipartite_left_regular(a: usize, b: usize, d: usize, seed: u64) -> Graph {
    assert!(d <= b, "left degree d={d} must be <= right side size b={b}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut right: Vec<usize> = (0..b).collect();
    let mut edges = Vec::with_capacity(a * d);
    for u in 0..a {
        // Partial Fisher–Yates: only the d-prefix needs to be a uniformly
        // random ordered sample, so stop the shuffle after d swaps — O(a·d)
        // total instead of the O(a·b) full re-shuffle per left node. The
        // prefix is uniform regardless of the array's prior permutation, so
        // `right` carries over between iterations without a reset.
        for i in 0..d {
            let j = rng.gen_range(i..b);
            right.swap(i, j);
        }
        for &r in right.iter().take(d) {
            edges.push((u, a + r));
        }
    }
    Graph::from_edges(a + b, edges).expect("bipartite construction is simple")
}

/// RMAT/Kronecker-style random graph on `2^scale` nodes, targeting
/// `edge_factor · 2^scale` distinct edges (Graph500 quadrant probabilities
/// a = 0.57, b = c = 0.19, d = 0.05).
///
/// Each sample picks one of the four adjacency-matrix quadrants per bit
/// level, producing the skewed, scale-free degree profile that makes this
/// the standard million-edge stress family. Self-loops are resampled and
/// duplicates dropped through a deterministic hash set, so the result is
/// simple; in pathological corners (tiny `scale`, huge `edge_factor`) the
/// sampler gives up after a bounded number of attempts and returns the
/// distinct edges found, keeping the generator total.
///
/// Deterministic in `(scale, edge_factor, seed)`.
///
/// # Panics
///
/// Panics if `scale` is 0 or exceeds 31 (node ids must fit `u32`).
pub fn kronecker(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    assert!(
        (1..=31).contains(&scale),
        "kronecker scale must be in 1..=31, got {scale}"
    );
    let n = 1usize << scale;
    let target = edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = DetHashSet::with_capacity_and_hasher(target * 2, Default::default());
    let mut builder = crate::Builder::with_capacity(n, target);
    let mut attempts = 0usize;
    let max_attempts = target.saturating_mul(32).max(1024);
    while builder.num_edges() < target && attempts < max_attempts {
        attempts += 1;
        let mut u = 0usize;
        let mut v = 0usize;
        for _ in 0..scale {
            let r: f64 = rng.gen_range(0.0..1.0f64);
            // Quadrant cut points: a, a+b, a+b+c.
            let (du, dv) = if r < 0.57 {
                (0, 0)
            } else if r < 0.76 {
                (0, 1)
            } else if r < 0.95 {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            builder
                .add_edge(u, v)
                .expect("kronecker samples are in range and loop-free");
        }
    }
    builder.build().expect("kronecker edges are deduplicated")
}

/// Chung–Lu power-law random graph with exponent `gamma > 2` and average
/// weight scaled so maximum expected degree ≈ `max_weight`.
///
/// Uses the Miller–Hagberg skipping sampler: expected `O(n + m)` time.
pub fn power_law(n: usize, gamma: f64, max_weight: f64, seed: u64) -> Graph {
    assert!(gamma > 2.0, "power law exponent must be > 2, got {gamma}");
    let mut rng = StdRng::seed_from_u64(seed);
    // Weights w_i = max_weight · (i+1)^(−1/(γ−1)), sorted descending.
    let alpha = 1.0 / (gamma - 1.0);
    let weights: Vec<f64> = (0..n)
        .map(|i| max_weight * ((i + 1) as f64).powf(-alpha))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut edges = Vec::new();
    for i in 0..n.saturating_sub(1) {
        let mut j = i + 1;
        let mut p = (weights[i] * weights[j] / total).min(1.0);
        while j < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.gen_range(0.0..1.0f64);
                let skip = ((1.0 - r).ln() / (1.0 - p).ln()).floor() as usize;
                j += skip;
            }
            if j >= n {
                break;
            }
            let q = (weights[i] * weights[j] / total).min(1.0);
            if rng.gen_range(0.0..1.0f64) < q / p {
                edges.push((i, j));
            }
            p = q;
            j += 1;
        }
    }
    Graph::from_edges(n, edges).expect("power law pairs are distinct")
}

/// Uniform random labelled tree on `n` nodes via a random Prüfer sequence.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges(2, [(0, 1)]).expect("single edge");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    // Min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &p in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("prufer invariant");
        edges.push((leaf, p));
        degree[p] -= 1;
        if degree[p] == 1 {
            leaves.push(std::cmp::Reverse(p));
        }
    }
    let std::cmp::Reverse(u) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(v) = leaves.pop().expect("two leaves remain");
    edges.push((u, v));
    Graph::from_edges(n, edges).expect("prufer decoding yields a tree")
}

/// Disjoint union of graphs, re-indexing nodes consecutively.
pub fn disjoint_union(parts: &[Graph]) -> Graph {
    let n: usize = parts.iter().map(|g| g.num_nodes()).sum();
    let mut builder = GraphBuilder::new(n);
    let mut base = 0usize;
    for g in parts {
        for e in g.edges() {
            let [u, v] = g.endpoints(e);
            builder.add_edge(
                NodeId::from(base + u.index()),
                NodeId::from(base + v.index()),
            );
        }
        base += g.num_nodes();
    }
    builder.build().expect("union of simple graphs is simple")
}

/// Isomorphic copy of `g` under the node permutation `perm`
/// (`perm[old] = new`). Edge ids follow the original edge order.
///
/// Useful for testing that algorithms depend only on structure + ids, not on
/// internal storage order.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..n`.
pub fn relabel(g: &Graph, perm: &[usize]) -> Graph {
    assert_eq!(perm.len(), g.num_nodes(), "permutation length mismatch");
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        assert!(p < perm.len() && !seen[p], "perm is not a permutation");
        seen[p] = true;
    }
    let edges = g
        .edge_list()
        .iter()
        .map(|[u, v]| (perm[u.index()], perm[v.index()]));
    Graph::from_edges(g.num_nodes(), edges).expect("relabelling preserves simplicity")
}

/// A uniformly random permutation of `0..n`, for use with [`relabel`].
pub fn random_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_families_have_expected_shape() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(cycle(5).max_degree(), 2);
        assert_eq!(complete(6).num_edges(), 15);
        assert_eq!(complete(6).max_degree(), 5);
        assert_eq!(complete_bipartite(3, 4).num_edges(), 12);
        assert_eq!(star(7).max_degree(), 7);
        assert_eq!(grid(4, 3).num_nodes(), 12);
        assert_eq!(grid(4, 3).num_edges(), 3 * 3 + 4 * 2);
        assert_eq!(torus(4, 4).num_edges(), 32);
        assert!(torus(4, 4).nodes().all(|v| torus(4, 4).degree(v) == 4));
        assert_eq!(hypercube(4).num_nodes(), 16);
        assert_eq!(hypercube(4).max_degree(), 4);
        assert_eq!(petersen().num_edges(), 15);
        assert!(petersen().nodes().all(|v| petersen().degree(v) == 3));
        assert_eq!(binary_tree(3).num_nodes(), 15);
        assert_eq!(binary_tree(3).num_edges(), 14);
        assert_eq!(caterpillar(4, 2).num_edges(), 3 + 8);
    }

    #[test]
    fn kronecker_is_deterministic_and_simple() {
        let a = kronecker(8, 4, 11);
        let b = kronecker(8, 4, 11);
        let c = kronecker(8, 4, 12);
        assert_eq!(a, b);
        assert_ne!(a.edge_list(), c.edge_list());
        assert_eq!(a.num_nodes(), 256);
        assert_eq!(a.num_edges(), 4 * 256, "ample id space: target reached");
        // RMAT skew: the max degree should clearly exceed the average.
        assert!(a.max_degree() > 2 * 4 * 2);
    }

    #[test]
    fn kronecker_saturated_corner_stays_total() {
        // scale 1 has one possible edge; an absurd edge factor must not hang.
        let g = kronecker(1, 1000, 3);
        assert_eq!(g.num_nodes(), 2);
        assert!(g.num_edges() <= 1);
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = gnp(100, 0.05, 42);
        let b = gnp(100, 0.05, 42);
        let c = gnp(100, 0.05, 43);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edge_list(), b.edge_list());
        assert_ne!(a.edge_list(), c.edge_list());
    }

    #[test]
    fn gnp_density_roughly_matches_p() {
        let n = 400;
        let p = 0.1;
        let g = gnp(n, p, 7);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let m = g.num_edges() as f64;
        assert!(
            (m - expected).abs() < 4.0 * expected.sqrt() + 40.0,
            "m={m} far from expected {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(20, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(20, 1.0, 1).num_edges(), 190);
    }

    #[test]
    fn gnm_has_exactly_m_edges() {
        let g = gnm(50, 100, 3);
        assert_eq!(g.num_edges(), 100);
    }

    #[test]
    fn random_regular_is_regular() {
        for (n, d, seed) in [(16, 3, 1), (20, 4, 2), (31, 6, 3), (10, 9, 4)] {
            let g = random_regular(n, d, seed);
            assert_eq!(g.num_edges(), n * d / 2);
            for v in g.nodes() {
                assert_eq!(g.degree(v), d, "node {v} in {n}-node {d}-regular");
            }
        }
    }

    #[test]
    fn random_regular_seeds_differ() {
        let a = random_regular(24, 3, 1);
        let b = random_regular(24, 3, 2);
        assert_ne!(a.edge_list(), b.edge_list());
    }

    #[test]
    fn random_regular_zero_degree() {
        let g = random_regular(8, 0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn bipartite_left_regular_degrees() {
        let g = random_bipartite_left_regular(10, 15, 4, 9);
        for u in 0..10usize {
            assert_eq!(g.degree(NodeId::from(u)), 4);
        }
        // Right nodes only connect to left nodes.
        for r in 10..25usize {
            for w in g.neighbors(NodeId::from(r)) {
                assert!(w.index() < 10);
            }
        }
    }

    #[test]
    fn power_law_is_simple_and_skewed() {
        let g = power_law(300, 2.5, 30.0, 11);
        assert!(g.num_edges() > 0);
        // Max degree should exceed the mean degree noticeably.
        let mean = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(g.max_degree() as f64 > mean, "power law should be skewed");
    }

    #[test]
    fn random_tree_is_tree() {
        for n in [2usize, 3, 10, 100] {
            let g = random_tree(n, 5);
            assert_eq!(g.num_edges(), n - 1);
            // Connected: BFS from 0 reaches all.
            let mut seen = vec![false; n];
            let mut stack = vec![NodeId(0)];
            seen[0] = true;
            while let Some(v) = stack.pop() {
                for w in g.neighbors(v) {
                    if !seen[w.index()] {
                        seen[w.index()] = true;
                        stack.push(w);
                    }
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "tree on {n} nodes must be connected"
            );
        }
    }

    #[test]
    fn disjoint_union_offsets_nodes() {
        let g = disjoint_union(&[path(3), cycle(3)]);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 2 + 3);
        assert!(g.edge_between(NodeId(2), NodeId(3)).is_none());
    }

    #[test]
    fn relabel_is_isomorphic() {
        let g = cycle(6);
        let perm = random_permutation(6, 99);
        let h = relabel(&g, &perm);
        assert_eq!(h.num_edges(), g.num_edges());
        for v in g.nodes() {
            assert_eq!(h.degree(NodeId::from(perm[v.index()])), g.degree(v));
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        let g = path(3);
        let _ = relabel(&g, &[0, 0, 1]);
    }
}
