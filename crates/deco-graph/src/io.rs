//! Graph serialization: human-editable edge lists and binary CSR snapshots.
//!
//! Two formats, two regimes:
//!
//! - **Plain text** (`n m` header + `m` edge lines, `#` comments): the
//!   small-case format. [`to_edge_list`]/[`parse_edge_list`] keep example
//!   inputs human-editable; [`read_edge_list`] is the streaming variant that
//!   parses straight off any [`BufRead`] so large text files are never held
//!   in memory twice.
//! - **Binary snapshot** (`DECOSNAP` magic + version + little-endian CSR
//!   arrays): the million-edge format. [`write_snapshot`] dumps the built
//!   CSR arrays verbatim; [`read_snapshot`] loads them back in O(read) plus
//!   one structural validation pass — no text parsing, no re-sorting, no
//!   adjacency reconstruction.
//!
//! ## Snapshot layout (version 1, all integers little-endian)
//!
//! ```text
//! offset  size       field
//! 0       8          magic  b"DECOSNAP"
//! 8       4          version  u32 (currently 1)
//! 12      8          n  u64 (node count)
//! 20      8          m  u64 (edge count)
//! 28      m × 8      edges       [u: u32, v: u32] per edge, u < v
//! …       (n+1) × 8  offsets     u64 prefix sums, offsets[n] == 2m
//! …       2m × 8     adjacency   [neighbor: u32, edge: u32] per port slot
//! …       2m × 4     back_ports  u32 mirror port per slot
//! ```
//!
//! The reader rejects anything incoherent — bad magic, unknown version,
//! truncation, trailing bytes, non-monotone offsets, out-of-range ids,
//! broken back-port involutions, duplicate edges — so a loaded [`Graph`]
//! carries exactly the invariants a built one does.

use crate::{Adjacent, EdgeId, Graph, GraphBuilder, NodeId};
use std::fmt;
use std::io::{BufRead, Read, Write};
use std::path::Path;

/// Error from [`parse_edge_list`] / [`read_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseGraphError {
    /// The header line `n m` is missing or malformed.
    BadHeader(String),
    /// An edge line is malformed.
    BadEdgeLine {
        /// 1-based line number of the offending line.
        line_no: usize,
        /// The offending line's text.
        line: String,
    },
    /// Declared edge count does not match the number of edge lines.
    EdgeCountMismatch {
        /// Edge count from the header.
        declared: usize,
        /// Number of edge lines actually present.
        found: usize,
    },
    /// The edges do not form a valid simple graph.
    InvalidGraph(crate::BuildGraphError),
    /// The underlying reader failed (streaming variant only; the message is
    /// the I/O error's rendering, kept as text so this enum stays `Eq`).
    Io(String),
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::BadHeader(l) => write!(f, "bad header line: {l:?}"),
            ParseGraphError::BadEdgeLine { line_no, line } => {
                write!(f, "bad edge on line {line_no}: {line:?}")
            }
            ParseGraphError::EdgeCountMismatch { declared, found } => {
                write!(f, "header declared {declared} edges but found {found}")
            }
            ParseGraphError::InvalidGraph(e) => write!(f, "invalid graph: {e}"),
            ParseGraphError::Io(e) => write!(f, "read failed: {e}"),
        }
    }
}

impl std::error::Error for ParseGraphError {}

impl From<crate::BuildGraphError> for ParseGraphError {
    fn from(e: crate::BuildGraphError) -> Self {
        ParseGraphError::InvalidGraph(e)
    }
}

/// Serializes `g` in the `n m` + edge-lines format.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = format!("{} {}\n", g.num_nodes(), g.num_edges());
    for [u, v] in g.edge_list() {
        out.push_str(&format!("{} {}\n", u.0, v.0));
    }
    out
}

/// Parses the `n m` + edge-lines format produced by [`to_edge_list`].
///
/// Equivalent to [`read_edge_list`] over the string's bytes; use the
/// streaming variant when the text comes from a file, so the whole file is
/// never buffered alongside the parsed edges.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed input or an invalid graph.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseGraphError> {
    read_edge_list(text.as_bytes())
}

/// Streaming parser for the `n m` + edge-lines format: consumes any
/// [`BufRead`] line by line, holding only the edge array — not the text —
/// in memory.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed input, an invalid graph, or a
/// failing reader ([`ParseGraphError::Io`]).
pub fn read_edge_list<R: BufRead>(mut reader: R) -> Result<Graph, ParseGraphError> {
    let mut line = String::new();
    let mut line_no = 0usize;
    let mut header: Option<(usize, usize)> = None;
    let mut builder = GraphBuilder::new(0);
    let mut found = 0usize;
    loop {
        line.clear();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| ParseGraphError::Io(e.to_string()))?;
        if read == 0 {
            break;
        }
        line_no += 1;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        match header {
            None => {
                let mut parts = text.split_whitespace();
                let bad = || ParseGraphError::BadHeader(text.into());
                let n: usize = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
                let m: usize = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
                if parts.next().is_some() {
                    return Err(bad());
                }
                header = Some((n, m));
                builder = GraphBuilder::with_capacity(n, m);
            }
            Some(_) => {
                let mut parts = text.split_whitespace();
                let bad = || ParseGraphError::BadEdgeLine {
                    line_no,
                    line: text.into(),
                };
                let u: u32 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
                let v: u32 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
                if parts.next().is_some() {
                    return Err(bad());
                }
                builder.add_edge(NodeId(u), NodeId(v));
                found += 1;
            }
        }
    }
    let (_, m) = header.ok_or_else(|| ParseGraphError::BadHeader("<empty input>".into()))?;
    if found != m {
        return Err(ParseGraphError::EdgeCountMismatch { declared: m, found });
    }
    Ok(builder.build()?)
}

/// Magic bytes opening every binary snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"DECOSNAP";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Error from [`read_snapshot`] / [`write_snapshot`].
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader or writer failed.
    Io(std::io::Error),
    /// The first 8 bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic([u8; 8]),
    /// The version field names a format this build does not understand.
    UnsupportedVersion(u32),
    /// The stream ended before the declared arrays were complete.
    Truncated {
        /// Which array (or header) was cut short.
        section: &'static str,
    },
    /// The arrays are structurally inconsistent; the message names the
    /// violated invariant.
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::BadMagic(m) => {
                write!(f, "not a graph snapshot (magic {m:02x?})")
            }
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot truncated in {section}")
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Writes `g` as a binary CSR snapshot (see the module docs for the layout).
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] if the writer fails.
pub fn write_snapshot<W: Write>(g: &Graph, mut w: W) -> Result<(), SnapshotError> {
    let (edges, offsets, adjacency, back_ports) = g.csr_parts();
    w.write_all(&SNAPSHOT_MAGIC)?;
    w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
    w.write_all(&(g.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    // Buffer each array into one contiguous byte run: four large writes
    // instead of millions of 4-byte syscall-sized ones.
    let mut buf = Vec::with_capacity(edges.len() * 8);
    for [u, v] in edges {
        buf.extend_from_slice(&u.0.to_le_bytes());
        buf.extend_from_slice(&v.0.to_le_bytes());
    }
    w.write_all(&buf)?;
    buf.clear();
    buf.reserve(offsets.len() * 8);
    for o in offsets {
        buf.extend_from_slice(&(*o as u64).to_le_bytes());
    }
    w.write_all(&buf)?;
    buf.clear();
    buf.reserve(adjacency.len() * 8);
    for a in adjacency {
        buf.extend_from_slice(&a.neighbor.0.to_le_bytes());
        buf.extend_from_slice(&a.edge.0.to_le_bytes());
    }
    w.write_all(&buf)?;
    buf.clear();
    buf.reserve(back_ports.len() * 4);
    for p in back_ports {
        buf.extend_from_slice(&p.to_le_bytes());
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads one section of `len` bytes, mapping EOF to a truncation report
/// that names the section.
fn read_section<R: Read>(
    r: &mut R,
    len: usize,
    section: &'static str,
) -> Result<Vec<u8>, SnapshotError> {
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated { section }
        } else {
            SnapshotError::Io(e)
        }
    })?;
    Ok(buf)
}

fn le_u32(chunk: &[u8]) -> u32 {
    u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"))
}

fn le_u64(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
}

/// Reads a binary CSR snapshot back into a [`Graph`], validating every
/// structural invariant the builder would have established.
///
/// The validation pass is O(n + m) integer work — magnitudes cheaper than
/// re-parsing text or re-deriving the CSR arrays — and is what lets the
/// loaded graph skip [`GraphBuilder`] entirely.
///
/// # Errors
///
/// Returns [`SnapshotError`] on I/O failure, bad magic, an unknown version,
/// truncation, trailing bytes, or any structural inconsistency.
pub fn read_snapshot<R: Read>(mut r: R) -> Result<Graph, SnapshotError> {
    let header = read_section(&mut r, 28, "header")?;
    let mut magic = [0u8; 8];
    magic.copy_from_slice(&header[..8]);
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = le_u32(&header[8..12]);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let n = usize::try_from(le_u64(&header[12..20]))
        .map_err(|_| SnapshotError::Malformed("node count exceeds address space"))?;
    let m = usize::try_from(le_u64(&header[20..28]))
        .map_err(|_| SnapshotError::Malformed("edge count exceeds address space"))?;
    if u64::try_from(n).unwrap() > u64::from(u32::MAX) {
        return Err(SnapshotError::Malformed("node count exceeds u32 id space"));
    }
    if u64::try_from(m).unwrap() > u64::from(u32::MAX) {
        return Err(SnapshotError::Malformed("edge count exceeds u32 id space"));
    }

    let edge_bytes = read_section(&mut r, m * 8, "edges")?;
    let mut edges: Vec<[NodeId; 2]> = Vec::with_capacity(m);
    for pair in edge_bytes.chunks_exact(8) {
        let u = le_u32(&pair[..4]);
        let v = le_u32(&pair[4..]);
        if u >= v {
            return Err(SnapshotError::Malformed(
                "edge endpoints not normalized (expected u < v)",
            ));
        }
        if v as usize >= n {
            return Err(SnapshotError::Malformed("edge endpoint out of range"));
        }
        edges.push([NodeId(u), NodeId(v)]);
    }

    let offset_bytes = read_section(&mut r, (n + 1) * 8, "offsets")?;
    let mut offsets: Vec<usize> = Vec::with_capacity(n + 1);
    for chunk in offset_bytes.chunks_exact(8) {
        let o = usize::try_from(le_u64(chunk))
            .map_err(|_| SnapshotError::Malformed("offset exceeds address space"))?;
        if let Some(prev) = offsets.last() {
            if o < *prev {
                return Err(SnapshotError::Malformed("offsets not monotone"));
            }
        } else if o != 0 {
            return Err(SnapshotError::Malformed("offsets[0] must be 0"));
        }
        offsets.push(o);
    }
    if offsets[n] != 2 * m {
        return Err(SnapshotError::Malformed("offsets[n] must equal 2m"));
    }

    let adj_bytes = read_section(&mut r, 2 * m * 8, "adjacency")?;
    let mut adjacency: Vec<Adjacent> = Vec::with_capacity(2 * m);
    for pair in adj_bytes.chunks_exact(8) {
        let neighbor = le_u32(&pair[..4]);
        let edge = le_u32(&pair[4..]);
        if neighbor as usize >= n {
            return Err(SnapshotError::Malformed("adjacency neighbor out of range"));
        }
        if edge as usize >= m {
            return Err(SnapshotError::Malformed("adjacency edge out of range"));
        }
        adjacency.push(Adjacent {
            neighbor: NodeId(neighbor),
            edge: EdgeId(edge),
        });
    }

    let bp_bytes = read_section(&mut r, 2 * m * 4, "back_ports")?;
    let back_ports: Vec<u32> = bp_bytes.chunks_exact(4).map(le_u32).collect();

    let mut trailing = [0u8; 1];
    match r.read(&mut trailing) {
        Ok(0) => {}
        Ok(_) => return Err(SnapshotError::Malformed("trailing bytes after arrays")),
        Err(e) => return Err(SnapshotError::Io(e)),
    }

    validate_csr(n, m, &edges, &offsets, &adjacency, &back_ports)?;
    Ok(Graph::from_csr_parts(edges, offsets, adjacency, back_ports))
}

/// Structural validation: every invariant `assemble_csr` establishes must
/// hold for the deserialized arrays before they become a [`Graph`].
fn validate_csr(
    n: usize,
    m: usize,
    edges: &[[NodeId; 2]],
    offsets: &[usize],
    adjacency: &[Adjacent],
    back_ports: &[u32],
) -> Result<(), SnapshotError> {
    debug_assert_eq!(adjacency.len(), 2 * m);
    debug_assert_eq!(back_ports.len(), 2 * m);
    // Each edge id must appear on exactly two port slots (one per endpoint).
    let mut slots_per_edge = vec![0u8; m];
    // Stamp sweep doubling as the duplicate-edge check, as in the builder.
    let mut stamp = vec![u32::MAX; n];
    for v in 0..n {
        let (start, end) = (offsets[v], offsets[v + 1]);
        for (j, (a, bp)) in adjacency[start..end]
            .iter()
            .zip(&back_ports[start..end])
            .enumerate()
        {
            let w = a.neighbor.index();
            if w == v {
                return Err(SnapshotError::Malformed("self-loop in adjacency"));
            }
            if stamp[w] == v as u32 {
                return Err(SnapshotError::Malformed("duplicate edge in adjacency"));
            }
            stamp[w] = v as u32;
            let [lo, hi] = edges[a.edge.index()];
            let (el, eh) = (lo.index(), hi.index());
            let (vl, vh) = if v < w { (v, w) } else { (w, v) };
            if (el, eh) != (vl, vh) {
                return Err(SnapshotError::Malformed(
                    "adjacency slot disagrees with its edge's endpoints",
                ));
            }
            let w_deg = offsets[w + 1] - offsets[w];
            let bp = *bp as usize;
            if bp >= w_deg {
                return Err(SnapshotError::Malformed("back port out of range"));
            }
            let mirror = &adjacency[offsets[w] + bp];
            if mirror.edge != a.edge || mirror.neighbor.index() != v {
                return Err(SnapshotError::Malformed("back port is not an involution"));
            }
            if back_ports[offsets[w] + bp] as usize != j {
                return Err(SnapshotError::Malformed("back port is not an involution"));
            }
            let count = &mut slots_per_edge[a.edge.index()];
            *count = count.saturating_add(1);
        }
    }
    if slots_per_edge.iter().any(|c| *c != 2) {
        return Err(SnapshotError::Malformed(
            "an edge id does not appear on exactly two port slots",
        ));
    }
    Ok(())
}

/// Writes `g` as a snapshot file at `path` (buffered).
///
/// # Errors
///
/// Same as [`write_snapshot`].
pub fn write_snapshot_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), SnapshotError> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write_snapshot(g, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Reads a snapshot file from `path` (buffered).
///
/// # Errors
///
/// Same as [`read_snapshot`].
pub fn read_snapshot_file<P: AsRef<Path>>(path: P) -> Result<Graph, SnapshotError> {
    let file = std::fs::File::open(path)?;
    read_snapshot(std::io::BufReader::new(file))
}

/// Reads an edge-list text file from `path`, streaming (buffered).
///
/// # Errors
///
/// Same as [`read_edge_list`].
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph, ParseGraphError> {
    let file = std::fs::File::open(path).map_err(|e| ParseGraphError::Io(e.to_string()))?;
    read_edge_list(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip() {
        let g = generators::petersen();
        let text = to_edge_list(&g);
        let h = parse_edge_list(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn streaming_matches_in_memory_parse() {
        let g = generators::gnp(60, 0.12, 7);
        let text = to_edge_list(&g);
        let streamed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g, streamed);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a graph\n\n3 2\n0 1\n# middle\n1 2\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            parse_edge_list("x y\n"),
            Err(ParseGraphError::BadHeader(_))
        ));
        assert!(matches!(
            parse_edge_list(""),
            Err(ParseGraphError::BadHeader(_))
        ));
        assert!(matches!(
            parse_edge_list("3 1 7\n0 1\n"),
            Err(ParseGraphError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_edge_line_rejected() {
        let err = parse_edge_list("2 1\n0\n").unwrap_err();
        assert!(matches!(err, ParseGraphError::BadEdgeLine { .. }));
    }

    #[test]
    fn count_mismatch_rejected() {
        let err = parse_edge_list("3 2\n0 1\n").unwrap_err();
        assert_eq!(
            err,
            ParseGraphError::EdgeCountMismatch {
                declared: 2,
                found: 1
            }
        );
    }

    #[test]
    fn invalid_graph_rejected() {
        let err = parse_edge_list("2 1\n0 0\n").unwrap_err();
        assert!(matches!(err, ParseGraphError::InvalidGraph(_)));
    }

    #[test]
    fn snapshot_roundtrip() {
        for g in [
            generators::petersen(),
            generators::cycle(17),
            generators::complete(9),
            Graph::empty(5),
            Graph::empty(0),
            generators::gnp(80, 0.1, 11),
        ] {
            let mut bytes = Vec::new();
            write_snapshot(&g, &mut bytes).unwrap();
            let h = read_snapshot(&bytes[..]).unwrap();
            assert_eq!(g, h);
        }
    }

    #[test]
    fn snapshot_rejects_bad_magic() {
        let mut bytes = Vec::new();
        write_snapshot(&generators::petersen(), &mut bytes).unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            read_snapshot(&bytes[..]),
            Err(SnapshotError::BadMagic(_))
        ));
    }

    #[test]
    fn snapshot_rejects_unknown_version() {
        let mut bytes = Vec::new();
        write_snapshot(&generators::petersen(), &mut bytes).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_snapshot(&bytes[..]),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn snapshot_rejects_truncation_at_every_section() {
        let mut bytes = Vec::new();
        write_snapshot(&generators::petersen(), &mut bytes).unwrap();
        // Cut the stream at a few strategic places: inside the header, the
        // edge array, and the final back-ports array.
        for cut in [4, 20, 40, bytes.len() - 3] {
            assert!(
                matches!(
                    read_snapshot(&bytes[..cut]),
                    Err(SnapshotError::Truncated { .. })
                ),
                "cut at {cut} must report truncation"
            );
        }
    }

    #[test]
    fn snapshot_rejects_trailing_bytes() {
        let mut bytes = Vec::new();
        write_snapshot(&generators::petersen(), &mut bytes).unwrap();
        bytes.push(0);
        assert!(matches!(
            read_snapshot(&bytes[..]),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn snapshot_rejects_corrupted_arrays() {
        let g = generators::petersen();
        let clean = {
            let mut b = Vec::new();
            write_snapshot(&g, &mut b).unwrap();
            b
        };
        // Flipping any single early array byte to an out-of-range value must
        // be caught by validation, not produce a silently wrong graph.
        let mut corrupt = clean.clone();
        corrupt[28] = 0xFF; // first edge endpoint -> out of range / denormalized
        assert!(matches!(
            read_snapshot(&corrupt[..]),
            Err(SnapshotError::Malformed(_))
        ));
        let adj_start = 28 + g.num_edges() * 8 + (g.num_nodes() + 1) * 8;
        let mut corrupt = clean.clone();
        corrupt[adj_start] ^= 0x01; // first adjacency neighbor id
        assert!(matches!(
            read_snapshot(&corrupt[..]),
            Err(SnapshotError::Malformed(_))
        ));
        let bp_start = adj_start + g.degree_sum() * 8;
        let mut corrupt = clean;
        corrupt[bp_start] ^= 0x01; // first back port
        assert!(matches!(
            read_snapshot(&corrupt[..]),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn snapshot_file_helpers_roundtrip() {
        let g = generators::gnp(40, 0.2, 3);
        let dir = std::env::temp_dir().join("deco-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.snap");
        write_snapshot_file(&g, &path).unwrap();
        let h = read_snapshot_file(&path).unwrap();
        assert_eq!(g, h);
        std::fs::remove_file(&path).ok();
    }
}
