//! Plain-text edge-list serialization.
//!
//! Format: first line `n m`, then `m` lines `u v`. Lines starting with `#`
//! are comments. This keeps example inputs human-editable without pulling in
//! a serialization framework.

use crate::{Graph, GraphBuilder, NodeId};
use std::fmt;

/// Error from [`parse_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseGraphError {
    /// The header line `n m` is missing or malformed.
    BadHeader(String),
    /// An edge line is malformed.
    BadEdgeLine {
        /// 1-based line number of the offending line.
        line_no: usize,
        /// The offending line's text.
        line: String,
    },
    /// Declared edge count does not match the number of edge lines.
    EdgeCountMismatch {
        /// Edge count from the header.
        declared: usize,
        /// Number of edge lines actually present.
        found: usize,
    },
    /// The edges do not form a valid simple graph.
    InvalidGraph(crate::BuildGraphError),
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::BadHeader(l) => write!(f, "bad header line: {l:?}"),
            ParseGraphError::BadEdgeLine { line_no, line } => {
                write!(f, "bad edge on line {line_no}: {line:?}")
            }
            ParseGraphError::EdgeCountMismatch { declared, found } => {
                write!(f, "header declared {declared} edges but found {found}")
            }
            ParseGraphError::InvalidGraph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseGraphError {}

impl From<crate::BuildGraphError> for ParseGraphError {
    fn from(e: crate::BuildGraphError) -> Self {
        ParseGraphError::InvalidGraph(e)
    }
}

/// Serializes `g` in the `n m` + edge-lines format.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = format!("{} {}\n", g.num_nodes(), g.num_edges());
    for [u, v] in g.edge_list() {
        out.push_str(&format!("{} {}\n", u.0, v.0));
    }
    out
}

/// Parses the `n m` + edge-lines format produced by [`to_edge_list`].
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed input or an invalid graph.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseGraphError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseGraphError::BadHeader("<empty input>".into()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseGraphError::BadHeader(header.into()))?;
    let m: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseGraphError::BadHeader(header.into()))?;
    if parts.next().is_some() {
        return Err(ParseGraphError::BadHeader(header.into()));
    }

    let mut builder = GraphBuilder::new(n);
    let mut found = 0usize;
    for (line_no, line) in lines {
        let mut parts = line.split_whitespace();
        let bad = || ParseGraphError::BadEdgeLine {
            line_no,
            line: line.into(),
        };
        let u: u32 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
        let v: u32 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
        if parts.next().is_some() {
            return Err(bad());
        }
        builder.add_edge(NodeId(u), NodeId(v));
        found += 1;
    }
    if found != m {
        return Err(ParseGraphError::EdgeCountMismatch { declared: m, found });
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip() {
        let g = generators::petersen();
        let text = to_edge_list(&g);
        let h = parse_edge_list(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a graph\n\n3 2\n0 1\n# middle\n1 2\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            parse_edge_list("x y\n"),
            Err(ParseGraphError::BadHeader(_))
        ));
        assert!(matches!(
            parse_edge_list(""),
            Err(ParseGraphError::BadHeader(_))
        ));
        assert!(matches!(
            parse_edge_list("3 1 7\n0 1\n"),
            Err(ParseGraphError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_edge_line_rejected() {
        let err = parse_edge_list("2 1\n0\n").unwrap_err();
        assert!(matches!(err, ParseGraphError::BadEdgeLine { .. }));
    }

    #[test]
    fn count_mismatch_rejected() {
        let err = parse_edge_list("3 2\n0 1\n").unwrap_err();
        assert_eq!(
            err,
            ParseGraphError::EdgeCountMismatch {
                declared: 2,
                found: 1
            }
        );
    }

    #[test]
    fn invalid_graph_rejected() {
        let err = parse_edge_list("2 1\n0 0\n").unwrap_err();
        assert!(matches!(err, ParseGraphError::InvalidGraph(_)));
    }
}
