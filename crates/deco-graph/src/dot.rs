//! Graphviz DOT export, used by the figure-reproduction examples.

use crate::coloring::EdgeColoring;
use crate::Graph;
use std::fmt::Write as _;

/// Palette of visually distinct X11 color names for DOT output.
const DOT_COLORS: &[&str] = &[
    "red",
    "blue",
    "green3",
    "orange",
    "purple",
    "brown",
    "cyan3",
    "magenta",
    "gold3",
    "gray40",
    "darkgreen",
    "navy",
    "salmon3",
    "turquoise4",
    "olive",
];

/// Renders `g` as an undirected Graphviz DOT string.
///
/// If `coloring` is given, colored edges are drawn with a per-color pen
/// color and labelled with the color index; uncolored edges are dashed.
pub fn to_dot(g: &Graph, name: &str, coloring: Option<&EdgeColoring>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(
        out,
        "  layout=neato; overlap=false; node [shape=circle, fontsize=10];"
    );
    for v in g.nodes() {
        let _ = writeln!(out, "  {} [label=\"{}\"];", v.0, v.0);
    }
    for e in g.edges() {
        let [u, v] = g.endpoints(e);
        match coloring.and_then(|c| c.get(e)) {
            Some(c) => {
                let color = DOT_COLORS[c as usize % DOT_COLORS.len()];
                let _ = writeln!(
                    out,
                    "  {} -- {} [color={color}, label=\"{c}\", fontcolor={color}, penwidth=2];",
                    u.0, v.0
                );
            }
            None => {
                let _ = writeln!(out, "  {} -- {} [style=dashed, color=gray];", u.0, v.0);
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::EdgeId;

    #[test]
    fn dot_contains_all_edges() {
        let g = generators::cycle(4);
        let dot = to_dot(&g, "c4", None);
        assert!(dot.starts_with("graph c4 {"));
        assert_eq!(dot.matches(" -- ").count(), 4);
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn dot_renders_colors() {
        let g = generators::path(3);
        let mut c = EdgeColoring::uncolored(2);
        c.set(EdgeId(0), 0);
        let dot = to_dot(&g, "p3", Some(&c));
        assert!(dot.contains("label=\"0\""));
        assert!(dot.contains("style=dashed"));
    }
}
