//! Mutable graphs for churn workloads: edge insert/remove with
//! CSR-compatible views.
//!
//! Every engine in this workspace executes over the immutable CSR
//! [`Graph`] — flat arenas, mirror ports, dense edge ids. A production
//! scheduler, though, faces link arrivals and removals every second, and
//! rebuilding the CSR per update only to answer "what are `v`'s neighbors
//! now?" wastes the locality the paper's machinery buys. [`MutableGraph`]
//! splits the two concerns:
//!
//! * **The live overlay** answers adjacency queries in O(deg): a live edge
//!   vector (whose order *is* the edge-id order of the next snapshot), a
//!   per-node neighbor overlay, an endpoint-keyed index for O(1) membership,
//!   and a degree histogram for O(1) amortized Δ tracking. Inserts append;
//!   removals swap-remove — both O(deg) and deterministic, so a replayed
//!   trace reproduces the same overlay bit for bit.
//! * **The CSR view** is rebuilt on demand through the shared bulk
//!   [`Builder`] (degree-count → prefix-sum → scatter, back-port coherence
//!   included) and cached until the next mutation: [`MutableGraph::snapshot`]
//!   is O(n + m) after a mutation and O(1) until the next one.
//!
//! Edge validation is the *shared* rule of the builders
//! ([`BuildGraphError`]): self-loops and out-of-range endpoints are rejected
//! at the mutation site, and duplicates — global by nature — are rejected
//! against the live index instead of a deferred sweep.
//!
//! ```
//! use deco_graph::{EdgeUpdate, Graph, MutableGraph};
//!
//! # fn main() -> Result<(), deco_graph::MutateError> {
//! let g = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
//! let mut m = MutableGraph::from_graph(&g);
//! m.apply(EdgeUpdate::insert(2usize, 3usize))?;
//! m.apply(EdgeUpdate::remove(0usize, 1usize))?;
//! assert_eq!(m.num_edges(), 2);
//! assert!(m.has_edge(2u32.into(), 3u32.into()));
//! let snap = m.snapshot(); // CSR view, cached until the next mutation
//! assert_eq!(snap.num_edges(), 2);
//! # Ok(())
//! # }
//! ```

use crate::graph::validate_edge;
use crate::hashing::DetHashMap;
use crate::{BuildGraphError, Builder, Graph, NodeId};
use std::fmt;

/// One edge mutation, the unit a churn trace replays and a
/// [`Session`](https://docs.rs/deco) applies. Endpoints are stored
/// normalized (smaller node id first) so an update compares and hashes
/// independently of the order the caller named them in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeUpdate {
    /// Insert the undirected edge `{u, v}`.
    Insert {
        /// Smaller endpoint.
        u: NodeId,
        /// Larger endpoint.
        v: NodeId,
    },
    /// Remove the undirected edge `{u, v}`.
    Remove {
        /// Smaller endpoint.
        u: NodeId,
        /// Larger endpoint.
        v: NodeId,
    },
}

impl EdgeUpdate {
    /// An insert of `{u, v}`, endpoints normalized.
    pub fn insert(u: impl Into<NodeId>, v: impl Into<NodeId>) -> EdgeUpdate {
        let (u, v) = ordered(u.into(), v.into());
        EdgeUpdate::Insert { u, v }
    }

    /// A removal of `{u, v}`, endpoints normalized.
    pub fn remove(u: impl Into<NodeId>, v: impl Into<NodeId>) -> EdgeUpdate {
        let (u, v) = ordered(u.into(), v.into());
        EdgeUpdate::Remove { u, v }
    }

    /// The affected endpoints, smaller first.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            EdgeUpdate::Insert { u, v } | EdgeUpdate::Remove { u, v } => (u, v),
        }
    }

    /// Whether this update is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, EdgeUpdate::Insert { .. })
    }

    /// The inverse update: the one that undoes this one.
    pub fn inverse(&self) -> EdgeUpdate {
        match *self {
            EdgeUpdate::Insert { u, v } => EdgeUpdate::Remove { u, v },
            EdgeUpdate::Remove { u, v } => EdgeUpdate::Insert { u, v },
        }
    }
}

impl fmt::Display for EdgeUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeUpdate::Insert { u, v } => write!(f, "+{{{u}, {v}}}"),
            EdgeUpdate::Remove { u, v } => write!(f, "-{{{u}, {v}}}"),
        }
    }
}

fn ordered(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u.0 <= v.0 {
        (u, v)
    } else {
        (v, u)
    }
}

/// Error produced when a mutation is rejected. The graph is unchanged
/// whenever a mutation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateError {
    /// The edge failed the shared builder validation: a self-loop, an
    /// out-of-range endpoint, or (for inserts) a duplicate of a live edge.
    Invalid(BuildGraphError),
    /// A removal named an edge that is not in the graph.
    MissingEdge {
        /// Smaller endpoint of the missing edge.
        u: NodeId,
        /// Larger endpoint of the missing edge.
        v: NodeId,
    },
}

impl fmt::Display for MutateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutateError::Invalid(e) => e.fmt(f),
            MutateError::MissingEdge { u, v } => {
                write!(f, "edge {{{u}, {v}}} is not in the graph")
            }
        }
    }
}

impl std::error::Error for MutateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MutateError::Invalid(e) => Some(e),
            MutateError::MissingEdge { .. } => None,
        }
    }
}

impl From<BuildGraphError> for MutateError {
    fn from(e: BuildGraphError) -> MutateError {
        MutateError::Invalid(e)
    }
}

/// An undirected simple graph that supports edge insertion and removal,
/// with a cached CSR snapshot for everything downstream that consumes
/// [`Graph`] (engines, validators, the solver). See the module docs for
/// the overlay/view split.
#[derive(Debug, Clone)]
pub struct MutableGraph {
    n: usize,
    /// Live edges in snapshot edge-id order: inserts append, removals
    /// swap-remove (deterministic, O(1) position fix-up via `index`).
    edges: Vec<[NodeId; 2]>,
    /// Normalized endpoints → position in `edges`.
    index: DetHashMap<(u32, u32), usize>,
    /// Per-node live neighbor overlay (unordered within a node).
    adj: Vec<Vec<NodeId>>,
    /// `degree_hist[d]` = number of nodes with degree `d`; tracks Δ in
    /// O(1) amortized without an O(n) rescan per update.
    degree_hist: Vec<usize>,
    max_degree: usize,
    /// Cached CSR view; invalidated by every successful mutation.
    snapshot: Option<Graph>,
    version: u64,
}

impl MutableGraph {
    /// A mutable graph on `n` isolated nodes.
    pub fn new(n: usize) -> MutableGraph {
        MutableGraph {
            n,
            edges: Vec::new(),
            index: DetHashMap::default(),
            adj: vec![Vec::new(); n],
            degree_hist: vec![n],
            max_degree: 0,
            snapshot: None,
            version: 0,
        }
    }

    /// Builds the overlay from an existing CSR graph. The first
    /// [`MutableGraph::snapshot`] after no mutations reproduces `g`'s CSR
    /// digest exactly (same edge-id order, same port order).
    pub fn from_graph(g: &Graph) -> MutableGraph {
        let mut m = MutableGraph::new(g.num_nodes());
        for &[u, v] in g.edge_list() {
            m.insert_edge(u, v).expect("a valid Graph has valid edges");
        }
        m.snapshot = Some(g.clone());
        m.version = 0; // the seeding replay is not part of the history
        m
    }

    /// Number of nodes `n` (fixed for the life of the graph).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `v` in the live overlay.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Maximum degree Δ of the live overlay (0 for an edgeless graph).
    /// O(1): maintained through the degree histogram.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Whether the edge `{u, v}` is live. O(1).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = ordered(u, v);
        self.index.contains_key(&(a.0, b.0))
    }

    /// The live neighbors of `v` (overlay order: insertion order with
    /// swap-remove holes — deterministic for a given mutation sequence,
    /// but not sorted).
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v.index()]
    }

    /// The live edges in snapshot edge-id order.
    pub fn edge_list(&self) -> &[[NodeId; 2]] {
        &self.edges
    }

    /// Counts each successful mutation; two overlays with equal histories
    /// have equal versions.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Inserts the edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// [`MutateError::Invalid`] via the shared builder validation
    /// (self-loop, out-of-range) or when the edge is already live
    /// ([`BuildGraphError::DuplicateEdge`]).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), MutateError> {
        let [a, b] = validate_edge(self.n, u, v)?;
        if self.index.contains_key(&(a.0, b.0)) {
            return Err(BuildGraphError::DuplicateEdge { u: a, v: b }.into());
        }
        self.index.insert((a.0, b.0), self.edges.len());
        self.edges.push([a, b]);
        for (x, y) in [(a, b), (b, a)] {
            let d = self.adj[x.index()].len();
            self.adj[x.index()].push(y);
            self.bump_degree(d, d + 1);
        }
        self.touch();
        Ok(())
    }

    /// Removes the edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// [`MutateError::Invalid`] if the endpoints fail the shared
    /// validation, [`MutateError::MissingEdge`] if the edge is not live.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), MutateError> {
        let [a, b] = validate_edge(self.n, u, v)?;
        let Some(pos) = self.index.remove(&(a.0, b.0)) else {
            return Err(MutateError::MissingEdge { u: a, v: b });
        };
        self.edges.swap_remove(pos);
        if let Some(&[su, sv]) = self.edges.get(pos) {
            self.index.insert((su.0, sv.0), pos);
        }
        for (x, y) in [(a, b), (b, a)] {
            let list = &mut self.adj[x.index()];
            let at = list
                .iter()
                .position(|&w| w == y)
                .expect("index and adjacency agree");
            list.swap_remove(at);
            let d = list.len();
            self.bump_degree(d + 1, d);
        }
        self.touch();
        Ok(())
    }

    /// Applies one [`EdgeUpdate`].
    ///
    /// # Errors
    ///
    /// Same as [`MutableGraph::insert_edge`] / [`MutableGraph::remove_edge`].
    pub fn apply(&mut self, update: EdgeUpdate) -> Result<(), MutateError> {
        match update {
            EdgeUpdate::Insert { u, v } => self.insert_edge(u, v),
            EdgeUpdate::Remove { u, v } => self.remove_edge(u, v),
        }
    }

    /// The CSR view of the live overlay, rebuilt through the shared bulk
    /// [`Builder`] on the first call after a mutation and cached until the
    /// next one. Edge ids follow [`MutableGraph::edge_list`] order;
    /// back-port coherence comes from the builder, same as any other
    /// [`Graph`].
    pub fn snapshot(&mut self) -> &Graph {
        if self.snapshot.is_none() {
            self.snapshot = Some(self.build_csr());
        }
        self.snapshot.as_ref().expect("just built")
    }

    /// A freshly built CSR view, ignoring (and not touching) the cache.
    pub fn to_graph(&self) -> Graph {
        self.build_csr()
    }

    /// Consumes the overlay, returning the final CSR view (the cached
    /// snapshot when it is current).
    pub fn into_graph(mut self) -> Graph {
        match self.snapshot.take() {
            Some(g) => g,
            None => self.build_csr(),
        }
    }

    fn build_csr(&self) -> Graph {
        let mut b = Builder::with_capacity(self.n, self.edges.len());
        for &[u, v] in &self.edges {
            b.add_edge(u.index(), v.index())
                .expect("live edges are validated");
        }
        b.build().expect("live index keeps edges duplicate-free")
    }

    fn bump_degree(&mut self, from: usize, to: usize) {
        if self.degree_hist.len() <= from.max(to) {
            self.degree_hist.resize(from.max(to) + 1, 0);
        }
        self.degree_hist[from] -= 1;
        self.degree_hist[to] += 1;
        if to > self.max_degree {
            self.max_degree = to;
        } else {
            while self.max_degree > 0 && self.degree_hist[self.max_degree] == 0 {
                self.max_degree -= 1;
            }
        }
    }

    fn touch(&mut self) {
        self.snapshot = None;
        self.version += 1;
    }
}

impl From<Graph> for MutableGraph {
    fn from(g: Graph) -> MutableGraph {
        MutableGraph::from_graph(&g)
    }
}

impl fmt::Display for MutableGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MutableGraph(n={}, m={}, Δ={}, v{})",
            self.n,
            self.num_edges(),
            self.max_degree(),
            self.version
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    type Digest = (Vec<[u32; 2]>, Vec<Vec<(u32, u32)>>, Vec<Vec<u32>>);

    fn digest(g: &Graph) -> Digest {
        let edges = g.edge_list().iter().map(|[u, v]| [u.0, v.0]).collect();
        let adjacency = g
            .nodes()
            .map(|v| {
                g.adjacent(v)
                    .iter()
                    .map(|a| (a.neighbor.0, a.edge.0))
                    .collect()
            })
            .collect();
        let back_ports = g.nodes().map(|v| g.back_ports(v).to_vec()).collect();
        (edges, adjacency, back_ports)
    }

    #[test]
    fn from_graph_round_trips_without_mutations() {
        let g = generators::random_regular(24, 4, 3);
        let mut m = MutableGraph::from_graph(&g);
        assert_eq!(m.num_edges(), g.num_edges());
        assert_eq!(m.max_degree(), g.max_degree());
        assert_eq!(digest(m.snapshot()), digest(&g));
        assert_eq!(
            digest(&MutableGraph::from_graph(&g).into_graph()),
            digest(&g)
        );
    }

    #[test]
    fn insert_then_remove_restores_the_csr_digest() {
        let g = generators::gnp(20, 0.2, 5);
        let before = digest(&g);
        let mut m = MutableGraph::from_graph(&g);
        // Find a non-edge deterministically.
        let (u, v) = (0..20u32)
            .flat_map(|u| (u + 1..20u32).map(move |v| (u, v)))
            .find(|&(u, v)| !m.has_edge(NodeId(u), NodeId(v)))
            .expect("gnp(0.2) is not complete");
        m.insert_edge(NodeId(u), NodeId(v)).unwrap();
        assert_ne!(digest(m.snapshot()), before);
        m.remove_edge(NodeId(v), NodeId(u)).unwrap(); // reversed endpoints fine
        assert_eq!(digest(m.snapshot()), before);
        assert_eq!(m.version(), 2);
    }

    #[test]
    fn shared_validation_rejects_loops_range_and_duplicates() {
        let mut m = MutableGraph::new(3);
        assert_eq!(
            m.insert_edge(NodeId(1), NodeId(1)),
            Err(MutateError::Invalid(BuildGraphError::SelfLoop {
                node: NodeId(1)
            }))
        );
        assert!(matches!(
            m.insert_edge(NodeId(0), NodeId(9)),
            Err(MutateError::Invalid(BuildGraphError::NodeOutOfRange { .. }))
        ));
        m.insert_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(
            m.insert_edge(NodeId(1), NodeId(0)),
            Err(MutateError::Invalid(BuildGraphError::DuplicateEdge {
                u: NodeId(0),
                v: NodeId(1)
            }))
        );
        assert_eq!(
            m.remove_edge(NodeId(0), NodeId(2)),
            Err(MutateError::MissingEdge {
                u: NodeId(0),
                v: NodeId(2)
            })
        );
        // Errors leave the graph unchanged.
        assert_eq!(m.num_edges(), 1);
        assert_eq!(m.version(), 1);
    }

    #[test]
    fn degree_and_max_degree_track_mutations() {
        let mut m = MutableGraph::new(5);
        m.insert_edge(NodeId(0), NodeId(1)).unwrap();
        m.insert_edge(NodeId(0), NodeId(2)).unwrap();
        m.insert_edge(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(m.degree(NodeId(0)), 3);
        assert_eq!(m.max_degree(), 3);
        m.remove_edge(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(m.max_degree(), 2);
        m.remove_edge(NodeId(0), NodeId(1)).unwrap();
        m.remove_edge(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(m.max_degree(), 0);
        assert_eq!(m.num_edges(), 0);
    }

    #[test]
    fn apply_and_inverse_compose_to_identity() {
        let g = generators::cycle(8);
        let before = digest(&g);
        let mut m = MutableGraph::from_graph(&g);
        let up = EdgeUpdate::insert(0usize, 4usize);
        m.apply(up).unwrap();
        m.apply(up.inverse()).unwrap();
        assert_eq!(digest(&m.to_graph()), before);
        assert_eq!(up.inverse().inverse(), up);
        assert!(up.is_insert() && !up.inverse().is_insert());
        assert_eq!(up.endpoints(), (NodeId(0), NodeId(4)));
    }

    #[test]
    fn snapshot_is_cached_until_the_next_mutation() {
        let mut m = MutableGraph::from_graph(&generators::path(4));
        let a = m.snapshot() as *const Graph;
        let b = m.snapshot() as *const Graph;
        assert_eq!(a, b, "no mutation, no rebuild");
        m.insert_edge(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(m.snapshot().num_edges(), 4);
    }

    #[test]
    fn update_display_and_errors_format() {
        assert_eq!(EdgeUpdate::insert(3usize, 1usize).to_string(), "+{v1, v3}");
        assert_eq!(EdgeUpdate::remove(1usize, 3usize).to_string(), "-{v1, v3}");
        let e = MutateError::MissingEdge {
            u: NodeId(1),
            v: NodeId(3),
        };
        assert!(e.to_string().contains("not in the graph"));
        let w: MutateError = BuildGraphError::SelfLoop { node: NodeId(2) }.into();
        assert!(w.to_string().contains("self-loop"));
    }

    #[test]
    fn heavy_churn_stays_coherent_with_a_rebuilt_reference() {
        // Replay a long deterministic trace and cross-check the overlay's
        // queries against a from-scratch CSR rebuild at checkpoints.
        let mut m = MutableGraph::new(12);
        let mut reference: Vec<(u32, u32)> = Vec::new();
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for step in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 33) % 12;
            let v = (state >> 13) % 12;
            if u == v {
                continue;
            }
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            let (a, b) = (a as u32, b as u32);
            if reference.contains(&(a, b)) {
                m.remove_edge(NodeId(a), NodeId(b)).unwrap();
                reference.retain(|&e| e != (a, b));
            } else {
                m.insert_edge(NodeId(a), NodeId(b)).unwrap();
                reference.push((a, b));
            }
            if step % 50 == 0 {
                let snap = m.to_graph();
                assert_eq!(snap.num_edges(), reference.len());
                assert_eq!(snap.max_degree(), m.max_degree());
                for &(a, b) in &reference {
                    assert!(snap.edge_between(NodeId(a), NodeId(b)).is_some());
                }
            }
        }
        assert_eq!(m.num_edges(), reference.len());
    }
}
