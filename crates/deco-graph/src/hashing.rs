//! Deterministic hashing for platform-stable seeded workloads.
//!
//! `std::collections::HashSet`'s default `RandomState` draws a fresh sip-hash
//! key per process. Membership answers are hasher-independent, but anything
//! that observes iteration order — or that we may later want to snapshot,
//! shard, or diff across machines — is not. Every seeded construction in this
//! workspace therefore uses these fixed-key FxHash-style containers, so a
//! given seed produces bit-identical artifacts on every platform and run.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiply-xor hasher with a fixed (zero) initial state.
///
/// Not DoS-resistant — inputs here are trusted simulation data, and
/// determinism is worth more than adversarial collision resistance.
#[derive(Debug, Default, Clone)]
pub struct DetHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state.rotate_left(5) ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.state = (self.state.rotate_left(5) ^ x).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// Build-hasher producing [`DetHasher`]s (fixed key, no per-process state).
pub type DetBuildHasher = BuildHasherDefault<DetHasher>;

/// A `HashSet` with deterministic, platform-stable hashing.
pub type DetHashSet<T> = HashSet<T, DetBuildHasher>;

/// A `HashMap` with deterministic, platform-stable hashing.
pub type DetHashMap<K, V> = HashMap<K, V, DetBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_iteration_order() {
        let build = |xs: &[u64]| {
            let mut s: DetHashSet<u64> = DetHashSet::default();
            s.extend(xs.iter().copied());
            s.into_iter().collect::<Vec<_>>()
        };
        let a = build(&[9, 1, 8, 2, 7, 3, 100, 55]);
        let b = build(&[9, 1, 8, 2, 7, 3, 100, 55]);
        assert_eq!(a, b, "iteration order must be reproducible");
    }

    #[test]
    fn map_behaves_like_a_map() {
        let mut m: DetHashMap<u32, &str> = DetHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }
}
