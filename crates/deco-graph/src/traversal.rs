//! Breadth-first traversal utilities: distances, components, balls.
//!
//! The locality verifier in `deco-local` needs radius-`r` balls (a `T`-round
//! LOCAL algorithm's output at `v` is a function of the ball `B(v, T)`), and
//! several tests need connectivity/bipartiteness checks.

use crate::{EdgeId, Graph, NodeId};
use std::collections::VecDeque;

/// BFS distances from `source`; unreachable nodes get `usize::MAX`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for w in g.neighbors(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Connected components; returns `(component_id_per_node, component_count)`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let mut comp = vec![usize::MAX; g.num_nodes()];
    let mut count = 0;
    for s in g.nodes() {
        if comp[s.index()] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        comp[s.index()] = count;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for w in g.neighbors(v) {
                if comp[w.index()] == usize::MAX {
                    comp[w.index()] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Whether `g` is connected (vacuously true for `n ≤ 1`).
pub fn is_connected(g: &Graph) -> bool {
    g.num_nodes() <= 1 || connected_components(g).1 == 1
}

/// Whether `g` is bipartite; if so, returns one valid two-sided partition.
pub fn bipartition(g: &Graph) -> Option<Vec<bool>> {
    let mut side = vec![None; g.num_nodes()];
    for s in g.nodes() {
        if side[s.index()].is_some() {
            continue;
        }
        side[s.index()] = Some(false);
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            let sv = side[v.index()].expect("queued nodes are assigned");
            for w in g.neighbors(v) {
                match side[w.index()] {
                    None => {
                        side[w.index()] = Some(!sv);
                        queue.push_back(w);
                    }
                    Some(sw) if sw == sv => return None,
                    Some(_) => {}
                }
            }
        }
    }
    Some(side.into_iter().map(|s| s.unwrap_or(false)).collect())
}

/// The set of nodes within distance `r` of `center` (includes `center`).
pub fn ball_nodes(g: &Graph, center: NodeId, r: usize) -> Vec<NodeId> {
    let dist = bfs_distances(g, center);
    g.nodes().filter(|v| dist[v.index()] <= r).collect()
}

/// The set of edges with both endpoints within distance `r` of `center`.
///
/// This is the edge set of the subgraph a node can learn in `r` LOCAL rounds.
pub fn ball_edges(g: &Graph, center: NodeId, r: usize) -> Vec<EdgeId> {
    let dist = bfs_distances(g, center);
    g.edges()
        .filter(|&e| {
            let [u, v] = g.endpoints(e);
            dist[u.index()] <= r && dist[v.index()] <= r
        })
        .collect()
}

/// Diameter of a connected graph; `None` if disconnected or `n == 0`.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.num_nodes() == 0 || !is_connected(g) {
        return None;
    }
    let mut best = 0;
    for v in g.nodes() {
        let d = bfs_distances(g, v);
        let far = d.into_iter().max().expect("nonempty");
        best = best.max(far);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn components_of_union() {
        let g = generators::disjoint_union(&[generators::path(3), generators::cycle(4)]);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert!(!is_connected(&g));
        assert!(is_connected(&generators::cycle(4)));
    }

    #[test]
    fn bipartite_detection() {
        assert!(bipartition(&generators::cycle(4)).is_some());
        assert!(bipartition(&generators::cycle(5)).is_none());
        assert!(bipartition(&generators::complete_bipartite(3, 3)).is_some());
        assert!(bipartition(&generators::complete(3)).is_none());
        let side = bipartition(&generators::grid(3, 3)).expect("grids are bipartite");
        let g = generators::grid(3, 3);
        for e in g.edges() {
            let [u, v] = g.endpoints(e);
            assert_ne!(side[u.index()], side[v.index()]);
        }
    }

    #[test]
    fn balls_grow_with_radius() {
        let g = generators::path(7);
        assert_eq!(ball_nodes(&g, NodeId(3), 0), vec![NodeId(3)]);
        assert_eq!(ball_nodes(&g, NodeId(3), 1).len(), 3);
        assert_eq!(ball_nodes(&g, NodeId(3), 2).len(), 5);
        assert_eq!(ball_edges(&g, NodeId(3), 1).len(), 2);
    }

    #[test]
    fn diameter_of_cycle() {
        assert_eq!(diameter(&generators::cycle(8)), Some(4));
        assert_eq!(diameter(&generators::path(5)), Some(4));
        let disconnected = generators::disjoint_union(&[generators::path(2), generators::path(2)]);
        assert_eq!(diameter(&disconnected), None);
    }
}
