//! Node-range partitions and edge cuts — the graph-side half of sharding.
//!
//! A *partition* here is a tiling of the dense node index space `0..n` into
//! contiguous ranges, one per part (shard). Contiguity is not a limitation
//! but a design choice shared with the engine's degree-balanced thread
//! ranges: a part is then describable by two integers, ownership lookup is
//! a binary search over `parts + 1` boundaries, and a part's CSR slot range
//! is itself contiguous — which is what lets a shard's mailbox arena be a
//! plain slice of the global one.
//!
//! An edge is *cut* when its endpoints fall into different parts. Cut edges
//! are exactly the communication a sharded executor must exchange across
//! part boundaries each round; everything else stays part-local. The
//! helpers here are deliberately small and deterministic — the engine's
//! `ShardPlan` builds its ghost-port tables on top of them, and the
//! pinned-digest regression tests over there assume these functions are
//! pure functions of their inputs.
//!
//! ```
//! use deco_graph::{generators, partition::RangeOwner};
//!
//! let g = generators::cycle(10);
//! let owner = RangeOwner::new(&[0..5, 5..10]);
//! let cut = deco_graph::partition::cut_edges(&g, &owner);
//! // A cycle split into two arcs is cut at exactly the two arc boundaries.
//! assert_eq!(cut.len(), 2);
//! ```

use crate::{EdgeId, Graph, NodeId};
use std::ops::Range;

/// Ownership lookup for a contiguous range partition of `0..n`: maps a node
/// to the index of the part whose range contains it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeOwner {
    /// Part boundaries: part `p` owns `bounds[p]..bounds[p + 1]`.
    bounds: Vec<usize>,
}

impl RangeOwner {
    /// Builds the lookup from ranges that tile `0..n` consecutively
    /// (the shape `split_by_weight`-style partitioners produce).
    ///
    /// # Panics
    ///
    /// Panics if the ranges are not consecutive starting at 0.
    pub fn new(ranges: &[Range<usize>]) -> RangeOwner {
        let mut bounds = Vec::with_capacity(ranges.len() + 1);
        bounds.push(0);
        for r in ranges {
            assert_eq!(
                r.start,
                *bounds.last().expect("bounds is never empty"),
                "ranges must tile the index space consecutively"
            );
            bounds.push(r.end);
        }
        RangeOwner { bounds }
    }

    /// Number of parts.
    #[inline]
    pub fn parts(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The node range of part `p`.
    #[inline]
    pub fn range(&self, p: usize) -> Range<usize> {
        self.bounds[p]..self.bounds[p + 1]
    }

    /// The part owning node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the tiled index space.
    #[inline]
    pub fn owner(&self, v: NodeId) -> usize {
        let i = v.index();
        assert!(
            i < *self.bounds.last().expect("bounds is never empty"),
            "node {i} outside the partitioned index space"
        );
        // bounds is strictly increasing after index 0; partition_point finds
        // the first boundary beyond i, whose predecessor's part owns i.
        self.bounds.partition_point(|&b| b <= i) - 1
    }

    /// Total number of nodes tiled.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        *self.bounds.last().expect("bounds is never empty")
    }
}

/// The edges of `g` whose endpoints belong to different parts, in edge-id
/// order. Deterministic: a pure function of the graph and the partition.
pub fn cut_edges(g: &Graph, owner: &RangeOwner) -> Vec<EdgeId> {
    g.edges()
        .filter(|&e| {
            let [u, v] = g.endpoints(e);
            owner.owner(u) != owner.owner(v)
        })
        .collect()
}

/// Fraction of edges that are cut, in `[0, 1]`; `0.0` for edgeless graphs.
pub fn cut_fraction(g: &Graph, owner: &RangeOwner) -> f64 {
    if g.num_edges() == 0 {
        return 0.0;
    }
    cut_edges(g, owner).len() as f64 / g.num_edges() as f64
}

/// Per-node degree weights, the balance criterion shared by the engine's
/// thread ranges and the shard partitioner: a part's weight is the number
/// of mailbox slots (ports) it owns, which tracks both its per-round send
/// and receive work.
pub fn degree_weights(g: &Graph) -> Vec<usize> {
    g.nodes().map(|v| g.degree(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn owner_maps_every_node_to_its_range() {
        let owner = RangeOwner::new(&[0..3, 3..4, 4..9]);
        assert_eq!(owner.parts(), 3);
        assert_eq!(owner.num_nodes(), 9);
        for v in 0..9usize {
            let p = owner.owner(NodeId(v as u32));
            assert!(owner.range(p).contains(&v), "node {v} in part {p}");
        }
        assert_eq!(owner.owner(NodeId(0)), 0);
        assert_eq!(owner.owner(NodeId(3)), 1);
        assert_eq!(owner.owner(NodeId(8)), 2);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // one part range, not indices
    fn single_part_owns_everything() {
        let owner = RangeOwner::new(&[0..7]);
        assert_eq!(owner.parts(), 1);
        for v in 0..7u32 {
            assert_eq!(owner.owner(NodeId(v)), 0);
        }
    }

    #[test]
    #[should_panic(expected = "consecutively")]
    fn gaps_are_rejected() {
        let _ = RangeOwner::new(&[0..2, 3..5]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    #[allow(clippy::single_range_in_vec_init)] // one part range, not indices
    fn out_of_space_nodes_are_rejected() {
        let owner = RangeOwner::new(&[0..2]);
        let _ = owner.owner(NodeId(2));
    }

    #[test]
    fn cycle_cut_is_the_two_arc_boundaries() {
        let g = generators::cycle(12);
        let owner = RangeOwner::new(&[0..6, 6..12]);
        let cut = cut_edges(&g, &owner);
        assert_eq!(cut.len(), 2);
        for e in cut {
            let [u, v] = g.endpoints(e);
            assert_ne!(owner.owner(u), owner.owner(v));
        }
        assert!((cut_fraction(&g, &owner) - 2.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_cut_counts_cross_pairs() {
        let g = generators::complete(6);
        let owner = RangeOwner::new(&[0..2, 2..6]);
        // Cross edges: 2 * 4.
        assert_eq!(cut_edges(&g, &owner).len(), 8);
    }

    #[test]
    fn edgeless_graph_has_zero_cut_fraction() {
        let g = Graph::empty(4);
        let owner = RangeOwner::new(&[0..2, 2..4]);
        assert!(cut_edges(&g, &owner).is_empty());
        assert_eq!(cut_fraction(&g, &owner), 0.0);
    }

    #[test]
    fn degree_weights_match_degrees() {
        let g = generators::star(4);
        assert_eq!(degree_weights(&g), vec![4, 1, 1, 1, 1]);
    }
}
