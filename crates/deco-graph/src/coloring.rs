//! Coloring containers and validators.
//!
//! Colorings are stored as dense per-node or per-edge `Option<Color>` arrays
//! (`None` = not yet colored). The validators here are the *oracles* the
//! whole workspace tests against: whatever the distributed algorithms do,
//! [`check_edge_coloring`] / [`check_vertex_coloring`] have the final word.

use crate::{EdgeId, Graph, NodeId};
use std::collections::HashSet;
use std::fmt;

/// A color. Palettes are dense `0..C` unless stated otherwise.
pub type Color = u32;

/// A (possibly partial) edge coloring: `colors[e] = Some(c)` or `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeColoring {
    colors: Vec<Option<Color>>,
}

impl EdgeColoring {
    /// All-uncolored coloring for a graph with `m` edges.
    pub fn uncolored(m: usize) -> EdgeColoring {
        EdgeColoring {
            colors: vec![None; m],
        }
    }

    /// Wraps an existing color vector.
    pub fn from_vec(colors: Vec<Option<Color>>) -> EdgeColoring {
        EdgeColoring { colors }
    }

    /// Builds a complete coloring from one color per edge.
    pub fn from_complete(colors: Vec<Color>) -> EdgeColoring {
        EdgeColoring {
            colors: colors.into_iter().map(Some).collect(),
        }
    }

    /// Color of edge `e`, if assigned.
    #[inline]
    pub fn get(&self, e: EdgeId) -> Option<Color> {
        self.colors[e.index()]
    }

    /// Assigns color `c` to edge `e` (overwrites).
    #[inline]
    pub fn set(&mut self, e: EdgeId, c: Color) {
        self.colors[e.index()] = Some(c);
    }

    /// Removes the color of `e`.
    #[inline]
    pub fn clear(&mut self, e: EdgeId) {
        self.colors[e.index()] = None;
    }

    /// Whether every edge has a color.
    pub fn is_complete(&self) -> bool {
        self.colors.iter().all(Option::is_some)
    }

    /// Number of uncolored edges.
    pub fn uncolored_count(&self) -> usize {
        self.colors.iter().filter(|c| c.is_none()).count()
    }

    /// Number of distinct colors in use.
    pub fn distinct_colors(&self) -> usize {
        self.colors.iter().flatten().collect::<HashSet<_>>().len()
    }

    /// Largest color in use, if any edge is colored.
    pub fn max_color(&self) -> Option<Color> {
        self.colors.iter().flatten().copied().max()
    }

    /// The raw per-edge array.
    pub fn as_slice(&self) -> &[Option<Color>] {
        &self.colors
    }

    /// Number of edges this coloring covers.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the coloring covers zero edges.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }
}

/// A violation found by a coloring validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringViolation {
    /// Two adjacent edges share a color.
    AdjacentEdgesSameColor {
        /// First offending edge.
        e: EdgeId,
        /// Second offending edge (adjacent to `e`).
        f: EdgeId,
        /// The shared color.
        color: Color,
    },
    /// Two adjacent nodes share a color.
    AdjacentNodesSameColor {
        /// First offending node.
        u: NodeId,
        /// Second offending node (adjacent to `u`).
        v: NodeId,
        /// The shared color.
        color: Color,
    },
    /// An edge (or node) that was required to be colored is not.
    Uncolored {
        /// Dense index of the uncolored element.
        index: usize,
    },
}

impl fmt::Display for ColoringViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringViolation::AdjacentEdgesSameColor { e, f: g, color } => {
                write!(f, "adjacent edges {e} and {g} both have color {color}")
            }
            ColoringViolation::AdjacentNodesSameColor { u, v, color } => {
                write!(f, "adjacent nodes {u} and {v} both have color {color}")
            }
            ColoringViolation::Uncolored { index } => {
                write!(f, "element {index} is uncolored")
            }
        }
    }
}

impl std::error::Error for ColoringViolation {}

/// Checks that `coloring` is a proper *partial* edge coloring: no two
/// adjacent colored edges share a color. Uncolored edges are allowed.
///
/// # Errors
///
/// Returns the first [`ColoringViolation`] found.
pub fn check_partial_edge_coloring(
    g: &Graph,
    coloring: &EdgeColoring,
) -> Result<(), ColoringViolation> {
    assert_eq!(coloring.len(), g.num_edges(), "coloring length mismatch");
    // Per node, check its incident colored edges are pairwise distinct. This
    // covers all adjacencies and runs in O(Σ deg(v) log deg(v)).
    for v in g.nodes() {
        let mut seen: Vec<(Color, EdgeId)> = g
            .incident_edges(v)
            .filter_map(|e| coloring.get(e).map(|c| (c, e)))
            .collect();
        seen.sort_unstable();
        for w in seen.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ColoringViolation::AdjacentEdgesSameColor {
                    e: w[0].1,
                    f: w[1].1,
                    color: w[0].0,
                });
            }
        }
    }
    Ok(())
}

/// Checks that `coloring` is a proper *complete* edge coloring.
///
/// # Errors
///
/// Returns a [`ColoringViolation`] if any edge is uncolored or any two
/// adjacent edges share a color.
pub fn check_edge_coloring(g: &Graph, coloring: &EdgeColoring) -> Result<(), ColoringViolation> {
    if let Some(idx) = coloring.as_slice().iter().position(Option::is_none) {
        return Err(ColoringViolation::Uncolored { index: idx });
    }
    check_partial_edge_coloring(g, coloring)
}

/// Checks a proper complete vertex coloring (`colors[v]` for every node).
///
/// # Errors
///
/// Returns a [`ColoringViolation`] if two adjacent nodes share a color.
pub fn check_vertex_coloring(g: &Graph, colors: &[Color]) -> Result<(), ColoringViolation> {
    assert_eq!(colors.len(), g.num_nodes(), "colors length mismatch");
    for e in g.edges() {
        let [u, v] = g.endpoints(e);
        if colors[u.index()] == colors[v.index()] {
            return Err(ColoringViolation::AdjacentNodesSameColor {
                u,
                v,
                color: colors[u.index()],
            });
        }
    }
    Ok(())
}

/// Defect of each edge under a (possibly improper) complete edge coloring:
/// `defect[e]` = number of edges adjacent to `e` with the same color.
///
/// A proper coloring has all-zero defects; a `f(e)`-defective coloring in the
/// paper's sense satisfies `defect[e] ≤ f(e)` for all `e`.
pub fn edge_defects(g: &Graph, colors: &[Color]) -> Vec<usize> {
    assert_eq!(colors.len(), g.num_edges(), "colors length mismatch");
    let mut defect = vec![0usize; g.num_edges()];
    for v in g.nodes() {
        // Count same-color pairs among edges incident to v.
        let inc: Vec<EdgeId> = g.incident_edges(v).collect();
        let mut by_color: std::collections::HashMap<Color, usize> = Default::default();
        for &e in &inc {
            *by_color.entry(colors[e.index()]).or_insert(0) += 1;
        }
        for &e in &inc {
            let same = by_color[&colors[e.index()]];
            // Edges sharing color with e at this endpoint (excluding e).
            defect[e.index()] += same - 1;
        }
    }
    defect
}

/// Number of distinct values in a complete color array.
pub fn distinct_colors(colors: &[Color]) -> usize {
    colors.iter().collect::<HashSet<_>>().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn proper_coloring_of_path_passes() {
        let g = generators::path(4); // edges e0,e1,e2 in a line
        let c = EdgeColoring::from_complete(vec![0, 1, 0]);
        assert!(check_edge_coloring(&g, &c).is_ok());
    }

    #[test]
    fn improper_coloring_is_caught() {
        let g = generators::path(3); // e0={0,1}, e1={1,2} adjacent
        let c = EdgeColoring::from_complete(vec![5, 5]);
        let err = check_edge_coloring(&g, &c).unwrap_err();
        assert!(matches!(
            err,
            ColoringViolation::AdjacentEdgesSameColor { color: 5, .. }
        ));
    }

    #[test]
    fn incomplete_coloring_is_caught() {
        let g = generators::path(3);
        let mut c = EdgeColoring::uncolored(2);
        c.set(EdgeId(0), 1);
        let err = check_edge_coloring(&g, &c).unwrap_err();
        assert_eq!(err, ColoringViolation::Uncolored { index: 1 });
        // But it is a valid *partial* coloring.
        assert!(check_partial_edge_coloring(&g, &c).is_ok());
    }

    #[test]
    fn vertex_coloring_checker() {
        let g = generators::cycle(4);
        assert!(check_vertex_coloring(&g, &[0, 1, 0, 1]).is_ok());
        assert!(check_vertex_coloring(&g, &[0, 1, 0, 0]).is_err());
    }

    #[test]
    fn defects_on_monochromatic_star() {
        let g = generators::star(4);
        let defects = edge_defects(&g, &[7, 7, 7, 7]);
        // Every edge conflicts with the 3 others at the center.
        assert_eq!(defects, vec![3, 3, 3, 3]);
    }

    #[test]
    fn defects_zero_for_proper() {
        let g = generators::cycle(6);
        let colors = vec![0, 1, 0, 1, 0, 1];
        assert!(edge_defects(&g, &colors).iter().all(|&d| d == 0));
    }

    #[test]
    fn defects_mixed() {
        // Path 0-1-2-3 with colors [a, a, b]: e0,e1 conflict; e2 clean.
        let g = generators::path(4);
        let defects = edge_defects(&g, &[0, 0, 1]);
        assert_eq!(defects, vec![1, 1, 0]);
    }

    #[test]
    fn coloring_accessors() {
        let mut c = EdgeColoring::uncolored(3);
        assert!(!c.is_complete());
        assert_eq!(c.uncolored_count(), 3);
        c.set(EdgeId(0), 2);
        c.set(EdgeId(1), 2);
        c.set(EdgeId(2), 4);
        assert!(c.is_complete());
        assert_eq!(c.distinct_colors(), 2);
        assert_eq!(c.max_color(), Some(4));
        c.clear(EdgeId(2));
        assert_eq!(c.uncolored_count(), 1);
        assert!(!c.is_empty());
    }
}
