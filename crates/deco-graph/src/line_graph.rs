//! Line-graph construction.
//!
//! The line graph `L(G)` has one node per edge of `G`, with two nodes
//! adjacent iff the corresponding edges of `G` share an endpoint. Edge
//! coloring `G` is exactly vertex coloring `L(G)`; the paper's quantity
//! `deg(e)` is the degree of `e` in `L(G)` and `Δ̄` is `L(G)`'s maximum
//! degree.
//!
//! In the LOCAL model a round of an algorithm on `L(G)` is simulated by a
//! constant number of rounds on `G` (adjacent edges share a node that can
//! relay), which is why the workspace freely runs vertex-coloring algorithms
//! on materialized line graphs.

use crate::{EdgeId, Graph, GraphBuilder, NodeId};

/// The line graph of a graph, with the node↔edge correspondence.
#[derive(Debug, Clone)]
pub struct LineGraph {
    graph: Graph,
}

impl LineGraph {
    /// Constructs `L(G)`.
    ///
    /// Node `NodeId(i)` of the line graph corresponds to edge `EdgeId(i)` of
    /// `g`. Runs in `O(Σ_v deg(v)²)` time.
    pub fn of(g: &Graph) -> LineGraph {
        let mut builder = GraphBuilder::new(g.num_edges());
        // Two edges are adjacent iff they share a node; enumerate unordered
        // pairs of edges incident to each node. Simple graphs guarantee two
        // edges share at most one node, so no pair is produced twice.
        for v in g.nodes() {
            let inc = g.adjacent(v);
            for i in 0..inc.len() {
                for j in (i + 1)..inc.len() {
                    builder.add_edge(NodeId(inc[i].edge.0), NodeId(inc[j].edge.0));
                }
            }
        }
        let graph = builder
            .build()
            .expect("line graph of a simple graph is simple");
        LineGraph { graph }
    }

    /// The line graph as a plain [`Graph`].
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The edge of the base graph corresponding to line-graph node `v`.
    #[inline]
    pub fn base_edge(&self, v: NodeId) -> EdgeId {
        EdgeId(v.0)
    }

    /// The line-graph node corresponding to base-graph edge `e`.
    #[inline]
    pub fn line_node(&self, e: EdgeId) -> NodeId {
        NodeId(e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_graph_of_path() {
        // P4: 0-1-2-3, edges e0={0,1}, e1={1,2}, e2={2,3}.
        // L(P4) is the path e0-e1-e2.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let lg = LineGraph::of(&g);
        assert_eq!(lg.graph().num_nodes(), 3);
        assert_eq!(lg.graph().num_edges(), 2);
        assert_eq!(lg.graph().degree(NodeId(1)), 2);
        assert_eq!(lg.graph().degree(NodeId(0)), 1);
    }

    #[test]
    fn line_graph_of_triangle_is_triangle() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
        let lg = LineGraph::of(&g);
        assert_eq!(lg.graph().num_nodes(), 3);
        assert_eq!(lg.graph().num_edges(), 3);
    }

    #[test]
    fn line_graph_of_star_is_complete() {
        // K_{1,4}: line graph is K_4.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let lg = LineGraph::of(&g);
        assert_eq!(lg.graph().num_nodes(), 4);
        assert_eq!(lg.graph().num_edges(), 6);
    }

    #[test]
    fn degrees_match_edge_degree() {
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let lg = LineGraph::of(&g);
        for e in g.edges() {
            assert_eq!(lg.graph().degree(lg.line_node(e)), g.edge_degree(e));
        }
        assert_eq!(lg.graph().max_degree(), g.max_edge_degree());
    }

    #[test]
    fn correspondence_roundtrip() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        let lg = LineGraph::of(&g);
        for e in g.edges() {
            assert_eq!(lg.base_edge(lg.line_node(e)), e);
        }
    }
}
