//! The core undirected simple-graph representation.
//!
//! [`Graph`] is an immutable, densely indexed, undirected simple graph stored
//! in CSR (compressed sparse row) form. It is built once via [`GraphBuilder`]
//! and then queried; all the algorithms in this workspace treat graphs as
//! read-only communication topologies.
//!
//! Edge coloring works in the *line graph*: the degree of an edge
//! `e = {u, v}` is `deg(e) = deg(u) + deg(v) − 2` — the number of edges that
//! share an endpoint with `e`. [`Graph::edge_degree`] and
//! [`Graph::max_edge_degree`] expose that directly so callers do not have to
//! materialize the line graph for bookkeeping.

use crate::{EdgeId, NodeId};
use std::fmt;

/// Error produced when [`GraphBuilder::build`] rejects an invalid graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildGraphError {
    /// An edge `{u, u}` was added; simple graphs have no self-loops.
    SelfLoop {
        /// The node carrying the self-loop.
        node: NodeId,
    },
    /// The same undirected pair was added twice.
    DuplicateEdge {
        /// Smaller endpoint of the duplicated edge.
        u: NodeId,
        /// Larger endpoint of the duplicated edge.
        v: NodeId,
    },
    /// An endpoint index is outside `0..n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The node count of the graph under construction.
        n: usize,
    },
}

impl fmt::Display for BuildGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildGraphError::SelfLoop { node } => {
                write!(f, "self-loop at {node} is not allowed in a simple graph")
            }
            BuildGraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge {{{u}, {v}}}")
            }
            BuildGraphError::NodeOutOfRange { node, n } => {
                write!(f, "endpoint {node} out of range for graph with {n} nodes")
            }
        }
    }
}

impl std::error::Error for BuildGraphError {}

/// The one edge-validation rule every construction surface shares: rejects
/// self-loops and out-of-range endpoints, and returns the edge normalized
/// (smaller endpoint first). Duplicate detection is *not* done here — it is
/// global, and each surface decides where to pay for it (the builders defer
/// it to the O(n + m) stamp sweep in [`assemble_csr`]; the mutable overlay
/// checks its live index on insert).
pub(crate) fn validate_edge(
    n: usize,
    u: NodeId,
    v: NodeId,
) -> Result<[NodeId; 2], BuildGraphError> {
    if u == v {
        return Err(BuildGraphError::SelfLoop { node: u });
    }
    for w in [u, v] {
        if w.index() >= n {
            return Err(BuildGraphError::NodeOutOfRange { node: w, n });
        }
    }
    Ok(if u.0 <= v.0 { [u, v] } else { [v, u] })
}

/// Incrementally collects nodes and edges, then validates and freezes them
/// into a [`Graph`].
///
/// # Examples
///
/// ```
/// use deco_graph::{GraphBuilder, NodeId};
///
/// # fn main() -> Result<(), deco_graph::BuildGraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(2));
/// let g = b.build()?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.max_degree(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<[NodeId; 2]>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder for `n` nodes with room for `m` edges, so bulk
    /// loaders (the edge-list readers) avoid amortized reallocation.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Grows the node count to at least `n`.
    pub fn ensure_nodes(&mut self, n: usize) -> &mut Self {
        self.n = self.n.max(n);
        self
    }

    /// Adds the undirected edge `{u, v}`. Order of endpoints is irrelevant.
    ///
    /// This is the *lenient* path: it accepts anything, and all validation
    /// (self-loops, duplicates, range) is deferred to
    /// [`GraphBuilder::build`], so callers can add edges in bulk and get
    /// one error at the end. When an invalid edge should be reported at its
    /// insertion site instead — the contract the bulk
    /// [`Builder`](crate::Builder) and
    /// [`MutableGraph`](crate::MutableGraph) already enforce — use
    /// [`GraphBuilder::try_add_edge`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.edges.push([u, v]);
        self
    }

    /// Adds the undirected edge `{u, v}`, validating everything local to
    /// the edge immediately through the same shared rule as the bulk
    /// [`Builder`](crate::Builder) (duplicate detection remains global and
    /// stays at [`GraphBuilder::build`]).
    ///
    /// # Errors
    ///
    /// [`BuildGraphError::SelfLoop`] if `u == v`,
    /// [`BuildGraphError::NodeOutOfRange`] if an endpoint is outside `0..n`.
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self, BuildGraphError> {
        let edge = validate_edge(self.n, u, v)?;
        self.edges.push(edge);
        Ok(self)
    }

    /// Adds every edge from an iterator of endpoint pairs.
    pub fn extend_edges<I>(&mut self, iter: I) -> &mut Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
        self
    }

    /// Validates and freezes the builder into an immutable [`Graph`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildGraphError`] if any edge is a self-loop, a duplicate,
    /// or references a node outside `0..n`.
    pub fn build(self) -> Result<Graph, BuildGraphError> {
        let n = self.n;
        let mut normalized: Vec<[NodeId; 2]> = Vec::with_capacity(self.edges.len());
        for &[u, v] in &self.edges {
            normalized.push(validate_edge(n, u, v)?);
        }
        assemble_csr(n, normalized)
    }
}

/// The shared CSR assembly core: degree count → prefix sum → scatter, then a
/// stamp-based duplicate sweep over the finished adjacency lists.
///
/// `normalized` must hold edges with validated endpoints (`u < v`, both in
/// `0..n`); edge ids are assigned in slice order. Runs in O(n + m) with no
/// per-edge re-sorting — duplicate detection rides on the scattered lists: a
/// node id appearing twice in one adjacency list *is* a duplicate edge, so a
/// single last-seen stamp array replaces the old `sort_unstable` pass.
pub(crate) fn assemble_csr(
    n: usize,
    normalized: Vec<[NodeId; 2]>,
) -> Result<Graph, BuildGraphError> {
    let mut degree = vec![0u32; n];
    for [u, v] in &normalized {
        degree[u.index()] += 1;
        degree[v.index()] += 1;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for d in &degree {
        acc += *d as usize;
        offsets.push(acc);
    }
    let mut cursor: Vec<usize> = offsets[..n].to_vec();
    let mut adjacency = vec![
        Adjacent {
            neighbor: NodeId(0),
            edge: EdgeId(0)
        };
        normalized.len() * 2
    ];
    // Mirror-port table, built alongside the adjacency lists: slot k of
    // the CSR arena (node v, port j, edge e) stores the port index of e
    // at the *other* endpoint. Message delivery becomes O(1) per message
    // instead of an O(deg) scan of the receiver's adjacency list.
    let mut back_ports = vec![0u32; normalized.len() * 2];
    for (idx, [u, v]) in normalized.iter().enumerate() {
        let e = EdgeId::from(idx);
        let u_slot = cursor[u.index()];
        adjacency[u_slot] = Adjacent {
            neighbor: *v,
            edge: e,
        };
        cursor[u.index()] += 1;
        let v_slot = cursor[v.index()];
        adjacency[v_slot] = Adjacent {
            neighbor: *u,
            edge: e,
        };
        cursor[v.index()] += 1;
        let u_port = u_slot - offsets[u.index()];
        let v_port = v_slot - offsets[v.index()];
        back_ports[u_slot] = u32::try_from(v_port).expect("degree fits u32");
        back_ports[v_slot] = u32::try_from(u_port).expect("degree fits u32");
    }
    // Duplicate sweep: `stamp[w] == v` iff `w` already appeared in `v`'s
    // list during this scan (node ids are strictly increasing across outer
    // iterations, so stamps never need resetting; u32::MAX is the never-seen
    // sentinel and node ids stay below it because degrees fit u32).
    let mut stamp = vec![u32::MAX; n];
    for v in 0..n {
        for a in &adjacency[offsets[v]..offsets[v + 1]] {
            let w = a.neighbor.index();
            if stamp[w] == v as u32 {
                let (lo, hi) = if v < w { (v, w) } else { (w, v) };
                return Err(BuildGraphError::DuplicateEdge {
                    u: NodeId::from(lo),
                    v: NodeId::from(hi),
                });
            }
            stamp[w] = v as u32;
        }
    }
    Ok(Graph {
        edges: normalized,
        offsets,
        adjacency,
        back_ports,
    })
}

/// One entry of a node's adjacency list: the neighbor and the connecting edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Adjacent {
    /// The node at the other end of [`Adjacent::edge`].
    pub neighbor: NodeId,
    /// The edge connecting the list owner to [`Adjacent::neighbor`].
    pub edge: EdgeId,
}

/// Borrowed views of the four CSR arrays, in declaration order:
/// `(edges, offsets, adjacency, back_ports)`.
pub(crate) type CsrParts<'a> = (&'a [[NodeId; 2]], &'a [usize], &'a [Adjacent], &'a [u32]);

/// An immutable undirected simple graph in CSR form.
///
/// Nodes are `NodeId(0..n)`, edges are `EdgeId(0..m)` in insertion order.
/// Endpoints of each edge are stored with the smaller node id first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    edges: Vec<[NodeId; 2]>,
    offsets: Vec<usize>,
    adjacency: Vec<Adjacent>,
    /// `back_ports[offsets[v] + j]` is the port index of edge
    /// `adjacent(v)[j].edge` at the other endpoint (the "mirror port").
    back_ports: Vec<u32>,
}

impl Graph {
    /// Builds a graph directly from `(u, v)` index pairs over `n` nodes.
    ///
    /// Convenience wrapper over [`GraphBuilder`].
    ///
    /// # Errors
    ///
    /// Same as [`GraphBuilder::build`].
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Graph, BuildGraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(NodeId::from(u), NodeId::from(v));
        }
        b.build()
    }

    /// An empty graph on `n` isolated nodes.
    pub fn empty(n: usize) -> Graph {
        GraphBuilder::new(n)
            .build()
            .expect("empty graph is always valid")
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId::from)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.num_edges()).map(EdgeId::from)
    }

    /// The two endpoints of `e`, smaller node id first.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> [NodeId; 2] {
        self.edges[e.index()]
    }

    /// Given one endpoint of `e`, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let [a, b] = self.endpoints(e);
        if v == a {
            b
        } else if v == b {
            a
        } else {
            panic!("{v} is not an endpoint of {e}");
        }
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Adjacency list of `v`: neighbors together with the connecting edges.
    #[inline]
    pub fn adjacent(&self, v: NodeId) -> &[Adjacent] {
        &self.adjacency[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Iterator over the neighbors of `v`.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacent(v).iter().map(|a| a.neighbor)
    }

    /// Iterator over the edges incident to `v`.
    pub fn incident_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.adjacent(v).iter().map(|a| a.edge)
    }

    /// Mirror ports of `v`, aligned with [`Graph::adjacent`]: entry `j` is
    /// the port index of `adjacent(v)[j].edge` at the neighboring endpoint.
    ///
    /// Precomputed at build time; the round engines use it for O(1) message
    /// delivery (a message leaving `v` through port `j` arrives at
    /// `adjacent(v)[j].neighbor` through port `back_ports(v)[j]`).
    #[inline]
    pub fn back_ports(&self, v: NodeId) -> &[u32] {
        &self.back_ports[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// The port index at which `adjacent(v)[port].neighbor` sees the edge
    /// `adjacent(v)[port].edge`. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree(v)`.
    #[inline]
    pub fn back_port(&self, v: NodeId, port: usize) -> usize {
        assert!(port < self.degree(v), "port {port} out of range for {v}");
        self.back_ports[self.offsets[v.index()] + port] as usize
    }

    /// Start of `v`'s slice in the CSR adjacency arena. Together with
    /// [`Graph::degree`] this lets executors address the flat arena
    /// (`offset(v) + port`) without rebuilding the prefix sums.
    #[inline]
    pub fn adjacency_offset(&self, v: NodeId) -> usize {
        self.offsets[v.index()]
    }

    /// Looks up the edge `{u, v}` if it exists.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        // Scan the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacent(a)
            .iter()
            .find(|x| x.neighbor == b)
            .map(|x| x.edge)
    }

    /// Maximum node degree Δ (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Degree of edge `e` in the line graph: `deg(u) + deg(v) − 2`.
    ///
    /// This is the number of edges sharing an endpoint with `e`, the quantity
    /// the paper calls `deg(e)`.
    #[inline]
    pub fn edge_degree(&self, e: EdgeId) -> usize {
        let [u, v] = self.endpoints(e);
        self.degree(u) + self.degree(v) - 2
    }

    /// Maximum edge degree Δ̄ = max_e deg(e) (0 for an edgeless graph).
    ///
    /// Always satisfies Δ̄ ≤ 2Δ − 2 whenever the graph has at least one edge.
    pub fn max_edge_degree(&self) -> usize {
        self.edges().map(|e| self.edge_degree(e)).max().unwrap_or(0)
    }

    /// Iterator over the line-graph neighbors of `e`: every edge `f ≠ e`
    /// sharing an endpoint with `e`.
    ///
    /// Yields each neighbor exactly once (simple graphs: two distinct edges
    /// share at most one node).
    pub fn edge_neighbors(&self, e: EdgeId) -> impl Iterator<Item = EdgeId> + '_ {
        let [u, v] = self.endpoints(e);
        self.incident_edges(u)
            .chain(self.incident_edges(v))
            .filter(move |&f| f != e)
    }

    /// Sum of degrees = 2m; sanity-check helper.
    pub fn degree_sum(&self) -> usize {
        self.adjacency.len()
    }

    /// All edges as endpoint pairs, in edge-id order.
    pub fn edge_list(&self) -> &[[NodeId; 2]] {
        &self.edges
    }

    /// The raw CSR arrays `(edges, offsets, adjacency, back_ports)`, for the
    /// binary snapshot writer. Internal: the layout is an implementation
    /// detail of this module.
    pub(crate) fn csr_parts(&self) -> CsrParts<'_> {
        (
            &self.edges,
            &self.offsets,
            &self.adjacency,
            &self.back_ports,
        )
    }

    /// Reassembles a graph from raw CSR arrays without re-deriving them.
    ///
    /// Internal, for the binary snapshot reader, which structurally
    /// validates every array (monotone offsets, endpoint/adjacency
    /// coherence, back-port involution, duplicate-freeness) before calling
    /// this. Feeding unvalidated arrays here would break `Graph`'s
    /// invariants silently.
    pub(crate) fn from_csr_parts(
        edges: Vec<[NodeId; 2]>,
        offsets: Vec<usize>,
        adjacency: Vec<Adjacent>,
        back_ports: Vec<u32>,
    ) -> Graph {
        Graph {
            edges,
            offsets,
            adjacency,
            back_ports,
        }
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, Δ={}, Δ̄={})",
            self.num_nodes(),
            self.num_edges(),
            self.max_degree(),
            self.max_edge_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.max_edge_degree(), 2);
        assert_eq!(g.degree_sum(), 6);
    }

    #[test]
    fn rejects_self_loop() {
        let err = Graph::from_edges(2, [(1, 1)]).unwrap_err();
        assert_eq!(err, BuildGraphError::SelfLoop { node: NodeId(1) });
    }

    #[test]
    fn rejects_duplicate_even_if_reversed() {
        let err = Graph::from_edges(2, [(0, 1), (1, 0)]).unwrap_err();
        assert!(matches!(err, BuildGraphError::DuplicateEdge { .. }));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Graph::from_edges(2, [(0, 5)]).unwrap_err();
        assert!(matches!(err, BuildGraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn endpoints_are_normalized() {
        let g = Graph::from_edges(3, [(2, 0)]).unwrap();
        assert_eq!(g.endpoints(EdgeId(0)), [NodeId(0), NodeId(2)]);
    }

    #[test]
    fn other_endpoint_works() {
        let g = triangle();
        let e = g.edge_between(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(g.other_endpoint(e, NodeId(0)), NodeId(2));
        assert_eq!(g.other_endpoint(e, NodeId(2)), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "is not an endpoint")]
    fn other_endpoint_panics_for_non_endpoint() {
        let g = triangle();
        let e = g.edge_between(NodeId(0), NodeId(2)).unwrap();
        let _ = g.other_endpoint(e, NodeId(1));
    }

    #[test]
    fn edge_between_finds_edges_both_ways() {
        let g = triangle();
        assert!(g.edge_between(NodeId(0), NodeId(1)).is_some());
        assert!(g.edge_between(NodeId(1), NodeId(0)).is_some());
        assert_eq!(g.edge_between(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn edge_neighbors_of_star_center_edges() {
        // Star K_{1,3}: edges all share node 0.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let nbrs: Vec<EdgeId> = g.edge_neighbors(EdgeId(0)).collect();
        assert_eq!(nbrs.len(), 2);
        assert_eq!(g.edge_degree(EdgeId(0)), 2);
        assert_eq!(g.max_edge_degree(), 2);
    }

    #[test]
    fn edge_degree_matches_neighbor_count_on_path() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        for e in g.edges() {
            assert_eq!(g.edge_degree(e), g.edge_neighbors(e).count());
        }
    }

    #[test]
    fn back_ports_mirror_the_adjacency() {
        // On several shapes: following port j from v and then the recorded
        // back port from the neighbor must land back on (v, j).
        for g in [
            triangle(),
            Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap(),
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]).unwrap(),
        ] {
            for v in g.nodes() {
                for (j, adj) in g.adjacent(v).iter().enumerate() {
                    let back = g.back_port(v, j);
                    let mirror = g.adjacent(adj.neighbor)[back];
                    assert_eq!(mirror.edge, adj.edge, "same edge through the mirror port");
                    assert_eq!(mirror.neighbor, v, "mirror port points back");
                    assert_eq!(g.back_port(adj.neighbor, back), j, "involution");
                }
            }
        }
    }

    #[test]
    fn back_ports_agree_with_linear_scan() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 1), (4, 2)]).unwrap();
        for v in g.nodes() {
            for (j, adj) in g.adjacent(v).iter().enumerate() {
                let scanned = g
                    .adjacent(adj.neighbor)
                    .iter()
                    .position(|a| a.edge == adj.edge)
                    .expect("edge appears at both endpoints");
                assert_eq!(g.back_port(v, j), scanned);
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.max_edge_degree(), 0);
    }

    #[test]
    fn display_format() {
        let g = triangle();
        assert!(g.to_string().contains("n=3"));
    }
}
