//! Strongly typed node and edge identifiers.
//!
//! Graphs in `deco` index nodes and edges densely from zero. Newtypes keep
//! the two index spaces from being confused (C-NEWTYPE) — mixing them up is
//! the classic bug in line-graph-heavy code like edge coloring.

use std::fmt;

/// Index of a node in a [`Graph`](crate::Graph), dense in `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

/// Index of an undirected edge in a [`Graph`](crate::Graph), dense in `0..m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Returns the index as a `usize`, for container indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Returns the index as a `usize`, for container indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<u32> for EdgeId {
    fn from(value: u32) -> Self {
        EdgeId(value)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(u32::try_from(value).expect("node index exceeds u32::MAX"))
    }
}

impl From<usize> for EdgeId {
    fn from(value: usize) -> Self {
        EdgeId(u32::try_from(value).expect("edge index exceeds u32::MAX"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::from(17u32);
        assert_eq!(v.index(), 17);
        assert_eq!(v.to_string(), "v17");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from(3usize);
        assert_eq!(e.index(), 3);
        assert_eq!(e.to_string(), "e3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(9));
    }
}
