//! Centralized greedy (list) edge coloring — the sequential oracle the
//! paper's introduction references ("a coloring with 2Δ−1 colors can be
//! obtained by a simple sequential greedy algorithm").
//!
//! Not a distributed algorithm: used as a correctness oracle, a color-count
//! reference, and to finish examples quickly.

use deco_graph::coloring::{Color, EdgeColoring};
use deco_graph::{EdgeId, Graph};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashSet;

/// Edge processing orders for the greedy colorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOrder {
    /// Edge-id order (insertion order).
    ById,
    /// Decreasing edge degree (a common heuristic).
    ByDegreeDesc,
    /// Seeded random order.
    Random(u64),
}

fn ordered_edges(g: &Graph, order: EdgeOrder) -> Vec<EdgeId> {
    let mut edges: Vec<EdgeId> = g.edges().collect();
    match order {
        EdgeOrder::ById => {}
        EdgeOrder::ByDegreeDesc => {
            edges.sort_by_key(|&e| std::cmp::Reverse(g.edge_degree(e)));
        }
        EdgeOrder::Random(seed) => {
            edges.shuffle(&mut StdRng::seed_from_u64(seed));
        }
    }
    edges
}

/// Greedy (2Δ−1)-edge coloring: first-fit from the palette `0..`, in the
/// given order. Uses at most `Δ̄ + 1 ≤ 2Δ − 1` colors.
pub fn greedy_edge_coloring(g: &Graph, order: EdgeOrder) -> EdgeColoring {
    let mut coloring = EdgeColoring::uncolored(g.num_edges());
    for e in ordered_edges(g, order) {
        let used: HashSet<Color> = g
            .edge_neighbors(e)
            .filter_map(|f| coloring.get(f))
            .collect();
        let c = (0..)
            .find(|c| !used.contains(c))
            .expect("unbounded palette");
        coloring.set(e, c);
    }
    coloring
}

/// Greedy list edge coloring: first-fit from each edge's own list.
///
/// Succeeds whenever `|lists[e]| > deg(e)` ((deg+1)-list instances); may
/// fail for smaller lists, returning the first stuck edge.
///
/// # Errors
///
/// Returns the edge whose list was exhausted.
pub fn greedy_list_edge_coloring(
    g: &Graph,
    lists: &[Vec<Color>],
    order: EdgeOrder,
) -> Result<EdgeColoring, EdgeId> {
    assert_eq!(lists.len(), g.num_edges(), "one list per edge");
    let mut coloring = EdgeColoring::uncolored(g.num_edges());
    for e in ordered_edges(g, order) {
        let used: HashSet<Color> = g
            .edge_neighbors(e)
            .filter_map(|f| coloring.get(f))
            .collect();
        match lists[e.index()].iter().copied().find(|c| !used.contains(c)) {
            Some(c) => coloring.set(e, c),
            None => return Err(e),
        }
    }
    Ok(coloring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::{coloring, generators};

    #[test]
    fn greedy_uses_at_most_2delta_minus_1() {
        for g in [
            generators::complete(8),
            generators::random_regular(30, 5, 1),
            generators::petersen(),
            generators::gnp(50, 0.2, 2),
        ] {
            let c = greedy_edge_coloring(&g, EdgeOrder::ById);
            coloring::check_edge_coloring(&g, &c).expect("proper");
            let bound = (2 * g.max_degree()).saturating_sub(1).max(1);
            assert!(
                c.distinct_colors() <= bound,
                "greedy used {} colors > 2Δ−1 = {bound}",
                c.distinct_colors()
            );
        }
    }

    #[test]
    fn orders_agree_on_validity_not_on_colors() {
        let g = generators::gnp(40, 0.15, 3);
        for order in [
            EdgeOrder::ById,
            EdgeOrder::ByDegreeDesc,
            EdgeOrder::Random(5),
        ] {
            let c = greedy_edge_coloring(&g, order);
            coloring::check_edge_coloring(&g, &c).expect("proper");
        }
    }

    #[test]
    fn list_coloring_succeeds_on_deg_plus_one_lists() {
        let g = generators::random_regular(24, 4, 4);
        // Give each edge the list {0, …, deg(e)} (deg+1 colors).
        let lists: Vec<Vec<Color>> = g
            .edges()
            .map(|e| (0..=g.edge_degree(e) as Color).collect())
            .collect();
        let c = greedy_list_edge_coloring(&g, &lists, EdgeOrder::ById).expect("always solvable");
        coloring::check_edge_coloring(&g, &c).expect("proper");
        for e in g.edges() {
            assert!(lists[e.index()].contains(&c.get(e).unwrap()));
        }
    }

    #[test]
    fn list_coloring_can_fail_with_tiny_lists() {
        // Triangle with identical single-color lists cannot be colored.
        let g = generators::complete(3);
        let lists = vec![vec![0], vec![0], vec![0]];
        assert!(greedy_list_edge_coloring(&g, &lists, EdgeOrder::ById).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = deco_graph::Graph::empty(3);
        let c = greedy_edge_coloring(&g, EdgeOrder::ById);
        assert!(c.is_complete());
    }
}
