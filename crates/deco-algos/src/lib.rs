//! # deco-algos — classical distributed coloring building blocks
//!
//! The subroutines and baselines the PODC 2020 edge-coloring construction
//! stands on, each implemented as a real message-passing protocol on the
//! [`deco_local`] runtime:
//!
//! * [`linial`] — Linial's `O(Δ²)`-coloring in `O(log* n)` rounds \[Lin87\],
//!   via polynomial cover-free set families; supplies the paper's initial
//!   `X`-edge-coloring through [`edge_adapter::linial_edge_coloring`].
//! * [`deg2`] — deterministic 3-coloring of disjoint paths/cycles in
//!   `O(log* X)` rounds (used inside the §4.1 defective edge coloring).
//! * [`class_elimination`] — list coloring by sweeping the classes of an
//!   initial coloring: the `O(Δ̄² + log* n)` baseline and the paper's
//!   `T(O(1), S, C) = O(log* X)` base case.
//! * [`cv`] — Cole–Vishkin 3-coloring of rooted forests in `O(log* n)`
//!   rounds (the classic bit trick, with shift-down elimination).
//! * [`greedy`] — the centralized sequential oracle.
//! * [`luby`] — the randomized `O(log n)`-round baseline [ABI86, Lub86].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod class_elimination;
pub mod cv;
pub mod deg2;
pub mod edge_adapter;
pub mod greedy;
pub mod linial;
pub mod luby;

/// Narrows a `u64` color array (palettes are always `n^{O(1)}`-bounded but
/// intermediate Linial colors travel as `u64`) into the workspace-standard
/// `u32` colors.
///
/// # Panics
///
/// Panics if a color exceeds `u32::MAX`.
pub fn palette_u64_to_u32(colors: &[u64]) -> Vec<u32> {
    colors
        .iter()
        .map(|&c| u32::try_from(c).expect("final palettes fit in u32"))
        .collect()
}
