//! Randomized distributed list (edge) coloring in the style of
//! [ABI86, Lub86]: every uncolored element repeatedly proposes a uniformly
//! random available color and keeps it unless a conflicting neighbor with a
//! larger ID proposed the same color. Terminates in `O(log n)` rounds with
//! high probability.
//!
//! This is the randomized baseline the paper's introduction compares
//! against. Runs as a real message-passing protocol on the conflict graph
//! (for edge coloring: the line graph), with per-node RNGs seeded
//! deterministically from `(seed, id)` so simulations are reproducible.

use deco_local::{Executor, Network, NodeCtx, NodeProgram, Protocol, RunError};
use deco_runtime::Runtime;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashSet;

/// Messages of the Luby-style protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LubyMsg {
    /// "I propose this color this round" (sender id, color).
    Proposal {
        /// Sender's unique ID (for the priority tie-break).
        id: u64,
        /// Proposed color.
        color: u32,
    },
    /// "I have finalized this color."
    Final {
        /// Finalized color.
        color: u32,
    },
}

/// The vacant-slot filler for the engines' dense message arenas
/// (`NodeProgram::Msg: Default`). The value is never observed on the wire —
/// a presence bit guards every arena slot.
impl Default for LubyMsg {
    fn default() -> Self {
        LubyMsg::Final { color: 0 }
    }
}

/// Protocol: randomized list vertex coloring of the network's graph.
/// For (2Δ̄+1)-style edge coloring, run it on the line graph.
#[derive(Debug, Clone)]
pub struct LubyListColoring {
    /// Per-node lists; must satisfy `|lists[v]| > deg(v)`.
    pub lists: Vec<Vec<u32>>,
    /// Global seed; per-node RNG is seeded with `(seed, id)`.
    pub seed: u64,
}

/// Node program for [`LubyListColoring`].
#[derive(Debug)]
pub struct LubyProgram {
    available: Vec<u32>,
    removed: HashSet<u32>,
    rng: StdRng,
    proposal: Option<u32>,
    finalized: Option<u32>,
    announced: bool,
}

impl LubyProgram {
    fn refresh_available(&mut self) {
        if !self.removed.is_empty() {
            self.available.retain(|c| !self.removed.contains(c));
            self.removed.clear();
        }
    }
}

impl NodeProgram for LubyProgram {
    type Msg = LubyMsg;
    type Output = u32;

    fn send(&mut self, ctx: &NodeCtx<'_>) -> Vec<Option<LubyMsg>> {
        if let Some(c) = self.finalized {
            // Announce once, then the runner will see our output and halt us
            // next round.
            self.announced = true;
            return vec![Some(LubyMsg::Final { color: c }); ctx.degree()];
        }
        self.refresh_available();
        debug_assert!(
            !self.available.is_empty(),
            "list exceeds degree, cannot empty"
        );
        let pick = self.available[self.rng.gen_range(0..self.available.len())];
        self.proposal = Some(pick);
        vec![
            Some(LubyMsg::Proposal {
                id: ctx.id,
                color: pick
            });
            ctx.degree()
        ]
    }

    fn receive(&mut self, ctx: &NodeCtx<'_>, inbox: &[Option<LubyMsg>]) {
        if self.finalized.is_some() {
            return;
        }
        // Finals first: these colors are permanently unavailable.
        for msg in inbox.iter().flatten() {
            if let LubyMsg::Final { color } = msg {
                self.removed.insert(*color);
            }
        }
        let mine = self.proposal.take().expect("proposed this round");
        if self.removed.contains(&mine) {
            return; // a neighbor already owns this color
        }
        // Keep the proposal unless a strictly higher-id neighbor proposed
        // the same color.
        let beaten = inbox.iter().flatten().any(
            |msg| matches!(msg, LubyMsg::Proposal { id, color } if *color == mine && *id > ctx.id),
        );
        if !beaten {
            self.finalized = Some(mine);
        }
    }

    fn output(&self, _ctx: &NodeCtx<'_>) -> Option<u32> {
        // Halt only after the final color has been announced to neighbors.
        self.finalized.filter(|_| self.announced)
    }
}

impl Protocol for LubyListColoring {
    type Program = LubyProgram;

    fn spawn(&self, ctx: &NodeCtx<'_>) -> LubyProgram {
        let mut hasher_seed = self.seed ^ ctx.id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if hasher_seed == 0 {
            hasher_seed = 1;
        }
        LubyProgram {
            available: self.lists[ctx.node.index()].clone(),
            removed: HashSet::new(),
            rng: StdRng::seed_from_u64(hasher_seed),
            proposal: None,
            finalized: None,
            announced: false,
        }
    }
}

/// Result of a Luby-style run.
#[derive(Debug, Clone)]
pub struct LubyResult {
    /// Proper list coloring, indexed by node of the conflict graph.
    pub colors: Vec<u32>,
    /// Rounds until every node halted.
    pub rounds: u64,
    /// Messages delivered over the run (identical on every engine).
    pub messages: u64,
}

/// Runs randomized list coloring on `net`, on whatever engine `rt`
/// carries. The protocol is open-ended (no fixed schedule), so the round
/// budget is the runtime's [`Runtime::max_rounds`] policy.
///
/// # Errors
///
/// Returns [`RunError`] if the run exceeds the runtime's round budget
/// (vanishingly unlikely for sane budgets: expected O(log n) rounds).
///
/// # Panics
///
/// Panics if some list is not larger than the node's degree.
pub fn luby_list_coloring(
    net: &Network<'_>,
    lists: Vec<Vec<u32>>,
    seed: u64,
    rt: &Runtime,
) -> Result<LubyResult, RunError> {
    for v in net.graph().nodes() {
        assert!(
            lists[v.index()].len() > net.graph().degree(v),
            "list of node {v} must exceed its degree"
        );
    }
    let protocol = LubyListColoring { lists, seed };
    let outcome = rt.execute(net, &protocol, rt.max_rounds())?;
    Ok(LubyResult {
        colors: outcome.outputs,
        rounds: outcome.rounds,
        messages: outcome.messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::{coloring, generators};
    use deco_local::IdAssignment;

    fn lists_for(g: &deco_graph::Graph, palette: u32) -> Vec<Vec<u32>> {
        g.nodes().map(|_| (0..palette).collect()).collect()
    }

    #[test]
    fn colors_properly_with_2delta_palette() {
        let g = generators::random_regular(80, 6, 1);
        let net = Network::new(&g, IdAssignment::Shuffled(2));
        let palette = 2 * g.max_degree() as u32 + 1;
        let res = luby_list_coloring(&net, lists_for(&g, palette), 42, &Runtime::serial()).unwrap();
        coloring::check_vertex_coloring(&g, &res.colors).expect("proper");
        assert!(res.colors.iter().all(|&c| c < palette));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::gnp(50, 0.15, 3);
        let net = Network::new(&g, IdAssignment::Sequential);
        let palette = 2 * g.max_degree() as u32 + 1;
        let a = luby_list_coloring(&net, lists_for(&g, palette), 7, &Runtime::serial()).unwrap();
        let b = luby_list_coloring(&net, lists_for(&g, palette), 7, &Runtime::serial()).unwrap();
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn rounds_are_logarithmic_in_practice() {
        let g = generators::random_regular(400, 8, 9);
        let net = Network::new(&g, IdAssignment::Shuffled(4));
        let palette = 2 * g.max_degree() as u32 + 1;
        let res = luby_list_coloring(&net, lists_for(&g, palette), 13, &Runtime::serial()).unwrap();
        assert!(res.rounds <= 60, "rounds {} unexpectedly large", res.rounds);
    }

    #[test]
    fn heterogeneous_lists() {
        let g = generators::cycle(30);
        let net = Network::new(&g, IdAssignment::Shuffled(5));
        // Each node gets a distinct 3-color window: still > deg = 2.
        let lists: Vec<Vec<u32>> = g.nodes().map(|v| (v.0..v.0 + 3).collect()).collect();
        let res = luby_list_coloring(&net, lists.clone(), 3, &Runtime::serial()).unwrap();
        coloring::check_vertex_coloring(&g, &res.colors).expect("proper");
        for v in g.nodes() {
            assert!(lists[v.index()].contains(&res.colors[v.index()]));
        }
    }

    #[test]
    #[should_panic(expected = "must exceed its degree")]
    fn rejects_small_lists() {
        let g = generators::complete(4);
        let net = Network::new(&g, IdAssignment::Sequential);
        let _ = luby_list_coloring(&net, lists_for(&g, 2), 1, &Runtime::serial());
    }
}
