//! Linial's O(Δ²)-coloring in O(log* n) rounds \[Lin87\], as a real
//! message-passing protocol.
//!
//! One color-reduction round maps a proper `m`-coloring to a proper
//! `q²`-coloring, where `q` is a prime with `q > Δ·d` and `q^{d+1} ≥ m`:
//! every color `c < m` is read as a polynomial `p_c` of degree ≤ `d` over
//! `F_q` (its base-`q` digits are the coefficients). Two distinct
//! polynomials agree on at most `d` points, so a node with ≤ Δ neighbors can
//! always pick an evaluation point `x` where its polynomial differs from all
//! neighbors' (`Δ·d < q` candidates are excluded at most). The new color is
//! the pair `(x, p_c(x)) ∈ [q²]`.
//!
//! Iterating from the ID space `{1..N}` reaches the fixpoint palette in
//! `O(log* N)` rounds. The fixpoint has `q_* ²` colors where `q_*` is
//! a prime in `(Δ, 2Δ]`-ish territory, i.e. O(Δ²) colors total.
//!
//! The schedule (the `(q, d)` pair per round) is computed deterministically
//! from the globally known `Δ` and ID bound, so every node runs the same
//! number of rounds — a fixed LOCAL schedule, no termination detection.

use crate::palette_u64_to_u32;
use deco_local::math::next_prime;
use deco_local::{Executor, Network, NodeCtx, NodeProgram, Protocol, RunError};
use deco_runtime::Runtime;

/// One round of the reduction schedule: reduce from `m` colors to `q²`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionStep {
    /// Prime modulus of the polynomial family.
    pub q: u64,
    /// Degree bound of the polynomials (needs `q^{d+1} ≥ m` and `q > Δ·d`).
    pub d: u64,
    /// Number of colors before this step.
    pub m_before: u64,
    /// Number of colors after this step (`= q²`).
    pub m_after: u64,
}

/// The full fixed schedule for reducing an `m₀`-coloring on a graph of
/// maximum degree `Δ` down to the fixpoint palette.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinialSchedule {
    /// The reduction steps, in execution order.
    pub steps: Vec<ReductionStep>,
    /// Palette size after running all steps.
    pub final_palette: u64,
}

impl LinialSchedule {
    /// Number of communication rounds (= number of steps).
    pub fn rounds(&self) -> u64 {
        self.steps.len() as u64
    }
}

/// Chooses, for current palette `m` and degree bound `delta`, the reduction
/// step minimizing the resulting palette `q²`, or `None` if no step shrinks
/// the palette.
fn best_step(m: u64, delta: u64) -> Option<ReductionStep> {
    debug_assert!(m >= 2);
    let mut best: Option<ReductionStep> = None;
    // d beyond log2(m) cannot help: q^{d+1} ≥ 2^{d+1} ≥ m already at
    // d = log2(m), and q grows with d.
    let d_max = 64 - m.leading_zeros() as u64 + 1;
    for d in 1..=d_max {
        let q = next_prime(delta.max(1) * d);
        // Check q^{d+1} >= m without overflow.
        let mut pow = 1u128;
        let mut enough = false;
        for _ in 0..=d {
            pow = pow.saturating_mul(q as u128);
            if pow >= m as u128 {
                enough = true;
                break;
            }
        }
        if !enough {
            continue;
        }
        let m_after = q * q;
        if m_after < m && best.as_ref().is_none_or(|b| m_after < b.m_after) {
            best = Some(ReductionStep {
                q,
                d,
                m_before: m,
                m_after,
            });
        }
    }
    best
}

/// Computes the fixed reduction schedule from `m0` initial colors on a graph
/// of maximum degree `delta`. Runs `O(log* m0)` steps until no step shrinks
/// the palette.
pub fn schedule(m0: u64, delta: u64) -> LinialSchedule {
    let mut steps = Vec::new();
    let mut m = m0.max(2);
    while let Some(step) = best_step(m, delta) {
        m = step.m_after;
        steps.push(step);
    }
    LinialSchedule {
        steps,
        final_palette: m.min(m0.max(2)),
    }
}

/// The palette size Linial's algorithm stabilizes at for maximum degree
/// `delta` (the `O(Δ²)` bound, concretely `q²` for the relevant prime).
pub fn fixpoint_palette(m0: u64, delta: u64) -> u64 {
    schedule(m0, delta).final_palette
}

/// The Linial color-reduction protocol. Input: a proper `m0`-coloring
/// supplied per node (commonly the IDs). Output: a proper coloring with
/// [`LinialSchedule::final_palette`] colors.
#[derive(Debug, Clone)]
pub struct LinialProtocol {
    /// Initial proper coloring, one color per node, all `< m0`.
    pub initial: Vec<u64>,
    /// The fixed schedule all nodes follow.
    pub schedule: LinialSchedule,
}

impl LinialProtocol {
    /// Builds the protocol from initial colors and the graph's max degree.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty of colors... never: accepts any values;
    /// callers must ensure the initial coloring is proper and `< m0`.
    pub fn new(initial: Vec<u64>, m0: u64, delta: u64) -> LinialProtocol {
        LinialProtocol {
            initial,
            schedule: schedule(m0, delta),
        }
    }
}

/// Per-node state machine for [`LinialProtocol`].
#[derive(Debug)]
pub struct LinialProgram {
    color: u64,
    step_idx: usize,
    schedule: LinialSchedule,
}

/// Evaluates the polynomial encoded by `color`'s base-`q` digits at `x`
/// (Horner on the digit sequence).
fn poly_eval(color: u64, q: u64, d: u64, x: u64) -> u64 {
    // coefficients: digits of color in base q, c = Σ a_i q^i, i = 0..=d.
    // p(x) = Σ a_i x^i mod q, evaluated by Horner from the top digit.
    let mut digits = [0u64; 66];
    let mut c = color;
    for digit in digits.iter_mut().take(d as usize + 1) {
        *digit = c % q;
        c /= q;
    }
    debug_assert_eq!(c, 0, "color must fit in d+1 base-q digits");
    let mut acc = 0u64;
    for i in (0..=d as usize).rev() {
        acc = (acc * x + digits[i]) % q;
    }
    acc
}

/// One Linial reduction step for a single node: given its current color and
/// its (distinct) neighbors' colors, returns the new color in `[0, q²)`.
///
/// # Panics
///
/// Panics if no conflict-free evaluation point exists, which cannot happen
/// when `step.q > Δ·step.d` and the input coloring is proper.
pub fn reduce_color(color: u64, neighbor_colors: &[u64], step: ReductionStep) -> u64 {
    let (q, d) = (step.q, step.d);
    debug_assert!(
        neighbor_colors.iter().all(|&nc| nc != color),
        "input coloring for Linial step must be proper"
    );
    for x in 0..q {
        let own = poly_eval(color, q, d, x);
        let clash = neighbor_colors
            .iter()
            .any(|&nc| nc != color && poly_eval(nc, q, d, x) == own);
        if !clash {
            let new_color = x * q + own;
            debug_assert!(new_color < step.m_after);
            return new_color;
        }
    }
    panic!("q > Δ·d guarantees a conflict-free evaluation point");
}

impl NodeProgram for LinialProgram {
    type Msg = u64;
    type Output = u64;

    fn send(&mut self, ctx: &NodeCtx<'_>) -> Vec<Option<u64>> {
        vec![Some(self.color); ctx.degree()]
    }

    fn receive(&mut self, ctx: &NodeCtx<'_>, inbox: &[Option<u64>]) {
        let step = self.schedule.steps[self.step_idx];
        let neighbor_colors: Vec<u64> = inbox.iter().flatten().copied().collect();
        debug_assert_eq!(
            neighbor_colors.len(),
            ctx.degree(),
            "all neighbors must report"
        );
        self.color = reduce_color(self.color, &neighbor_colors, step);
        self.step_idx += 1;
    }

    fn output(&self, _ctx: &NodeCtx<'_>) -> Option<u64> {
        (self.step_idx >= self.schedule.steps.len()).then_some(self.color)
    }
}

impl Protocol for LinialProtocol {
    type Program = LinialProgram;

    fn spawn(&self, ctx: &NodeCtx<'_>) -> LinialProgram {
        LinialProgram {
            color: self.initial[ctx.node.index()],
            step_idx: 0,
            schedule: self.schedule.clone(),
        }
    }
}

/// Result of running Linial's protocol.
#[derive(Debug, Clone)]
pub struct LinialResult {
    /// Proper coloring with `palette` colors, indexed by node.
    pub colors: Vec<u32>,
    /// Palette size of the output (`colors[v] < palette`).
    pub palette: u64,
    /// Communication rounds used (= schedule length).
    pub rounds: u64,
    /// Messages delivered over the run (identical on every engine).
    pub messages: u64,
}

/// Runs Linial's reduction on `net` starting from the node IDs as the
/// initial coloring (`m0 = id_bound + 1`), on whatever engine `rt`
/// carries.
///
/// # Errors
///
/// Propagates [`RunError`] from the executor (cannot happen with the fixed
/// schedule unless the schedule itself is wrong).
pub fn color_from_ids(net: &Network<'_>, rt: &Runtime) -> Result<LinialResult, RunError> {
    let ids: Vec<u64> = net.ids().to_vec();
    let m0 = net.max_id() + 1;
    color_from_initial(net, ids, m0, rt)
}

/// Runs Linial's reduction on `net` from an explicit proper initial
/// coloring with palette `m0`, on whatever engine `rt` carries.
///
/// # Errors
///
/// Propagates [`RunError`] from the executor.
///
/// # Panics
///
/// Panics (in debug builds) if the initial coloring is improper.
pub fn color_from_initial(
    net: &Network<'_>,
    initial: Vec<u64>,
    m0: u64,
    rt: &Runtime,
) -> Result<LinialResult, RunError> {
    debug_assert!(
        initial.iter().all(|&c| c < m0),
        "initial colors must be < m0"
    );
    let delta = net.graph().max_degree() as u64;
    let protocol = LinialProtocol::new(initial, m0, delta);
    let sched_rounds = protocol.schedule.rounds();
    let palette = protocol.schedule.final_palette;
    let outcome = rt.execute(net, &protocol, sched_rounds + 1)?;
    debug_assert_eq!(outcome.rounds, sched_rounds);
    Ok(LinialResult {
        colors: palette_u64_to_u32(&outcome.outputs),
        palette,
        rounds: outcome.rounds,
        messages: outcome.messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::{coloring, generators};
    use deco_local::IdAssignment;

    #[test]
    fn poly_eval_linear() {
        // color 7 in base 5 with d=1: digits [2, 1] -> p(x) = 2 + x.
        assert_eq!(poly_eval(7, 5, 1, 0), 2);
        assert_eq!(poly_eval(7, 5, 1, 1), 3);
        assert_eq!(poly_eval(7, 5, 1, 4), 1); // 2 + 4 = 6 mod 5
    }

    #[test]
    fn schedule_shrinks_monotonically() {
        let s = schedule(1_000_000, 10);
        assert!(!s.steps.is_empty());
        for w in s.steps.windows(2) {
            assert!(w[1].m_before == w[0].m_after);
            assert!(w[1].m_after < w[1].m_before);
        }
        // O(Δ²): fixpoint is q² for a prime q ≤ 2·(2Δ) by Bertrand.
        assert!(
            s.final_palette <= 16 * 10 * 10 + 200,
            "got {}",
            s.final_palette
        );
    }

    #[test]
    fn schedule_steps_are_valid() {
        for (m0, delta) in [(100u64, 3u64), (1_000_000, 2), (50_000, 126), (10, 4)] {
            let s = schedule(m0, delta);
            for st in &s.steps {
                assert!(st.q > delta * st.d, "q > Δd violated: {st:?}");
                let pow = (0..=st.d).try_fold(1u128, |a, _| a.checked_mul(st.q as u128));
                assert!(pow.is_none() || pow.unwrap() >= st.m_before as u128);
            }
        }
    }

    #[test]
    fn rounds_grow_very_slowly() {
        // log*-type behavior: even from 2^60 colors only a handful of steps.
        let s = schedule(1u64 << 60, 8);
        assert!(
            s.rounds() <= 8,
            "expected O(log*) steps, got {}",
            s.rounds()
        );
    }

    fn run_and_check(g: &deco_graph::Graph, assignment: IdAssignment) -> LinialResult {
        let net = Network::new(g, assignment);
        let res = color_from_ids(&net, &Runtime::serial()).expect("fixed schedule terminates");
        coloring::check_vertex_coloring(g, &res.colors).expect("proper coloring");
        for &c in &res.colors {
            assert!((c as u64) < res.palette);
        }
        res
    }

    #[test]
    fn colors_cycle_properly() {
        let g = generators::cycle(50);
        let res = run_and_check(&g, IdAssignment::Sequential);
        assert!(
            res.palette <= 25,
            "Δ=2 fixpoint is 25 colors, got {}",
            res.palette
        );
    }

    #[test]
    fn colors_random_regular_graph() {
        let g = generators::random_regular(60, 6, 3);
        let res = run_and_check(&g, IdAssignment::Shuffled(1));
        // Fixpoint q for Δ=6: next_prime(6·2)=13 with d=2 etc. Palette O(Δ²).
        assert!(
            res.palette <= 4 * 36 + 120,
            "palette {} too large",
            res.palette
        );
    }

    #[test]
    fn sparse_ids_still_work() {
        let g = generators::grid(6, 6);
        let res = run_and_check(&g, IdAssignment::SparseRandom(7));
        assert!(res.rounds <= 6);
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let g = generators::complete(8);
        let res = run_and_check(&g, IdAssignment::Reversed);
        assert!(
            res.colors
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
                == 8
        );
    }

    #[test]
    fn star_high_degree_center() {
        let g = generators::star(9);
        let res = run_and_check(&g, IdAssignment::Shuffled(2));
        assert!(res.palette <= 4 * 81 + 200);
    }
}
