//! Deterministic 3-coloring of graphs with maximum degree ≤ 2 (disjoint
//! paths and cycles) in `O(log* X)` rounds from an initial `X`-coloring.
//!
//! This is the subroutine the paper's defective edge coloring (§4.1) uses to
//! "3-color the edges of these paths and cycles independently in O(log* X)
//! rounds". Strategy: run Linial color reduction down to its fixpoint
//! palette (25 colors for Δ = 2), then eliminate the remaining classes one
//! per round — a node of the currently-eliminated class picks a free color
//! in `{0, 1, 2}`, which exists because it has at most 2 neighbors and the
//! class is an independent set.

use crate::linial::{self, LinialSchedule};
use deco_local::{Executor, Network, NodeCtx, NodeProgram, Protocol, RunError};
use deco_runtime::Runtime;

/// Protocol: 3-color a max-degree-≤2 graph from a proper initial coloring.
#[derive(Debug, Clone)]
pub struct ThreeColorDeg2 {
    /// Proper initial coloring (`< m0`), one entry per node.
    pub initial: Vec<u64>,
    schedule: LinialSchedule,
}

impl ThreeColorDeg2 {
    /// Builds the protocol. `m0` is the palette bound of `initial`.
    pub fn new(initial: Vec<u64>, m0: u64) -> ThreeColorDeg2 {
        let schedule = linial::schedule(m0, 2);
        ThreeColorDeg2 { initial, schedule }
    }

    /// Total fixed schedule length in rounds.
    pub fn rounds(&self) -> u64 {
        self.schedule.rounds() + self.schedule.final_palette.saturating_sub(3)
    }
}

/// Node program for [`ThreeColorDeg2`]: Linial phase then elimination phase.
#[derive(Debug)]
pub struct ThreeColorDeg2Program {
    color: u64,
    round: u64,
    schedule: LinialSchedule,
}

impl NodeProgram for ThreeColorDeg2Program {
    type Msg = u64;
    type Output = u8;

    fn send(&mut self, ctx: &NodeCtx<'_>) -> Vec<Option<u64>> {
        vec![Some(self.color); ctx.degree()]
    }

    fn receive(&mut self, ctx: &NodeCtx<'_>, inbox: &[Option<u64>]) {
        let linial_rounds = self.schedule.rounds();
        let neighbor_colors: Vec<u64> = inbox.iter().flatten().copied().collect();
        debug_assert!(ctx.degree() <= 2, "ThreeColorDeg2 requires max degree 2");
        if self.round < linial_rounds {
            let step = self.schedule.steps[self.round as usize];
            self.color = linial::reduce_color(self.color, &neighbor_colors, step);
        } else {
            // Elimination phase: round `linial_rounds + k` (k ≥ 0) removes
            // color class `palette − 1 − k`.
            let k = self.round - linial_rounds;
            let target = self.schedule.final_palette - 1 - k;
            if self.color == target && target >= 3 {
                let free = (0u64..3)
                    .find(|c| !neighbor_colors.contains(c))
                    .expect("≤ 2 neighbors leave a free color in {0,1,2}");
                self.color = free;
            }
        }
        self.round += 1;
    }

    fn output(&self, _ctx: &NodeCtx<'_>) -> Option<u8> {
        let total = self.schedule.rounds() + self.schedule.final_palette.saturating_sub(3);
        (self.round >= total).then(|| {
            debug_assert!(self.color < 3, "color {} not reduced to 3", self.color);
            self.color as u8
        })
    }
}

impl Protocol for ThreeColorDeg2 {
    type Program = ThreeColorDeg2Program;

    fn spawn(&self, ctx: &NodeCtx<'_>) -> ThreeColorDeg2Program {
        ThreeColorDeg2Program {
            color: self.initial[ctx.node.index()],
            round: 0,
            schedule: self.schedule.clone(),
        }
    }
}

/// Result of [`three_color_max_deg2`].
#[derive(Debug, Clone)]
pub struct ThreeColoring {
    /// Proper coloring with colors in `{0, 1, 2}`, indexed by node.
    pub colors: Vec<u8>,
    /// Rounds used by the fixed schedule.
    pub rounds: u64,
    /// Messages delivered over the run (identical on every engine).
    pub messages: u64,
}

/// 3-colors a graph of maximum degree ≤ 2 from a proper initial coloring
/// with palette `m0`, in `O(log* m0)` rounds, on whatever engine `rt`
/// carries.
///
/// # Errors
///
/// Propagates [`RunError`] (cannot occur with a correct fixed schedule).
///
/// # Panics
///
/// Panics if the graph has a node of degree > 2.
pub fn three_color_max_deg2(
    net: &Network<'_>,
    initial: Vec<u64>,
    m0: u64,
    rt: &Runtime,
) -> Result<ThreeColoring, RunError> {
    assert!(
        net.graph().max_degree() <= 2,
        "graph must have max degree <= 2"
    );
    let protocol = ThreeColorDeg2::new(initial, m0);
    let budget = protocol.rounds();
    let outcome = rt.execute(net, &protocol, budget + 1)?;
    debug_assert_eq!(outcome.rounds, budget);
    Ok(ThreeColoring {
        colors: outcome.outputs,
        rounds: outcome.rounds,
        messages: outcome.messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::{coloring, generators};
    use deco_local::IdAssignment;

    fn check(g: &deco_graph::Graph, assignment: IdAssignment) -> ThreeColoring {
        let net = Network::new(g, assignment);
        let initial = net.ids().to_vec();
        let m0 = net.max_id() + 1;
        let res = three_color_max_deg2(&net, initial, m0, &Runtime::serial())
            .expect("schedule terminates");
        let as_u32: Vec<u32> = res.colors.iter().map(|&c| u32::from(c)).collect();
        coloring::check_vertex_coloring(g, &as_u32).expect("proper 3-coloring");
        assert!(res.colors.iter().all(|&c| c < 3));
        res
    }

    #[test]
    fn colors_long_path() {
        check(&generators::path(101), IdAssignment::Sequential);
    }

    #[test]
    fn colors_even_and_odd_cycles() {
        check(&generators::cycle(64), IdAssignment::Shuffled(3));
        check(&generators::cycle(65), IdAssignment::Shuffled(4));
        check(&generators::cycle(3), IdAssignment::Sequential);
    }

    #[test]
    fn colors_disjoint_paths_and_cycles() {
        let g = generators::disjoint_union(&[
            generators::path(17),
            generators::cycle(12),
            generators::path(2),
            generators::cycle(5),
        ]);
        check(&g, IdAssignment::SparseRandom(8));
    }

    #[test]
    fn rounds_are_logstar_small() {
        let g = generators::cycle(1000);
        let res = check(&g, IdAssignment::Shuffled(5));
        // Linial steps from 1000 ids: a handful; elimination: 25-3 = 22.
        assert!(res.rounds <= 30, "rounds {} too large", res.rounds);
    }

    #[test]
    fn rounds_insensitive_to_n() {
        let r_small = check(&generators::cycle(50), IdAssignment::Sequential).rounds;
        let r_large = check(&generators::cycle(5000), IdAssignment::Sequential).rounds;
        // The log* n term moves by at most a couple of rounds.
        assert!(
            r_large <= r_small + 3,
            "rounds grew: {r_small} -> {r_large}"
        );
    }

    #[test]
    #[should_panic(expected = "max degree <= 2")]
    fn rejects_high_degree() {
        let g = generators::star(3);
        let net = Network::new(&g, IdAssignment::Sequential);
        let _ = three_color_max_deg2(&net, vec![1, 2, 3, 4], 5, &Runtime::serial());
    }

    #[test]
    fn isolated_nodes_are_fine() {
        let g = deco_graph::Graph::empty(4);
        let net = Network::new(&g, IdAssignment::Sequential);
        let res = three_color_max_deg2(&net, vec![1, 2, 3, 4], 5, &Runtime::serial()).unwrap();
        assert!(res.colors.iter().all(|&c| c < 3));
    }
}
