//! Running vertex-coloring protocols on the line graph to color edges.
//!
//! In the LOCAL model, one round of an algorithm on the line graph `L(G)` is
//! simulated by a constant number of rounds on `G`: two adjacent edges share
//! a node, and that node relays. The adapters here materialize `L(G)`,
//! derive unique *edge* identifiers from the endpoints' node identifiers
//! (every node can compute them locally), and map results back to edges.

use crate::linial;
use deco_graph::coloring::EdgeColoring;
use deco_graph::{Graph, LineGraph};
use deco_local::{Network, RunError};
use deco_runtime::Runtime;

/// Unique edge IDs computable locally from endpoint node IDs: the pairing
/// `a·(B+1) + b` for endpoint ids `a < b` with global bound `B`. Values are
/// distinct across edges and bounded by `(B+1)²` — still `n^{O(1)}`.
///
/// # Panics
///
/// Panics if `(B+1)²` overflows `u64` (use a denser ID assignment).
pub fn edge_ids_by_pairing(g: &Graph, node_ids: &[u64]) -> Vec<u64> {
    assert_eq!(node_ids.len(), g.num_nodes(), "one ID per node");
    let bound = node_ids.iter().copied().max().unwrap_or(1);
    let base = bound
        .checked_add(1)
        .and_then(|b| b.checked_mul(bound + 1))
        .expect("(B+1)^2 must fit in u64; use denser node IDs");
    let _ = base;
    g.edges()
        .map(|e| {
            let [u, v] = g.endpoints(e);
            let (a, b) = {
                let (x, y) = (node_ids[u.index()], node_ids[v.index()]);
                if x < y {
                    (x, y)
                } else {
                    (y, x)
                }
            };
            a * (bound + 1) + b
        })
        .collect()
}

/// Result of the Linial edge-coloring adapter.
#[derive(Debug, Clone)]
pub struct LinialEdgeResult {
    /// Proper edge coloring with `palette` colors.
    pub coloring: EdgeColoring,
    /// Palette size (`O(Δ̄²)`).
    pub palette: u64,
    /// Line-graph rounds used (`O(log* n)`); each costs O(1) rounds on `G`.
    pub rounds: u64,
    /// Messages delivered over the run (identical on every engine).
    pub messages: u64,
}

/// Computes an `O(Δ̄²)`-edge coloring of `g` in `O(log* n)` line-graph
/// rounds by running Linial's protocol on `L(G)` with pairing-derived edge
/// IDs, on whatever engine `rt` carries. This is the "initial edge
/// coloring with X colors" every Section-4 construction of the paper
/// starts from.
///
/// # Errors
///
/// Propagates [`RunError`] from the executor.
pub fn linial_edge_coloring(
    g: &Graph,
    node_ids: &[u64],
    rt: &Runtime,
) -> Result<LinialEdgeResult, RunError> {
    let lg = LineGraph::of(g);
    let eids = edge_ids_by_pairing(g, node_ids);
    if g.num_edges() == 0 {
        return Ok(LinialEdgeResult {
            coloring: EdgeColoring::uncolored(0),
            palette: 1,
            rounds: 0,
            messages: 0,
        });
    }
    let net = Network::with_ids(lg.graph(), eids.clone());
    let bound = node_ids.iter().copied().max().unwrap_or(1);
    let m0 = (bound + 1) * (bound + 1);
    let res = linial::color_from_initial(&net, eids, m0, rt)?;
    Ok(LinialEdgeResult {
        coloring: EdgeColoring::from_complete(res.colors),
        palette: res.palette,
        rounds: res.rounds,
        messages: res.messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::{coloring, generators};

    #[test]
    fn pairing_ids_are_distinct() {
        let g = generators::gnp(40, 0.2, 1);
        let ids: Vec<u64> = (1..=40).collect();
        let eids = edge_ids_by_pairing(&g, &ids);
        let mut sorted = eids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), g.num_edges(), "edge ids must be distinct");
    }

    #[test]
    fn linial_edge_coloring_is_proper_and_small() {
        for g in [
            generators::random_regular(40, 4, 2),
            generators::petersen(),
            generators::complete_bipartite(5, 5),
        ] {
            let ids: Vec<u64> = (1..=g.num_nodes() as u64).collect();
            let res = linial_edge_coloring(&g, &ids, &Runtime::serial()).unwrap();
            coloring::check_edge_coloring(&g, &res.coloring).expect("proper edge coloring");
            let dbar = g.max_edge_degree() as u64;
            assert!(
                res.palette <= 4 * dbar * dbar + 50 * dbar + 100,
                "palette {} not O(Δ̄²) for Δ̄={dbar}",
                res.palette
            );
        }
    }

    #[test]
    fn empty_graph_short_circuits() {
        let g = deco_graph::Graph::empty(5);
        let res = linial_edge_coloring(&g, &[1, 2, 3, 4, 5], &Runtime::serial()).unwrap();
        assert_eq!(res.rounds, 0);
    }

    #[test]
    fn rounds_flat_in_n() {
        let ids_small: Vec<u64> = (1..=60).collect();
        let ids_large: Vec<u64> = (1..=600).collect();
        let small =
            linial_edge_coloring(&generators::cycle(60), &ids_small, &Runtime::serial()).unwrap();
        let large =
            linial_edge_coloring(&generators::cycle(600), &ids_large, &Runtime::serial()).unwrap();
        assert!(large.rounds <= small.rounds + 2, "log* growth only");
    }
}
