//! List coloring by iterating over the classes of an initial proper
//! coloring — the classic "one color class per round" reduction.
//!
//! Given a conflict graph `H`, per-node color lists with `|L_v| > deg_H(v)`,
//! and a proper initial coloring with `X` classes, process classes
//! `0, 1, …, X−1` sequentially: in its class's round, a node picks the
//! smallest list color not already finalized by a neighbor. A class is an
//! independent set, so same-round choices never conflict; earlier classes
//! are avoided explicitly; later classes avoid us. Total: `X` rounds.
//!
//! Combined with Linial's `O(Δ̄²)`-coloring this yields the classic
//! `O(Δ̄² + log* n)` baseline \[Lin87\], and — crucially for the paper — the
//! base case `T(O(1), S, C) = O(log* X)` used throughout Section 4: when
//! the degree is constant, `X = O(1)` classes suffice after an `O(log* n)`
//! initial coloring.
//!
//! Two interchangeable implementations:
//! * [`ByClassesProtocol`] — faithful message passing (used by tests),
//! * [`list_color_by_classes`] — a centralized sweep producing *identical*
//!   output with the same round charge (used at scale).

use deco_graph::Graph;
use deco_local::{Executor, Network, NodeCtx, NodeProgram, Protocol, RunError};
use deco_runtime::Runtime;
use std::collections::HashSet;

/// Validates the precondition `|lists[v]| ≥ deg(v) + 1` for all nodes.
///
/// Returns the index of the first violating node, if any.
pub fn find_list_too_small(h: &Graph, lists: &[Vec<u32>]) -> Option<usize> {
    h.nodes()
        .find(|&v| lists[v.index()].len() <= h.degree(v))
        .map(|v| v.index())
}

/// Centralized sweep equivalent of [`ByClassesProtocol`].
///
/// Processes initial classes in increasing order; each node picks the
/// smallest color in its list unused by already-finalized neighbors. Charges
/// `num_classes` rounds (each class costs one synchronous round in the
/// message-passing version, whether or not it is empty — nodes cannot know).
///
/// # Panics
///
/// Panics if some list is not larger than the node's degree, or if `initial`
/// is not a proper coloring with values `< num_classes`.
pub fn list_color_by_classes(
    h: &Graph,
    lists: &[Vec<u32>],
    initial: &[u32],
    num_classes: u32,
) -> (Vec<u32>, u64) {
    assert_eq!(lists.len(), h.num_nodes());
    assert_eq!(initial.len(), h.num_nodes());
    assert!(
        find_list_too_small(h, lists).is_none(),
        "every list must exceed the node's degree"
    );
    assert!(
        initial.iter().all(|&c| c < num_classes),
        "initial colors must be < num_classes"
    );

    // Nodes sorted by class; stable order within a class is irrelevant for
    // correctness (classes are independent sets) but we keep node order for
    // determinism.
    let mut order: Vec<usize> = (0..h.num_nodes()).collect();
    order.sort_by_key(|&v| initial[v]);

    let mut colors: Vec<Option<u32>> = vec![None; h.num_nodes()];
    for &v in &order {
        let vid = deco_graph::NodeId::from(v);
        let forbidden: HashSet<u32> = h.neighbors(vid).filter_map(|w| colors[w.index()]).collect();
        debug_assert!(
            h.neighbors(vid).all(|w| initial[w.index()] != initial[v]),
            "initial coloring must be proper"
        );
        let pick = lists[v]
            .iter()
            .copied()
            .find(|c| !forbidden.contains(c))
            .expect("list larger than degree always has a free color");
        colors[v] = Some(pick);
    }
    (
        colors
            .into_iter()
            .map(|c| c.expect("all nodes colored"))
            .collect(),
        u64::from(num_classes),
    )
}

/// Message-passing protocol for list coloring by class sweep.
#[derive(Debug, Clone)]
pub struct ByClassesProtocol {
    /// Per-node color lists (`|lists[v]| > deg(v)`).
    pub lists: Vec<Vec<u32>>,
    /// Proper initial coloring with `num_classes` classes.
    pub initial: Vec<u32>,
    /// Number of classes (= rounds of the fixed schedule).
    pub num_classes: u32,
}

/// Node program for [`ByClassesProtocol`].
#[derive(Debug)]
pub struct ByClassesProgram {
    list: Vec<u32>,
    class: u32,
    num_classes: u32,
    round: u32,
    forbidden: HashSet<u32>,
    chosen: Option<u32>,
}

impl NodeProgram for ByClassesProgram {
    type Msg = u32;
    type Output = u32;

    fn send(&mut self, ctx: &NodeCtx<'_>) -> Vec<Option<u32>> {
        // Broadcast the finalized color; nothing before finalizing.
        match self.chosen {
            Some(c) => vec![Some(c); ctx.degree()],
            None => Vec::new(),
        }
    }

    fn receive(&mut self, _ctx: &NodeCtx<'_>, inbox: &[Option<u32>]) {
        for c in inbox.iter().flatten() {
            self.forbidden.insert(*c);
        }
        // Round t (1-based) finalizes class t−1.
        if self.round == self.class && self.chosen.is_none() {
            let pick = self
                .list
                .iter()
                .copied()
                .find(|c| !self.forbidden.contains(c))
                .expect("list larger than degree always has a free color");
            self.chosen = Some(pick);
        }
        self.round += 1;
    }

    fn output(&self, _ctx: &NodeCtx<'_>) -> Option<u32> {
        // All nodes run the full schedule: num_classes rounds to finalize
        // every class, plus one round so the last class's colors are
        // broadcast (keeps schedules uniform; the extra round carries the
        // final announcements).
        (self.round > self.num_classes).then(|| self.chosen.expect("finalized by schedule"))
    }
}

impl Protocol for ByClassesProtocol {
    type Program = ByClassesProgram;

    fn spawn(&self, ctx: &NodeCtx<'_>) -> ByClassesProgram {
        ByClassesProgram {
            list: self.lists[ctx.node.index()].clone(),
            class: self.initial[ctx.node.index()],
            num_classes: self.num_classes,
            round: 0,
            forbidden: HashSet::new(),
            chosen: None,
        }
    }
}

/// Runs the message-passing class sweep on `net`, on whatever engine `rt`
/// carries.
///
/// # Errors
///
/// Propagates [`RunError`] from the executor.
///
/// # Panics
///
/// Panics if some list is not larger than the node's degree.
pub fn list_color_by_classes_mp(
    net: &Network<'_>,
    lists: Vec<Vec<u32>>,
    initial: Vec<u32>,
    num_classes: u32,
    rt: &Runtime,
) -> Result<(Vec<u32>, u64), RunError> {
    assert!(
        find_list_too_small(net.graph(), &lists).is_none(),
        "every list must exceed the node's degree"
    );
    let protocol = ByClassesProtocol {
        lists,
        initial,
        num_classes,
    };
    let outcome = rt.execute(net, &protocol, u64::from(num_classes) + 2)?;
    Ok((outcome.outputs, outcome.rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::{coloring, generators};
    use deco_local::IdAssignment;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// Random (deg+1)-lists over palette `c_max`, plus a proper initial
    /// coloring (greedy by index — fine for tests).
    fn random_instance(h: &Graph, c_max: u32, seed: u64) -> (Vec<Vec<u32>>, Vec<u32>, u32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lists = h
            .nodes()
            .map(|v| {
                let need = h.degree(v) + 1;
                let mut all: Vec<u32> = (0..c_max.max(need as u32)).collect();
                all.shuffle(&mut rng);
                let mut l: Vec<u32> = all.into_iter().take(need).collect();
                l.sort_unstable();
                l
            })
            .collect();
        // Greedy proper initial coloring with ≤ Δ+1 classes.
        let mut initial = vec![u32::MAX; h.num_nodes()];
        for v in h.nodes() {
            let used: HashSet<u32> = h.neighbors(v).map(|w| initial[w.index()]).collect();
            initial[v.index()] = (0..).find(|c| !used.contains(c)).unwrap();
        }
        let num_classes = initial.iter().max().copied().unwrap_or(0) + 1;
        (lists, initial, num_classes)
    }

    #[test]
    fn centralized_sweep_is_proper_and_in_list() {
        for (g, seed) in [
            (generators::random_regular(40, 5, 1), 11u64),
            (generators::gnp(60, 0.1, 2), 12),
            (generators::complete(7), 13),
        ] {
            let (lists, initial, k) = random_instance(&g, 64, seed);
            let (colors, rounds) = list_color_by_classes(&g, &lists, &initial, k);
            coloring::check_vertex_coloring(&g, &colors).expect("proper");
            for v in g.nodes() {
                assert!(lists[v.index()].contains(&colors[v.index()]));
            }
            assert_eq!(rounds, u64::from(k));
        }
    }

    #[test]
    fn message_passing_matches_centralized() {
        let g = generators::random_regular(30, 4, 7);
        let (lists, initial, k) = random_instance(&g, 32, 21);
        let (fast, _) = list_color_by_classes(&g, &lists, &initial, k);
        let net = Network::new(&g, IdAssignment::Shuffled(3));
        let (mp, rounds) =
            list_color_by_classes_mp(&net, lists.clone(), initial.clone(), k, &Runtime::serial())
                .unwrap();
        assert_eq!(fast, mp, "centralized sweep must equal the distributed run");
        assert_eq!(rounds, u64::from(k) + 1);
    }

    #[test]
    fn works_with_tight_lists() {
        // Exactly deg+1 colors everywhere, shared palette: classic greedy case.
        let g = generators::complete(5);
        let lists: Vec<Vec<u32>> = g.nodes().map(|_| (0..5).collect()).collect();
        let initial: Vec<u32> = (0..5).collect();
        let (colors, _) = list_color_by_classes(&g, &lists, &initial, 5);
        coloring::check_vertex_coloring(&g, &colors).expect("proper");
    }

    #[test]
    #[should_panic(expected = "exceed the node's degree")]
    fn rejects_small_lists() {
        let g = generators::complete(4);
        let lists: Vec<Vec<u32>> = g.nodes().map(|_| vec![0, 1]).collect();
        let initial: Vec<u32> = (0..4).collect();
        let _ = list_color_by_classes(&g, &lists, &initial, 4);
    }

    #[test]
    fn empty_graph_zero_classes() {
        let g = Graph::empty(3);
        let lists: Vec<Vec<u32>> = vec![vec![0]; 3];
        let (colors, rounds) = list_color_by_classes(&g, &lists, &[0, 0, 0], 1);
        assert_eq!(colors, vec![0, 0, 0]);
        assert_eq!(rounds, 1);
    }
}
