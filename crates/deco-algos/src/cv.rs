//! Cole–Vishkin 3-coloring of rooted forests in `O(log* n)` rounds.
//!
//! The classic bit-trick protocol [CV86, GPS88]: every non-root node
//! compares its color with its parent's; writing `i` for the lowest bit
//! index where they differ, the new color is `2i + bit_i(own)`. One step
//! maps `L`-bit colors to `O(log L)`-bit colors, so `O(log* n)` steps reach
//! the 6-color fixpoint; three shift-down + recolor phases finish at 3.
//!
//! Used here as an independently tested classical building block (rooted
//! forests arise from any acyclic orientation); the degree-2 subroutine the
//! defective coloring needs lives in [`crate::deg2`] because the paper's
//! conflict components are unrooted paths *and cycles*.

use deco_graph::{Graph, NodeId};
use deco_local::{Executor, Network, NodeCtx, NodeProgram, Protocol, RunError};
use deco_runtime::Runtime;

/// Number of Cole–Vishkin halving steps needed from `bits`-bit colors to
/// reach the 6-color (3-bit) fixpoint.
fn cv_steps(mut bits: u32) -> u32 {
    let mut steps = 0;
    while bits > 3 {
        // L-bit colors -> colors of value < 2·L, i.e. ⌈log₂ L⌉+1 bits.
        bits = 32 - (bits - 1).leading_zeros() + 1;
        steps += 1;
        if steps > 64 {
            break;
        }
    }
    steps
}

/// One Cole–Vishkin step: the new color `2i + bit_i(own)` for the lowest
/// differing bit `i` against the reference color.
fn cv_step(own: u64, reference: u64) -> u64 {
    debug_assert_ne!(own, reference, "CV requires distinct colors");
    let i = (own ^ reference).trailing_zeros() as u64;
    2 * i + ((own >> i) & 1)
}

/// The message: this node's current color.
type Msg = u64;

/// Protocol state machine phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Iterated CV reduction (fixed number of steps).
    Reduce(u32),
    /// Shift-down + eliminate color class `c` (c = 5, 4, 3).
    Eliminate(u64),
    /// Finished.
    Done,
}

/// Cole–Vishkin 3-coloring protocol for a rooted forest.
///
/// `parent[v]` is the parent of `v` (`None` for roots). The forest must be
/// consistent with the network graph: every parent is a neighbor.
#[derive(Debug, Clone)]
pub struct CvForestColoring {
    /// Parent of each node (`None` = root).
    pub parent: Vec<Option<NodeId>>,
    steps: u32,
}

impl CvForestColoring {
    /// Builds the protocol; `id_bits` is the bit-length of the initial
    /// colors (the IDs).
    pub fn new(parent: Vec<Option<NodeId>>, id_bits: u32) -> CvForestColoring {
        // cv_steps reaches 3-bit colors (< 8); one extra step lands in the
        // true CV fixpoint {0..5}, which the three elimination phases need.
        CvForestColoring {
            parent,
            steps: cv_steps(id_bits.max(4)) + 1,
        }
    }

    /// Rounds of the fixed schedule: CV steps + 3 elimination phases of 2
    /// rounds each (shift-down, then recolor).
    pub fn rounds(&self) -> u64 {
        u64::from(self.steps) + 3 * 2
    }
}

/// Node program for [`CvForestColoring`].
#[derive(Debug)]
pub struct CvForestProgram {
    color: u64,
    parent_port: Option<usize>,
    phase: Phase,
    shifted: bool,
}

impl NodeProgram for CvForestProgram {
    type Msg = Msg;
    type Output = u8;

    fn send(&mut self, ctx: &NodeCtx<'_>) -> Vec<Option<Msg>> {
        vec![Some(self.color); ctx.degree()]
    }

    fn receive(&mut self, _ctx: &NodeCtx<'_>, inbox: &[Option<Msg>]) {
        let parent_color = self
            .parent_port
            .map(|p| inbox[p].expect("parent always sends"));
        match self.phase {
            Phase::Reduce(remaining) => {
                // Roots fabricate a reference that differs in bit 0.
                let reference = parent_color.unwrap_or(self.color ^ 1);
                self.color = cv_step(self.color, reference);
                self.phase = if remaining > 1 {
                    Phase::Reduce(remaining - 1)
                } else {
                    self.shifted = false;
                    Phase::Eliminate(5)
                };
            }
            Phase::Eliminate(target) => {
                if !self.shifted {
                    // Shift-down: adopt the parent's color; roots pick a
                    // fresh color in {0,1,2} different from their own
                    // (children will adopt the *old* root color, which they
                    // received this round — hence shift-down first).
                    self.color = match parent_color {
                        Some(pc) => pc,
                        None => (self.color + 1) % 3,
                    };
                    self.shifted = true;
                } else {
                    // After shift-down all children of a node share its old
                    // color, so a node's neighbors use at most 2 colors:
                    // parent's (received) and its own former color now on
                    // every child. Nodes of the eliminated class pick a
                    // free color from {0,1,2}.
                    if self.color == target {
                        // After shift-down every child holds this node's
                        // pre-shift color, so the inbox contains at most two
                        // distinct forbidden values: the parent's color and
                        // the (uniform) children's color.
                        let mut forbidden: Vec<u64> = Vec::with_capacity(2);
                        if let Some(pc) = parent_color {
                            forbidden.push(pc);
                        }
                        for (port, msg) in inbox.iter().enumerate() {
                            if Some(port) != self.parent_port {
                                if let Some(c) = msg {
                                    if !forbidden.contains(c) {
                                        forbidden.push(*c);
                                    }
                                }
                            }
                        }
                        // After shift-down children are monochromatic, so
                        // forbidden has ≤ 2 distinct entries.
                        debug_assert!(forbidden.len() <= 2, "children must be uniform");
                        self.color = (0..3u64)
                            .find(|c| !forbidden.contains(c))
                            .expect("≤ 2 forbidden colors in {0,1,2}");
                    }
                    self.shifted = false;
                    self.phase = if target > 3 {
                        Phase::Eliminate(target - 1)
                    } else {
                        Phase::Done
                    };
                }
            }
            Phase::Done => {}
        }
    }

    fn output(&self, _ctx: &NodeCtx<'_>) -> Option<u8> {
        matches!(self.phase, Phase::Done).then(|| {
            debug_assert!(self.color < 3);
            self.color as u8
        })
    }
}

impl Protocol for CvForestColoring {
    type Program = CvForestProgram;

    fn spawn(&self, ctx: &NodeCtx<'_>) -> CvForestProgram {
        let parent = self.parent[ctx.node.index()];
        let parent_port = parent.map(|p| {
            ctx.ports
                .iter()
                .position(|a| a.neighbor == p)
                .expect("parent must be a neighbor")
        });
        CvForestProgram {
            color: ctx.id,
            parent_port,
            phase: Phase::Reduce(self.steps.max(1)),
            shifted: false,
        }
    }
}

/// Result of [`three_color_rooted_forest`].
#[derive(Debug, Clone)]
pub struct ForestColoring {
    /// Proper 3-coloring of the forest's nodes.
    pub colors: Vec<u8>,
    /// Rounds used by the fixed schedule.
    pub rounds: u64,
    /// Messages delivered over the run (identical on every engine).
    pub messages: u64,
}

/// 3-colors the nodes of a rooted forest in `O(log* n)` rounds, on
/// whatever engine `rt` carries.
///
/// # Errors
///
/// Propagates [`RunError`] from the executor.
///
/// # Panics
///
/// Panics if `parent` is inconsistent with the graph (a parent that is not
/// a neighbor) or contains a cycle (detected via output validation in debug
/// builds).
pub fn three_color_rooted_forest(
    net: &Network<'_>,
    parent: Vec<Option<NodeId>>,
    rt: &Runtime,
) -> Result<ForestColoring, RunError> {
    let id_bits = 64 - net.max_id().leading_zeros();
    let protocol = CvForestColoring::new(parent, id_bits);
    let budget = protocol.rounds();
    let outcome = rt.execute(net, &protocol, budget + 2)?;
    Ok(ForestColoring {
        colors: outcome.outputs,
        rounds: outcome.rounds,
        messages: outcome.messages,
    })
}

/// Derives a parent assignment for a forest graph by rooting every
/// component at its smallest node id (BFS). Utility for tests/examples.
///
/// # Panics
///
/// Panics if `g` contains a cycle.
pub fn root_forest(g: &Graph) -> Vec<Option<NodeId>> {
    let mut parent: Vec<Option<NodeId>> = vec![None; g.num_nodes()];
    let mut seen = vec![false; g.num_nodes()];
    for s in g.nodes() {
        if seen[s.index()] {
            continue;
        }
        seen[s.index()] = true;
        let mut queue = std::collections::VecDeque::from([s]);
        let mut edges_seen = 0usize;
        let mut nodes_seen = 1usize;
        while let Some(v) = queue.pop_front() {
            for w in g.neighbors(v) {
                edges_seen += 1;
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    parent[w.index()] = Some(v);
                    nodes_seen += 1;
                    queue.push_back(w);
                }
            }
        }
        assert!(edges_seen / 2 == nodes_seen - 1, "graph contains a cycle");
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::{coloring, generators};
    use deco_local::IdAssignment;

    fn check(g: &Graph, assignment: IdAssignment) -> ForestColoring {
        let net = Network::new(g, assignment);
        let parent = root_forest(g);
        let res = three_color_rooted_forest(&net, parent.clone(), &Runtime::serial())
            .expect("terminates");
        let as_u32: Vec<u32> = res.colors.iter().map(|&c| u32::from(c)).collect();
        coloring::check_vertex_coloring(g, &as_u32).expect("proper 3-coloring");
        assert!(res.colors.iter().all(|&c| c < 3));
        res
    }

    #[test]
    fn colors_paths_and_binary_trees() {
        check(&generators::path(50), IdAssignment::Sequential);
        check(&generators::binary_tree(6), IdAssignment::Shuffled(3));
    }

    #[test]
    fn colors_random_trees() {
        for seed in 0..5 {
            check(
                &generators::random_tree(200, seed),
                IdAssignment::Shuffled(seed),
            );
        }
    }

    #[test]
    fn colors_star_forest() {
        // Stars: every leaf is a child of the center — the sibling-heavy
        // case the shift-down phase exists for.
        let g = generators::disjoint_union(&[generators::star(20), generators::star(7)]);
        check(&g, IdAssignment::SparseRandom(9));
    }

    #[test]
    fn rounds_are_logstar() {
        let res = check(&generators::random_tree(5000, 7), IdAssignment::Shuffled(7));
        assert!(res.rounds <= 20, "O(log* n) expected, got {}", res.rounds);
    }

    #[test]
    fn rounds_flat_in_n() {
        let small = check(&generators::path(64), IdAssignment::Sequential).rounds;
        let large = check(&generators::path(16384), IdAssignment::Sequential).rounds;
        assert!(large <= small + 2);
    }

    #[test]
    fn cv_step_separates_parent_chains() {
        // Direct unit check of the bit trick: distinct (own, parent) pairs
        // with own != parent map to colors that differ whenever the pair is
        // chained: cv(a,b) != cv(b,c) for a != b, b != c.
        for a in 0..32u64 {
            for b in 0..32u64 {
                if a == b {
                    continue;
                }
                for c in 0..32u64 {
                    if b == c {
                        continue;
                    }
                    assert_ne!(cv_step(a, b), cv_step(b, c), "a={a} b={b} c={c}");
                }
            }
        }
    }

    #[test]
    fn cv_steps_schedule_is_logstar() {
        assert_eq!(cv_steps(3), 0);
        assert!(cv_steps(64) <= 5);
        assert!(cv_steps(4) >= 1);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn root_forest_rejects_cycles() {
        let _ = root_forest(&generators::cycle(5));
    }
}
