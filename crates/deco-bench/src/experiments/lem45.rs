//! `lem45` — the iterated color space reduction (Lemma 4.5): `k` chained
//! Lemma 4.3 steps shrink the palette geometrically, consuming a factor
//! `24·H_{2p}·log p` of slack per step; with slack `≥ req^k`, every
//! intermediate instance stays (deg+1)-feasible.

use crate::table::{fnum, Table};
use crate::workloads::greedy_assign;
use deco_algos::greedy;
use deco_core::instance::{self, ListInstance};
use deco_core::solver::space_requirement;
use deco_core::space;
use deco_graph::coloring::Color;
use deco_graph::generators;
use deco_runtime::Runtime;
use std::fmt::Write as _;

/// Runs the experiment and returns the report.
pub fn run(_rt: &Runtime) -> String {
    let mut out = String::from("# lem45 — iterated space reduction (Lemma 4.5)\n\n");
    // Parameters chosen so the whole k-step chain is *materially* feasible:
    // the initial lists must hold S·deg(e) colors, so S = req^k forces a
    // low-degree graph. d = 4 ⇒ deg(e) = 6; p = 2 ⇒ q = 2, req = 24·H₂ = 36;
    // k = 2 ⇒ S₀ = 1296 and lists of 1296·6+1 = 7777 ≤ C = 8192.
    let g = generators::random_regular(36, 4, 9);
    let p = 2u32;
    let k = 2u32;
    let c0 = 8192u32;
    let req0 = space_requirement(c0, p);
    let s0 = req0.powi(k as i32);
    let _ = writeln!(
        out,
        "graph: regular(36,4) (deg(e) = 6); C₀ = {c0}, p = {p}, k = {k}; \
         req(C₀,p) = {}, S₀ = req^{k} = {}\n",
        fnum(req0),
        fnum(s0)
    );
    let inst0 = instance::random_with_slack(&g, c0, s0, 10);
    let x: Vec<u32> = {
        let col = greedy::greedy_edge_coloring(&g, greedy::EdgeOrder::ById);
        g.edges().map(|e| col.get(e).unwrap()).collect()
    };

    let mut t = Table::new([
        "step",
        "max palette C_i",
        "instances",
        "min slack",
        "req(C_i,p)",
        "all (deg+1)?",
    ]);
    let mut current: Vec<(ListInstance, Vec<u32>)> = vec![(inst0, x)];
    let mut chain_ok = true;
    for step in 1..=k {
        let mut next: Vec<(ListInstance, Vec<u32>)> = Vec::new();
        let mut all_ok = true;
        let mut max_palette = 0u32;
        let mut min_slack = f64::INFINITY;
        for (inst, xc) in &current {
            if inst.graph().num_edges() == 0 {
                continue;
            }
            let red = space::reduce_color_space(inst, p, xc, &mut greedy_assign)
                .expect("reduction succeeds");
            for sub in red.sub_instances {
                all_ok &= sub.instance.validate_slack(1.0).is_ok();
                max_palette = max_palette.max(sub.instance.palette());
                min_slack = min_slack.min(sub.instance.min_slack());
                next.push((sub.instance, sub.x_coloring));
            }
        }
        chain_ok &= all_ok;
        t.row([
            step.to_string(),
            max_palette.to_string(),
            next.len().to_string(),
            fnum(min_slack),
            fnum(space_requirement(max_palette.max(2), p)),
            if all_ok {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
        current = next;
    }
    out.push_str(&t.render());

    // Close the loop: the leaves are (deg+1)-list instances over a halved-
    // twice palette; solve them greedily and lift back — every edge of the
    // chain must end with a color from its *original* list (restrictions
    // only ever intersect the list).
    let mut solved_edges = 0usize;
    for (inst, _) in &current {
        let lists: Vec<Vec<Color>> = inst.lists().iter().map(|l| l.as_slice().to_vec()).collect();
        let coloring =
            greedy::greedy_list_edge_coloring(inst.graph(), &lists, greedy::EdgeOrder::ById)
                .expect("leaf instances are (deg+1)-feasible");
        assert!(coloring.is_complete());
        solved_edges += inst.graph().num_edges();
    }
    let _ = writeln!(
        out,
        "\nchain feasible end to end: {}; leaf instances solved: {solved_edges} edges \
         (= {} original edges, every leaf a (deg+1)-list instance).\n\n\
         With the paper's p = √Δ̄ and k = log_p C = 2c, the chain's total\n\
         slack requirement (24·H₂ₚ·log p)^k = O(log^{{4c}} Δ̄) is exactly the\n\
         β that Lemma 4.2 supplies — the coupling behind Theorem 4.1.",
        if chain_ok { "YES" } else { "NO" },
        g.num_edges(),
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn chain_stays_feasible() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("chain feasible end to end: YES"), "{r}");
    }
}
