//! `thm41-measured` — the executed Theorem 4.1 solver on real graphs:
//! correctness on every workload, adaptive rounds, and wall time, next to
//! the randomized Luby baseline.

use crate::table::Table;
use crate::workloads::{ids_for, mixed_suite};
use deco_algos::luby;
use deco_core::solver::{solve_two_delta_minus_one, SolverConfig};
use deco_graph::LineGraph;
use deco_local::{IdAssignment, Network};
use deco_runtime::Runtime;
use std::fmt::Write as _;

/// Runs the experiment and returns the report.
pub fn run(rt: &Runtime) -> String {
    let mut out = format!(
        "# thm41-measured — executed solver (practical parameters)\n\n\
         Rounds are adaptively charged (classes with no member edges are\n\
         skipped); the faithful scheduled budgets are in thm41-budget.\n\
         engine: {}\n\n",
        rt.descriptor()
    );
    let mut t = Table::new([
        "workload".to_string(),
        "n".to_string(),
        "m".to_string(),
        "Δ̄".to_string(),
        "X rounds".to_string(),
        "solver rounds".to_string(),
        "messages".to_string(),
        "colors ≤ 2Δ−1".to_string(),
        "sweeps".to_string(),
        "Luby rounds".to_string(),
        format!("wall ms [{}]", rt.descriptor()),
    ]);
    for scale in [200usize, 800] {
        for w in mixed_suite(scale, 42) {
            let g = &w.graph;
            if g.num_edges() == 0 {
                continue;
            }
            let res = solve_two_delta_minus_one(g, &ids_for(g), SolverConfig::default(), rt)
                .expect("solver succeeds");
            let wall = res.wall_time.as_millis();
            let bound = (2 * g.max_degree()).saturating_sub(1).max(1);
            assert!(res.colors.distinct_colors() <= bound);

            // Luby baseline on the line graph with the same (2Δ−1) palette.
            let lg = LineGraph::of(g);
            let lists: Vec<Vec<u32>> = lg
                .graph()
                .nodes()
                .map(|_| (0..bound as u32).collect())
                .collect();
            let net = Network::new(lg.graph(), IdAssignment::Shuffled(7));
            let lres = luby::luby_list_coloring(&net, lists, 99, rt).expect("luby terminates");

            t.row([
                w.name.clone(),
                g.num_nodes().to_string(),
                g.num_edges().to_string(),
                g.max_edge_degree().to_string(),
                res.x_rounds.to_string(),
                res.cost.actual_rounds().to_string(),
                res.messages.to_string(),
                format!("{} ≤ {}", res.colors.distinct_colors(), bound),
                res.solve_stats.sweeps.to_string(),
                lres.rounds.to_string(),
                wall.to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nEvery row verified: complete, proper, every color within the edge's\n\
         list, ≤ 2Δ−1 colors. The deterministic solver's adaptive rounds are\n\
         within a small factor of the randomized baseline at these scales;\n\
         its guarantee is deterministic and Δ-local (no dependence on n\n\
         beyond log* n)."
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn measured_report_runs() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("Every row verified"));
    }
}
