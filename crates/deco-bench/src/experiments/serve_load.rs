//! `serve-load` — throughput and latency of the serving daemon under
//! concurrent clients.
//!
//! For each fleet size N ∈ {1, 4, 16} the experiment starts a fresh
//! in-process daemon (serial engine, so the solve work per request is
//! deterministic and the trend series stay comparable across CI legs)
//! and drives N client threads against it. Every client runs the same
//! mixed workload the protocol was built for: a batch of one-shot
//! solves over small random-regular graphs plus one full churn session
//! (open, a short update trace, close). Each terminal request is timed
//! individually; the sweep reports requests/sec, p50/p95 latency, and
//! the deepest the daemon's queue ever got ([`DaemonStatus`]'s
//! `max_queue_depth`).
//!
//! `DECO_SERVE_LOAD_ADDR` redirects the fleet at an already-running
//! external daemon instead (the CI `serve-smoke` job points it at the
//! daemon it booted over TCP); queue depth is then the daemon's
//! lifetime high-water mark, and the engine is whatever the daemon was
//! started with. `DECO_SERVE_SMOKE=1` shrinks the per-client workload
//! for the smoke legs. Headline numbers append to `DECO_BENCH_JSON`
//! (see [`crate::records`]) as `serve-load/rps-n{N}` and
//! `serve-load/p95-ns-n{N}` so `bench-trend` can gate regressions.

use crate::records::append_trend_records;
use crate::table::Table;
use deco_graph::{generators, EdgeId, EdgeUpdate, Graph};
use deco_runtime::Runtime;
use deco_serve::client::Client;
use deco_serve::config::ServeConfig;
use deco_serve::server::{Server, ServerHandle};
use deco_serve::transport::ServeAddr;
use deco_serve::wire::{DaemonStatus, GraphSource};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The fleet sizes the acceptance bar names.
const FLEETS: [usize; 3] = [1, 4, 16];
/// Worker threads for the in-process daemon — fixed (not num_cpus) so
/// rps/latency trends compare across machines and CI legs.
const WORKERS: usize = 4;
/// One-shot solves per client in the standard run.
const SOLVES_STANDARD: usize = 6;
/// Session updates per client in the standard run.
const UPDATES_STANDARD: usize = 4;
/// Node count of the per-request graphs (degree stays 4).
const NODES_STANDARD: usize = 40;

fn smoke_mode() -> bool {
    std::env::var("DECO_SERVE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Where a sweep's clients connect: a daemon this process owns, or an
/// external one named by `DECO_SERVE_LOAD_ADDR`.
enum Target {
    InProc(ServerHandle),
    Remote(ServeAddr),
}

impl Target {
    fn connect(&self) -> Client {
        match self {
            Target::InProc(handle) => handle.connect().expect("in-process connect"),
            Target::Remote(addr) => Client::connect(addr).expect("dial external daemon"),
        }
    }

    fn status(&self) -> DaemonStatus {
        match self {
            Target::InProc(handle) => handle.status(),
            Target::Remote(_) => self.connect().status().expect("status request"),
        }
    }
}

/// One client's workload: `solves` one-shot solves, then a churn
/// session (open, `updates` alternating remove/insert updates on the
/// first edge, close). Returns the latency of every terminal request.
fn client_workload(
    target: &Target,
    fleet: usize,
    cid: usize,
    solves: usize,
    updates: usize,
    nodes: usize,
) -> Vec<Duration> {
    let mut client = target.connect();
    let mut lat = Vec::with_capacity(solves + updates + 2);
    let timed = |client: &mut Client, f: &mut dyn FnMut(&mut Client)| {
        let t0 = Instant::now();
        f(client);
        t0.elapsed()
    };
    for r in 0..solves {
        // Vary size and seed per request so the daemon never sees the
        // exact same frame twice from one client.
        let g = generators::random_regular(nodes + 2 * (r % 4), 4, (cid * 31 + r) as u64 + 1);
        let d = timed(&mut client, &mut |c| {
            c.solve(GraphSource::from_graph(&g), None, false)
                .expect("solve request completes")
                .into_report()
                .expect("solve succeeds");
        });
        lat.push(d);
    }

    let g = generators::random_regular(nodes, 4, cid as u64 + 101);
    let name = format!("load-n{fleet}-c{cid}");
    let d = timed(&mut client, &mut |c| {
        c.open_session(&name, GraphSource::from_graph(&g), None)
            .expect("open_session completes")
            .into_report()
            .expect("session opens");
    });
    lat.push(d);
    for k in 0..updates {
        let upd = toggle(&g, k);
        let d = timed(&mut client, &mut |c| {
            c.update(&name, upd)
                .expect("update completes")
                .into_update()
                .expect("update succeeds");
        });
        lat.push(d);
    }
    let d = timed(&mut client, &mut |c| {
        c.close_session(&name).expect("close_session completes");
    });
    lat.push(d);
    lat
}

/// The k-th update of the session trace: the first edge toggled out and
/// back in, so the trace is valid from any starting graph.
fn toggle(g: &Graph, k: usize) -> EdgeUpdate {
    let [u, v] = g.endpoints(EdgeId::from(0usize));
    if k.is_multiple_of(2) {
        EdgeUpdate::remove(u, v)
    } else {
        EdgeUpdate::insert(u, v)
    }
}

struct Sweep {
    fleet: usize,
    requests: u64,
    wall: Duration,
    /// Sorted ascending.
    latencies: Vec<Duration>,
    max_queue_depth: u64,
    errors: u64,
}

impl Sweep {
    fn rps(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.requests as f64 / self.wall.as_secs_f64()
        }
    }

    fn percentile(&self, q: f64) -> Duration {
        match self.latencies.len() {
            0 => Duration::ZERO,
            n => self.latencies[((n - 1) as f64 * q).round() as usize],
        }
    }
}

/// Drives one fleet of `fleet` clients and gathers the sweep numbers.
fn run_sweep(fleet: usize, solves: usize, updates: usize, nodes: usize) -> Sweep {
    let external = std::env::var("DECO_SERVE_LOAD_ADDR")
        .ok()
        .filter(|v| !v.is_empty());
    let target = match &external {
        Some(raw) => Target::Remote(
            ServeAddr::parse(raw).expect("DECO_SERVE_LOAD_ADDR parses as a serve address"),
        ),
        None => Target::InProc(
            Server::start(ServeConfig {
                workers: WORKERS,
                runtime: Runtime::serial(),
                ..ServeConfig::default()
            })
            .expect("in-process daemon starts"),
        ),
    };

    let t0 = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..fleet)
            .map(|cid| {
                let target = &target;
                scope.spawn(move || client_workload(target, fleet, cid, solves, updates, nodes))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread completes"))
            .collect()
    });
    let wall = t0.elapsed();
    let status = target.status();
    latencies.sort_unstable();
    if let Target::InProc(handle) = target {
        handle.stop();
    }
    Sweep {
        fleet,
        requests: latencies.len() as u64,
        wall,
        latencies,
        max_queue_depth: status.max_queue_depth,
        errors: status.errors,
    }
}

/// Runs the experiment and returns the report.
pub fn run(rt: &Runtime) -> String {
    let smoke = smoke_mode();
    let (solves, updates, nodes) = if smoke {
        (2, 2, 16)
    } else {
        (SOLVES_STANDARD, UPDATES_STANDARD, NODES_STANDARD)
    };
    let external = std::env::var("DECO_SERVE_LOAD_ADDR")
        .ok()
        .filter(|v| !v.is_empty());
    let mut out = String::from("# serve-load — daemon throughput under concurrent clients\n\n");
    let _ = writeln!(
        out,
        "{} workload: per client {solves} solves (random 4-regular, ~{nodes} \
         nodes) + 1 session ({updates} updates); fleets of {FLEETS:?} clients; \
         target: {}. Ambient engine {} is not used — the daemon solves on its \
         own engine so the series stay comparable.\n",
        if smoke { "smoke" } else { "standard" },
        match &external {
            Some(addr) => format!("external daemon at {addr} (lifetime queue high-water)"),
            None => format!("fresh in-process daemon per fleet (serial engine, {WORKERS} workers)"),
        },
        rt.descriptor(),
    );

    let mut t = Table::new([
        "clients",
        "requests",
        "wall",
        "req/s",
        "p50",
        "p95",
        "max queue",
        "errors",
    ]);
    let mut trend: Vec<(String, u64)> = Vec::new();
    for fleet in FLEETS {
        let sweep = run_sweep(fleet, solves, updates, nodes);
        assert_eq!(
            sweep.requests,
            (fleet * (solves + updates + 2)) as u64,
            "every request of every client must get a terminal response"
        );
        t.row([
            sweep.fleet.to_string(),
            sweep.requests.to_string(),
            format!("{:.1?}", sweep.wall),
            format!("{:.0}", sweep.rps()),
            format!("{:.1?}", sweep.percentile(0.50)),
            format!("{:.1?}", sweep.percentile(0.95)),
            sweep.max_queue_depth.to_string(),
            sweep.errors.to_string(),
        ]);
        trend.push((format!("serve-load/rps-n{fleet}"), sweep.rps() as u64));
        trend.push((
            format!("serve-load/p95-ns-n{fleet}"),
            sweep.percentile(0.95).as_nanos() as u64,
        ));
    }
    out.push_str(&t.render());

    let _ = writeln!(
        out,
        "\nEvery request above is one newline-delimited frame and one terminal \
         response; latency is measured request-out to terminal-in at the \
         client, so it includes queue wait — watch p95 diverge from p50 as the \
         fleet outgrows the worker pool.",
    );

    let records: Vec<(&str, u64)> = trend.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    append_trend_records(&records);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke_sweep_serves_every_fleet() {
        std::env::set_var("DECO_SERVE_SMOKE", "1");
        let r = super::run(&deco_runtime::Runtime::serial());
        for fleet in super::FLEETS {
            assert!(
                r.contains(&format!("| {fleet} ")),
                "fleet {fleet} row missing:\n{r}"
            );
        }
        assert!(r.contains("p95"), "report:\n{r}");
    }
}
