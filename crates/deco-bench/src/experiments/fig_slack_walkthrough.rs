//! `fig1-4` — an executable rendering of the paper's Figures 1–4: the
//! Lemma 4.2 walkthrough (defective classes → per-class coloring with the
//! slack solver → recursion on the rest), with DOT exports of every stage.

use crate::table::Table;
use crate::workloads::ids_for;
use deco_algos::edge_adapter;
use deco_core::instance::{self, ListInstance};
use deco_core::slack;
use deco_core::solver::{SolveBranch, SolveError, Solver, SolverConfig};
use deco_graph::coloring::{Color, EdgeColoring};
use deco_graph::{dot, generators, EdgeId};
use deco_runtime::Runtime;
use std::fmt::Write as _;

/// Runs the experiment and returns the report. DOT files land in
/// `target/figures/`.
pub fn run(rt: &Runtime) -> String {
    let mut out = String::from(
        "# fig1-4 — Lemma 4.2 walkthrough (paper Figures 1–4)\n\n\
         Small instance with *tight* lists (exactly deg(e)+1 colors — the\n\
         hard case the figures illustrate), β = 1: defective classes play\n\
         the role of the red/green/blue classes in the paper's figures.\n\n",
    );
    // A small dense instance with tight lists, comparable to the figures.
    let g = generators::gnp(18, 0.5, 11);
    // Palette Δ̄+1: the tightest feasible shared palette, maximizing list
    // overlap so that some edges really do become inactive and the
    // recursion of Figure 4 kicks in.
    let inst = instance::random_deg_plus_one(&g, g.max_edge_degree() as u32 + 1, 13);
    let x = edge_adapter::linial_edge_coloring(&g, &ids_for(&g), rt).expect("linial");
    let xc: Vec<u32> = g.edges().map(|e| x.coloring.get(e).unwrap()).collect();
    let xp = x.palette as u32;
    let _ = writeln!(
        out,
        "instance: n={}, m={}, Δ̄={}, palette C={}, initial X-coloring: {} colors",
        g.num_nodes(),
        g.num_edges(),
        g.max_edge_degree(),
        inst.palette(),
        x.palette
    );

    let figures_dir = std::path::Path::new("target/figures");
    let _ = std::fs::create_dir_all(figures_dir);
    let save_dot = |name: &str, content: String| {
        let _ = std::fs::write(figures_dir.join(name), content);
    };

    // The slack-β inner solver: the real Theorem 4.1 solver.
    let solver = Solver::with_runtime(SolverConfig::default(), *rt);
    let inner = |si: &ListInstance, sx: &[u32]| -> Result<SolveBranch, SolveError> {
        solver.solve_instance(si, sx, xp).map(SolveBranch::from)
    };

    let mut cur = inst.clone();
    let mut cur_x = xc.clone();
    let mut map: Vec<EdgeId> = g.edges().collect();
    let mut final_colors: Vec<Option<Color>> = vec![None; g.num_edges()];
    let mut stage = 0usize;
    let mut t = Table::new([
        "stage",
        "Δ̄",
        "edges",
        "classes nonempty",
        "colored",
        "inactive",
        "residual Δ̄",
    ]);
    while cur.graph().num_edges() > 0 {
        stage += 1;
        let dbar = cur.max_edge_degree();
        if dbar <= 2 {
            // Figures end once the residual is trivial; finish with the solver.
            let sol = solver
                .solve_instance(&cur, &cur_x, xp)
                .expect("solver succeeds");
            for (local, &orig) in map.iter().enumerate() {
                final_colors[orig.index()] = Some(sol.colors[local]);
            }
            t.row([
                format!("{stage} (base)"),
                dbar.to_string(),
                cur.graph().num_edges().to_string(),
                "-".into(),
                cur.graph().num_edges().to_string(),
                "0".into(),
                "0".into(),
            ]);
            break;
        }
        let sweep = slack::sweep(&cur, &cur_x, xp, 1, rt, &inner).expect("sweep succeeds");
        // Figure 1: the defective classes = the sweep's class structure.
        let defective =
            deco_core::defective::defective_edge_coloring(cur.graph(), 1, &cur_x, xp, rt);
        save_dot(
            &format!("fig_stage{stage}_defective.dot"),
            dot::to_dot(
                cur.graph(),
                &format!("stage{stage}_defective"),
                Some(&EdgeColoring::from_complete(defective.colors.clone())),
            ),
        );
        // Figures 2–3: colored edges after the classes are processed.
        save_dot(
            &format!("fig_stage{stage}_colored.dot"),
            dot::to_dot(
                cur.graph(),
                &format!("stage{stage}_colored"),
                Some(&EdgeColoring::from_vec(sweep.colors.clone())),
            ),
        );
        for (local, &orig) in map.iter().enumerate() {
            if let Some(c) = sweep.colors[local] {
                final_colors[orig.index()] = Some(c);
            }
        }
        let res = slack::residual_after_sweep(&cur, &cur_x, &sweep.colors);
        t.row([
            stage.to_string(),
            dbar.to_string(),
            cur.graph().num_edges().to_string(),
            format!(
                "{}/{}",
                sweep.stats.classes_nonempty, sweep.stats.classes_total
            ),
            sweep.stats.colored.to_string(),
            sweep.stats.inactive.to_string(),
            res.instance.max_edge_degree().to_string(),
        ]);
        assert!(
            res.instance.max_edge_degree() <= dbar / 2,
            "Figure 4's halving claim"
        );
        map = res.edge_map.iter().map(|&le| map[le.index()]).collect();
        cur = res.instance;
        cur_x = res.x_coloring;
    }
    out.push_str(&t.render());

    let coloring = EdgeColoring::from_vec(final_colors);
    inst.check_solution(&coloring)
        .expect("walkthrough must end in a valid coloring");
    save_dot("fig_final.dot", dot::to_dot(&g, "final", Some(&coloring)));
    let _ = writeln!(
        out,
        "\nfinal coloring: proper, on-list, {} distinct colors (palette {}); \
         DOT files in target/figures/",
        coloring.distinct_colors(),
        inst.palette()
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn walkthrough_completes_validly() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("final coloring: proper"));
        assert!(r.contains("stage"));
    }
}
