//! `fig6` — the virtual-node splitting of Lemma 4.3 (paper Figure 6):
//! nodes split into virtual copies of bounded degree so the subspace
//! assignment becomes a feasible (deg+1)-list edge coloring instance.

use crate::table::Table;
use deco_core::space::build_virtual_graph;
use deco_graph::{generators, EdgeId, Graph};
use deco_runtime::Runtime;
use std::fmt::Write as _;

fn virtual_stats(g: &Graph, level: u32) -> (usize, usize, usize, usize) {
    let active: Vec<EdgeId> = g.edges().collect();
    let cap = 1usize << (level - 2);
    let vg = build_virtual_graph(g, &active, cap);
    let line_deg = vg.max_edge_degree();
    (vg.num_nodes(), vg.num_edges(), vg.max_degree(), line_deg)
}

/// Runs the experiment and returns the report.
pub fn run(_rt: &Runtime) -> String {
    let mut out = String::from(
        "# fig6 — virtual-node splitting (paper Figure 6)\n\n\
         Phase ℓ groups each node's active edges into chunks of ≤ 2^{ℓ−2};\n\
         the virtual line-graph degree is then ≤ 2^{ℓ−1}−2 < |J_e|, so the\n\
         subspace assignment is a (deg+1)-list edge coloring instance.\n\n",
    );
    let mut t = Table::new([
        "graph",
        "ℓ",
        "cap 2^{ℓ−2}",
        "virt nodes",
        "virt edges",
        "virt Δ",
        "virt Δ̄ (bound 2^{ℓ−1}−2)",
    ]);
    let graphs: Vec<(&str, Graph)> = vec![
        ("star(40)", generators::star(40)),
        ("complete(20)", generators::complete(20)),
        ("regular(60,16)", generators::random_regular(60, 16, 5)),
        ("powerlaw(150)", generators::power_law(150, 2.3, 40.0, 6)),
    ];
    let mut all_ok = true;
    for (name, g) in &graphs {
        for level in [4u32, 5, 6] {
            let (vn, vm, vd, vld) = virtual_stats(g, level);
            let cap = 1usize << (level - 2);
            let bound = (1usize << (level - 1)) - 2;
            if vd > cap || vld > bound {
                all_ok = false;
            }
            t.row([
                name.to_string(),
                level.to_string(),
                cap.to_string(),
                vn.to_string(),
                vm.to_string(),
                vd.to_string(),
                format!("{vld} (≤ {bound})"),
            ]);
        }
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nall virtual degree bounds hold: {}",
        if all_ok { "YES" } else { "NO (violation!)" }
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn virtual_bounds_hold() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("all virtual degree bounds hold: YES"), "{r}");
    }
}
