//! `lem42` — Lemma 4.2's three inequalities, measured per sweep:
//! (a) sub-instances solved per sweep ≤ the `O(β²)` class count;
//! (b) every active edge retains slack > β;
//! (c) the residual maximum edge degree halves.

use crate::table::{fnum, Table};
use crate::workloads::ids_for;
use deco_algos::edge_adapter;
use deco_core::defective::defective_palette;
use deco_core::instance::{self, ListInstance};
use deco_core::slack;
use deco_core::solver::{SolveBranch, SolveError, Solver, SolverConfig};
use deco_graph::coloring::Color;
use deco_graph::{generators, EdgeId};
use deco_runtime::Runtime;
use std::fmt::Write as _;

/// Runs the experiment and returns the report.
pub fn run(rt: &Runtime) -> String {
    let mut out = String::from("# lem42 — slack reduction invariants (Lemma 4.2)\n\n");
    let mut t = Table::new([
        "graph",
        "β",
        "sweep",
        "Δ̄ before",
        "Δ̄ after",
        "bound Δ̄/2",
        "classes used/total",
        "min active slack (> β)",
        "halving",
    ]);
    let solver = Solver::with_runtime(SolverConfig::default(), *rt);
    let mut sweeps_total = 0u64;

    for (gname, g, beta) in [
        (
            "regular(60,10)",
            generators::random_regular(60, 10, 3),
            1u32,
        ),
        ("regular(60,10)", generators::random_regular(60, 10, 3), 2),
        ("gnp(80,0.15)", generators::gnp(80, 0.15, 4), 1),
        ("complete(16)", generators::complete(16), 2),
    ] {
        let x = edge_adapter::linial_edge_coloring(&g, &ids_for(&g), rt).expect("linial");
        let xc: Vec<u32> = g.edges().map(|e| x.coloring.get(e).unwrap()).collect();
        let xp = x.palette as u32;
        let mut inst = instance::two_delta_minus_one(&g);
        let mut cur_x = xc;
        let mut map: Vec<EdgeId> = g.edges().collect();
        let mut final_colors: Vec<Option<Color>> = vec![None; g.num_edges()];
        let mut sweep_no = 0;
        while inst.graph().num_edges() > 0 && inst.max_edge_degree() > 4 {
            sweep_no += 1;
            sweeps_total += 1;
            let dbar = inst.max_edge_degree();
            let inner = |si: &ListInstance, sx: &[u32]| -> Result<SolveBranch, SolveError> {
                solver.solve_instance(si, sx, xp).map(SolveBranch::from)
            };
            let sw = slack::sweep(&inst, &cur_x, xp, beta, rt, &inner).expect("sweep succeeds");
            for (local, &orig) in map.iter().enumerate() {
                if let Some(c) = sw.colors[local] {
                    final_colors[orig.index()] = Some(c);
                }
            }
            let res = slack::residual_after_sweep(&inst, &cur_x, &sw.colors);
            let after = res.instance.max_edge_degree();
            let halves = after <= dbar / 2;
            t.row([
                gname.to_string(),
                beta.to_string(),
                sweep_no.to_string(),
                dbar.to_string(),
                after.to_string(),
                (dbar / 2).to_string(),
                format!("{}/{}", sw.stats.classes_nonempty, defective_palette(beta)),
                fnum(sw.stats.min_active_slack),
                if halves {
                    "OK".into()
                } else {
                    "VIOLATED".to_string()
                },
            ]);
            assert!(halves, "Lemma 4.2 degree halving violated");
            assert!(sw.stats.min_active_slack > f64::from(beta));
            map = res.edge_map.iter().map(|&le| map[le.index()]).collect();
            inst = res.instance;
            cur_x = res.x_coloring;
        }
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\n{sweeps_total} sweeps executed; every sweep satisfied all three\n\
         Lemma 4.2 inequalities. The `classes used/total` column shows the\n\
         O(β²·log Δ̄) bound on sequentially-solved slack-β instances: per\n\
         sweep at most 24β²+6β classes, and the number of sweeps is ≤ log Δ̄\n\
         by the halving column."
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn lemma42_invariants_hold() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(!r.contains("VIOLATED"), "{r}");
        assert!(r.contains("sweeps executed"));
    }
}
