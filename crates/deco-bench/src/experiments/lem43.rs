//! `lem43` — Eq. (2) of Lemma 4.3, measured: the degree/list trade-off of
//! the subspace assignment, `deg′(e)·|L_e| / (|L′_e|·deg(e)) ≤ 24·H_q·log p`.

use crate::table::{fnum, Table};
use crate::workloads::greedy_assign;
use deco_algos::greedy;
use deco_core::instance::{self};
use deco_core::space;
use deco_graph::generators;
use deco_runtime::Runtime;
use std::fmt::Write as _;

/// Runs the experiment and returns the report.
pub fn run(_rt: &Runtime) -> String {
    let mut out = String::from("# lem43 — color space reduction, Eq. (2) (Lemma 4.3)\n\n");
    let mut t = Table::new([
        "graph",
        "C",
        "p",
        "q",
        "slack S",
        "argmax/E1/E2",
        "phases",
        "max Eq.(2) ratio",
        "bound 24·H_q·log p",
        "sub-instances (deg+1)",
    ]);
    let mut worst_fraction: f64 = 0.0;
    for (gname, g, c, p, s, seed) in [
        (
            "regular(48,10)",
            generators::random_regular(48, 10, 1),
            4000u32,
            4u32,
            80.0,
            2u64,
        ),
        (
            "regular(48,10)",
            generators::random_regular(48, 10, 1),
            4000,
            8,
            120.0,
            3,
        ),
        ("complete(14)", generators::complete(14), 6000, 5, 130.0, 4),
        (
            "gnp(60,0.25)",
            generators::gnp(60, 0.25, 5),
            12000,
            6,
            150.0,
            6,
        ),
        (
            "powerlaw(120)",
            generators::power_law(120, 2.4, 30.0, 7),
            12000,
            4,
            90.0,
            8,
        ),
        // q = 16 activates the E⁽¹⁾ phase machinery (levels ≥ 4 need
        // ⌊log q⌋ ≥ 4): slack ≥ 24·H₁₆·log 16 ≈ 325 on a Δ̄ = 32 graph.
        (
            "complete(18)",
            generators::complete(18),
            16384,
            16,
            330.0,
            9,
        ),
    ] {
        let inst = instance::random_with_slack(&g, c, s, seed);
        let x: Vec<u32> = {
            let col = greedy::greedy_edge_coloring(&g, greedy::EdgeOrder::ById);
            g.edges().map(|e| col.get(e).unwrap()).collect()
        };
        let red = space::reduce_color_space(&inst, p, &x, &mut greedy_assign)
            .expect("reduction succeeds");
        let all_feasible = red
            .sub_instances
            .iter()
            .all(|si| si.instance.validate_slack(1.0).is_ok());
        worst_fraction = worst_fraction.max(red.stats.eq2_max_ratio / red.stats.eq2_bound);
        t.row([
            gname.to_string(),
            c.to_string(),
            p.to_string(),
            red.stats.q.to_string(),
            fnum(s),
            format!(
                "{}/{}/{}",
                red.stats.argmax_edges, red.stats.e1_edges, red.stats.e2_edges
            ),
            red.stats.phases_run.to_string(),
            fnum(red.stats.eq2_max_ratio),
            fnum(red.stats.eq2_bound),
            if all_feasible {
                "all OK".into()
            } else {
                "VIOLATED".to_string()
            },
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nworst observed Eq.(2) ratio is {} of the proven bound — the bound\n\
         holds with a large margin on these instances (it is worst-case over\n\
         adversarial structures). Every per-subspace residual remained a\n\
         (deg+1)-list instance, as Lemma 4.3 requires for the recursion.",
        fnum(worst_fraction)
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn eq2_holds_everywhere() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(!r.contains("VIOLATED"), "{r}");
    }
}
