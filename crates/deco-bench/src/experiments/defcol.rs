//! `def-col` — the §4.1 defective edge coloring claims, swept over β and
//! graph families: defect ≤ deg(e)/2β, palette ≤ 24β²+6β, rounds O(log* X).

use crate::table::{fnum, Table};
use crate::workloads::ids_for;
use deco_algos::edge_adapter;
use deco_core::defective::{defective_edge_coloring, defective_palette};
use deco_graph::{coloring, generators, Graph};
use deco_runtime::Runtime;
use std::fmt::Write as _;

/// Runs the experiment and returns the report.
pub fn run(rt: &Runtime) -> String {
    let mut out = String::from("# def-col — defective edge coloring (§4.1)\n\n");
    let mut t = Table::new([
        "graph",
        "Δ̄",
        "β",
        "colors used / palette 24β²+6β",
        "max defect ratio (≤ 1)",
        "rounds",
        "proper?",
    ]);
    let graphs: Vec<(&str, Graph)> = vec![
        ("regular(80,12)", generators::random_regular(80, 12, 1)),
        ("complete(20)", generators::complete(20)),
        ("gnp(100,0.12)", generators::gnp(100, 0.12, 2)),
        ("powerlaw(200)", generators::power_law(200, 2.5, 40.0, 3)),
        ("torus(10,10)", generators::torus(10, 10)),
    ];
    for (name, g) in &graphs {
        let x = edge_adapter::linial_edge_coloring(g, &ids_for(g), rt).expect("linial");
        let xc: Vec<u32> = g.edges().map(|e| x.coloring.get(e).unwrap()).collect();
        let xp = x.palette as u32;
        for beta in [1u32, 2, 4, 8] {
            let d = defective_edge_coloring(g, beta, &xc, xp, rt);
            let defects = coloring::edge_defects(g, &d.colors);
            // Ratio of observed defect to the paper's bound deg(e)/2β.
            let max_ratio = g
                .edges()
                .filter(|&e| g.edge_degree(e) > 0)
                .map(|e| {
                    defects[e.index()] as f64 / (g.edge_degree(e) as f64 / (2.0 * f64::from(beta)))
                })
                .fold(0.0f64, f64::max);
            assert!(max_ratio <= 1.0 + 1e-9, "defect bound violated");
            let used = deco_graph::coloring::distinct_colors(&d.colors);
            let proper = defects.iter().all(|&x| x == 0);
            t.row([
                name.to_string(),
                g.max_edge_degree().to_string(),
                beta.to_string(),
                format!("{used} / {}", defective_palette(beta)),
                fnum(max_ratio),
                d.cost.actual_rounds().to_string(),
                if proper {
                    "yes (defect 0)".into()
                } else {
                    "defective".to_string()
                },
            ]);
        }
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\ndefect never exceeds deg(e)/2β (column ≤ 1); in fact the sharp bound\n\
         ⌈deg(u)/4β⌉+⌈deg(v)/4β⌉−2 holds (tested). Rounds are the 1-round\n\
         value exchange plus the O(log* X) path/cycle 3-coloring, independent\n\
         of Δ̄ — the property Lemma 4.2 needs."
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn defective_claims_hold() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("defect never exceeds"));
    }
}
