//! Experiment implementations — one module per artifact of the paper
//! (figure or quantitative claim). Each exposes
//! `run(rt: &Runtime) -> String`, returning the report the `experiments`
//! binary prints; EXPERIMENTS.md embeds those reports.
//!
//! The [`Runtime`] is the *ambient* engine — the one the harness was
//! launched with (`Runtime::from_env()` in the binary) — and single-engine
//! experiments run on it, attributing their tables to
//! [`Runtime::descriptor`]. Experiments whose *subject* is an executor
//! comparison (the `engine-*` and `solver-par` sweeps) construct their own
//! fixed lineups on top, so their results stay comparable across CI legs.

pub mod churn;
pub mod defcol;
pub mod engine_async;
pub mod engine_matrix;
pub mod engine_shard;
pub mod fig_partition;
pub mod fig_slack_walkthrough;
pub mod fig_virtual;
pub mod graph_scale;
pub mod lem42;
pub mod lem43;
pub mod lem44;
pub mod lem45;
pub mod linial_exp;
pub mod related_work;
pub mod serve_load;
pub mod solver_par;
pub mod thm41_budget;
pub mod thm41_measured;
pub mod trace_profile;

use deco_runtime::Runtime;

/// An experiment runner: produces the report text on the ambient runtime.
pub type Runner = fn(&Runtime) -> String;

/// All experiment ids in canonical order, with their runners.
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("fig1-4", fig_slack_walkthrough::run as Runner),
        ("fig5", fig_partition::run),
        ("fig6", fig_virtual::run),
        ("thm41-budget", thm41_budget::run),
        ("thm41-measured", thm41_measured::run),
        ("lem42", lem42::run),
        ("lem43", lem43::run),
        ("lem44", lem44::run),
        ("lem45", lem45::run),
        ("def-col", defcol::run),
        ("linial", linial_exp::run),
        ("related-work", related_work::run),
        ("engine-matrix", engine_matrix::run),
        ("engine-async", engine_async::run),
        ("engine-shard", engine_shard::run),
        ("graph-scale", graph_scale::run),
        ("churn", churn::run),
        ("serve-load", serve_load::run),
        ("solver-par", solver_par::run),
        ("trace-profile", trace_profile::run),
    ]
}

/// Looks up an experiment by id.
pub fn by_id(id: &str) -> Option<Runner> {
    all()
        .into_iter()
        .find(|(name, _)| *name == id)
        .map(|(_, f)| f)
}
