//! `engine-async` — the barrier-free engine across the scenario matrix:
//! three-way differential correctness (serial ≡ barrier engine ≡ async
//! engine, observationally), asynchrony measurements (rounds in flight,
//! barrier wait eliminated) on the disconnected and skewed-component
//! families, and a wall-clock barrier-vs-async comparison.

use crate::table::Table;
use crate::workloads;
use deco_engine::protocols::{FloodMax, StaggeredSum};
use deco_engine::{
    AsyncExecutor, Executor, GraphSpec, ParallelExecutor, ScenarioMatrix, SerialExecutor,
};
use deco_local::network::Network;
use deco_runtime::Runtime;
use deco_trace::Counter;
use std::fmt::Write as _;
use std::time::Instant;

/// Runs the experiment and returns the report.
pub fn run(_rt: &Runtime) -> String {
    let mut out =
        String::from("# engine-async — barrier-free rounds with component-local clocks\n\n");

    // Part 1: three-way differential sweep over the full standard matrix.
    let matrix = ScenarioMatrix::standard(2026);
    let mut checked = 0usize;
    for s in matrix.iter() {
        let g = s.graph();
        let net = s.network(&g);
        let serial = SerialExecutor
            .execute(&net, &StaggeredSum { spread: 7 }, 50)
            .unwrap();
        let barrier = ParallelExecutor::with_threads(2)
            .execute(&net, &StaggeredSum { spread: 7 }, 50)
            .unwrap();
        let asynch = AsyncExecutor::with_threads(2)
            .execute(&net, &StaggeredSum { spread: 7 }, 50)
            .unwrap();
        for (engine, outcome) in [("barrier", &barrier), ("async", &asynch)] {
            assert_eq!(serial.outputs, outcome.outputs, "{} {engine}", s.name);
            assert_eq!(serial.rounds, outcome.rounds, "{} {engine}", s.name);
            assert_eq!(serial.messages, outcome.messages, "{} {engine}", s.name);
        }
        checked += 1;
    }
    let _ = writeln!(
        out,
        "## three-way differential sweep\n\n{checked} scenarios (families × sizes × ID \
         flavors): the async engine's outputs, round\ncounts, and message counts are identical \
         to both the serial runner and the\nbarrier engine on every scenario — dropping the \
         global barrier is observationally\ninvisible.\n",
    );

    // Part 2: asynchrony measurements on the component-skewed families,
    // read back from the engine's trace emissions (one run scope per
    // execution) instead of bespoke stat plumbing. mean/max in-flight are
    // schedule-dependent measurements (they vary run to run);
    // barrier-wait-eliminated and rounds are deterministic.
    out.push_str("## rounds in flight (component-skewed families)\n\n");
    let mut t = Table::new([
        "workload",
        "protocol",
        "rounds",
        "mean in-flight",
        "max in-flight",
        "barrier-wait eliminated",
    ]);
    let skewed = workloads::skewed_components(4000, 17);
    let mut skewed_means = Vec::new();
    let _measure = deco_trace::measure();
    for (name, g) in [
        (
            "two-clusters(n=24,d=4)".to_string(),
            GraphSpec::TwoClusters { n: 24, d: 4 }.build(9),
        ),
        (
            "many-components(k=40,s=9)".to_string(),
            GraphSpec::ManySmallComponents {
                components: 40,
                max_size: 9,
            }
            .build(9),
        ),
        (skewed.name.clone(), skewed.graph.clone()),
    ] {
        let net = Network::new(&g, deco_local::IdAssignment::Shuffled(23));
        for (proto_name, spread) in [("staggered(7)", 7u64), ("staggered(23)", 23)] {
            let serial = SerialExecutor
                .execute(&net, &StaggeredSum { spread }, 100)
                .unwrap();
            let scope = deco_trace::run_scope();
            let outcome = AsyncExecutor::with_threads(2)
                .execute(&net, &StaggeredSum { spread }, 100)
                .unwrap();
            let metrics = scope.finish().expect("measure() installed a sink");
            assert_eq!(serial.outputs, outcome.outputs, "{name}");
            assert_eq!(serial.rounds, outcome.rounds, "{name}");
            assert_eq!(
                metrics.counter(Counter::Messages),
                Some(outcome.messages),
                "{name}: traced message count must match the outcome"
            );
            let in_flight = metrics.sample(Counter::RoundsInFlight);
            let mean = in_flight.map_or(1.0, |s| s.mean());
            skewed_means.push(mean);
            t.row([
                name.clone(),
                proto_name.to_string(),
                outcome.rounds.to_string(),
                format!("{mean:.2}"),
                in_flight.map_or(0, |s| s.max).to_string(),
                metrics
                    .counter(Counter::BarrierWaitEliminated)
                    .unwrap_or(0)
                    .to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    let overall = skewed_means.iter().sum::<f64>() / skewed_means.len() as f64;
    assert!(
        overall > 1.0,
        "skewed-component families must overlap rounds, got mean {overall:.3}"
    );
    let _ = writeln!(
        out,
        "\nMean rounds-in-flight across the skewed families: {overall:.2} (> 1 means rounds\n\
         genuinely overlapped; a barrier engine is pinned to exactly 1). Early-halting\n\
         components stop consuming scheduler quanta immediately — the barrier-wait\n\
         column counts the idle node-rounds a global barrier would have burned.\n",
    );

    // Part 3: wall-clock, barrier vs async, on the skewed workload.
    out.push_str("## wall-clock (skewed components, flood r=6)\n\n");
    let mut t = Table::new(["executor", "time", "speedup vs serial"]);
    let net = Network::new(&skewed.graph, deco_local::IdAssignment::Shuffled(31));
    let protocol = FloodMax { radius: 6 };
    let (ts, so) = time(|| SerialExecutor.execute(&net, &protocol, 50).unwrap());
    let (tb, sb) = time(|| {
        ParallelExecutor::auto()
            .execute(&net, &protocol, 50)
            .unwrap()
    });
    let (ta, sa) = time(|| AsyncExecutor::auto().execute(&net, &protocol, 50).unwrap());
    assert_eq!(so.outputs, sb.outputs);
    assert_eq!(so.outputs, sa.outputs);
    for (name, d) in [("serial", ts), ("engine-barrier", tb), ("engine-async", ta)] {
        t.row([
            name.to_string(),
            format!("{d:.1?}"),
            format!("{:.2}x", ts.as_secs_f64() / d.as_secs_f64()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nThe async engine trades the barrier's cache-friendly phase sweeps for\n\
         per-node scheduling: on few-core hosts the win is skipping idle rounds of\n\
         early-halted components, not raw throughput — see benches/engine.rs for\n\
         the tracked numbers.\n",
    );
    out
}

fn time<T>(f: impl FnOnce() -> T) -> (std::time::Duration, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed(), value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_shows_overlapping_rounds() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("three-way differential sweep"));
        assert!(r.contains("rounds in flight"));
        assert!(r.contains("barrier-wait"));
    }
}
