//! `engine-shard` — the sharded engine across the scenario families:
//! partition quality (cut-edge fraction per family and shard count),
//! exchange volume (bytes crossing shard boundaries per round, measured on
//! the framed coordinator), and the four-way differential guarantee
//! (serial ≡ barrier ≡ async ≡ sharded, observationally) re-checked inline
//! so the numbers can never drift apart from a correctness bug silently.

use crate::table::Table;
use deco_engine::protocols::StaggeredSum;
use deco_engine::shard::framed::{run_framed, ChannelTransport, ProtocolSpec};
use deco_engine::shard::net::TcpTransport;
#[cfg(unix)]
use deco_engine::shard::net::UdsTransport;
use deco_engine::{
    AsyncExecutor, Executor, GraphSpec, IdFlavor, ParallelExecutor, Scenario, SerialExecutor,
    ShardPlan, ShardedExecutor,
};
use deco_runtime::Runtime;
use deco_trace::Counter;
use std::fmt::Write as _;
use std::time::Instant;

/// The scenario families the report sweeps (one spec per family, matrix
/// sizes, pinned base seed).
fn families() -> Vec<GraphSpec> {
    vec![
        GraphSpec::Cycle { n: 48 },
        GraphSpec::Grid { w: 8, h: 5 },
        GraphSpec::RandomRegular { n: 64, d: 8 },
        GraphSpec::Gnp { n: 80, p: 0.08 },
        GraphSpec::PowerLaw { n: 100 },
        GraphSpec::RandomTree { n: 90 },
        GraphSpec::TwoClusters { n: 24, d: 4 },
        GraphSpec::ManySmallComponents {
            components: 18,
            max_size: 7,
        },
    ]
}

/// Runs the experiment and returns the report.
pub fn run(_rt: &Runtime) -> String {
    let mut out =
        String::from("# engine-shard — sharded execution with cross-shard mailbox exchange\n\n");

    // Part 1: partition quality and exchange volume per family. The
    // exchange-volume column is read back from the framed coordinator's
    // trace emissions (shard-exchange-bytes counter); the run is
    // serial-oracled inline.
    out.push_str("## cut fraction and exchange volume (staggered-sum, channel transport)\n\n");
    let mut t = Table::new([
        "family",
        "shards",
        "nodes",
        "edges",
        "cut edges",
        "cut %",
        "rounds",
        "exch B/round",
        "total B",
    ]);
    let mut worst_cut = 0.0f64;
    let measure = deco_trace::measure();
    for spec in families() {
        let scenario = Scenario::new(spec, IdFlavor::Shuffled, 2026);
        let g = scenario.graph();
        let net = scenario.network(&g);
        let ids = net.ids().to_vec();
        let serial = SerialExecutor
            .execute(&net, &StaggeredSum { spread: 7 }, 100)
            .unwrap();
        for shards in [2usize, 4] {
            let scope = deco_trace::run_scope();
            let run = run_framed(
                &ChannelTransport,
                &g,
                &ids,
                ProtocolSpec::StaggeredSum { spread: 7 },
                shards,
                1,
                100,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
            let metrics = scope.finish().expect("measure() installed a sink");
            assert_eq!(serial.outputs, run.outcome.outputs, "{}", scenario.name);
            assert_eq!(serial.rounds, run.outcome.rounds, "{}", scenario.name);
            assert_eq!(serial.messages, run.outcome.messages, "{}", scenario.name);
            let exchange_bytes = metrics
                .counter(Counter::ShardExchangeBytes)
                .expect("framed coordinator emits shard-exchange-bytes");
            assert_eq!(
                exchange_bytes, run.exchange_bytes,
                "{}: traced exchange bytes must match the coordinator's count",
                scenario.name
            );
            let per_round = if run.outcome.rounds == 0 {
                0.0
            } else {
                exchange_bytes as f64 / run.outcome.rounds as f64
            };
            worst_cut = worst_cut.max(run.cut_fraction);
            t.row([
                scenario.spec.label(),
                format!("{}", run.shards),
                g.num_nodes().to_string(),
                g.num_edges().to_string(),
                run.cut_edges.to_string(),
                format!("{:.1}%", run.cut_fraction * 100.0),
                run.outcome.rounds.to_string(),
                format!("{per_round:.0}"),
                run.total_bytes.to_string(),
            ]);
        }
    }
    drop(measure);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nEvery row is serial-oracled: outputs, rounds, and messages of the sharded\n\
         run are bit-identical to the serial runner. Only cut edges ever cross a\n\
         shard boundary — the exchange volume column is the whole inter-shard\n\
         traffic, everything else is shard-private. Worst cut fraction above:\n\
         {:.1}% (degree-balanced contiguous ranges; structured families cut in\n\
         O(shards) edges, dense random families approach the (k-1)/k ceiling).\n",
        worst_cut * 100.0
    );

    // Part 1b: the same framed workload over the socket transports
    // (in-process worker threads over real sockets — the spawn modes need
    // the `deco-shardd` binary, which the integration suites cover). The
    // frames are transport-invariant, so byte accounting must agree with
    // the channel runs exactly; wall-clock shows what the kernel socket
    // path costs over an in-process channel.
    out.push_str("## socket transports (regular(64,8), staggered-sum, shards=4)\n\n");
    {
        let scenario = Scenario::new(
            GraphSpec::RandomRegular { n: 64, d: 8 },
            IdFlavor::Shuffled,
            2026,
        );
        let g = scenario.graph();
        let net = scenario.network(&g);
        let ids = net.ids().to_vec();
        let spec = ProtocolSpec::StaggeredSum { spread: 7 };
        let mut t = Table::new(["transport", "time", "exch B", "total B"]);
        let mut baseline: Option<deco_engine::shard::framed::FramedRun> = None;
        let mut leg = |label: &str, run: &dyn Fn() -> deco_engine::shard::framed::FramedRun| {
            let (d, run) = time(run);
            if let Some(base) = &baseline {
                assert_eq!(base.outcome.outputs, run.outcome.outputs, "{label}");
                assert_eq!(base.exchange_bytes, run.exchange_bytes, "{label}");
                assert_eq!(base.total_bytes, run.total_bytes, "{label}");
            }
            t.row([
                label.to_string(),
                format!("{d:.1?}"),
                run.exchange_bytes.to_string(),
                run.total_bytes.to_string(),
            ]);
            baseline.get_or_insert(run);
        };
        leg("channel", &|| {
            run_framed(&ChannelTransport, &g, &ids, spec, 4, 1, 100).unwrap()
        });
        leg("tcp", &|| {
            run_framed(&TcpTransport::in_process(), &g, &ids, spec, 4, 1, 100).unwrap()
        });
        #[cfg(unix)]
        leg("uds", &|| {
            run_framed(&UdsTransport::in_process(), &g, &ids, spec, 4, 1, 100).unwrap()
        });
        out.push_str(&t.render());
        out.push_str(
            "\nSame frames on every pipe: the byte columns are asserted equal across\n\
             transports before the table renders. `DECO_SHARD_TRANSPORT=tcp|uds`\n\
             selects these pipes through the runtime facade; `DECO_SHARD_TIMEOUT_MS`\n\
             bounds every per-frame wait (see the shard-faults suite).\n\n",
        );
    }

    // Part 2: the four-way differential on one representative family,
    // including the in-process typed executor at threads-per-shard > 1.
    out.push_str("## four-way lineup (regular(64,8), staggered-sum)\n\n");
    let scenario = Scenario::new(
        GraphSpec::RandomRegular { n: 64, d: 8 },
        IdFlavor::Shuffled,
        7,
    );
    let g = scenario.graph();
    let net = scenario.network(&g);
    let protocol = StaggeredSum { spread: 9 };
    let serial = SerialExecutor.execute(&net, &protocol, 100).unwrap();
    let mut checked = 0usize;
    for (name, outcome) in [
        (
            "barrier/t=2",
            ParallelExecutor::with_threads(2)
                .execute(&net, &protocol, 100)
                .unwrap(),
        ),
        (
            "async/t=2",
            AsyncExecutor::with_threads(2)
                .execute(&net, &protocol, 100)
                .unwrap(),
        ),
        (
            "shard/s=2/t=2",
            ShardedExecutor::new(2)
                .with_threads_per_shard(2)
                .execute(&net, &protocol, 100)
                .unwrap(),
        ),
        (
            "shard/s=4/t=1",
            ShardedExecutor::new(4)
                .execute(&net, &protocol, 100)
                .unwrap(),
        ),
    ] {
        assert_eq!(serial.outputs, outcome.outputs, "{name}");
        assert_eq!(serial.rounds, outcome.rounds, "{name}");
        assert_eq!(serial.messages, outcome.messages, "{name}");
        checked += 1;
    }
    let _ = writeln!(
        out,
        "{checked} engines checked against the serial oracle — the sharded engine is a\n\
         drop-in `Executor`, so the whole algorithm stack (Linial, Luby, the\n\
         Theorem 4.1 solver) runs sharded unchanged.\n",
    );

    // Part 3: wall-clock, serial vs barrier vs sharded, on a larger graph.
    // On a 1-CPU container the sharded engine pays thread context switches
    // plus the exchange; the point of this table is honest accounting, not
    // a speedup claim — multi-core (and multi-host) is where shards win.
    out.push_str("## wall-clock (regular(4000,16), flood r=4)\n\n");
    let big = GraphSpec::RandomRegular { n: 4000, d: 16 }.build(3);
    let plan2 = ShardPlan::new(&big, 2);
    let net = deco_local::Network::new(&big, deco_local::IdAssignment::Shuffled(5));
    let protocol = deco_engine::protocols::FloodMax { radius: 4 };
    let (ts, so) = time(|| SerialExecutor.execute(&net, &protocol, 50).unwrap());
    let (tb, sb) = time(|| {
        ParallelExecutor::auto()
            .execute(&net, &protocol, 50)
            .unwrap()
    });
    let (t2, s2) = time(|| {
        ShardedExecutor::new(2)
            .execute(&net, &protocol, 50)
            .unwrap()
    });
    let (t4, s4) = time(|| {
        ShardedExecutor::new(4)
            .execute(&net, &protocol, 50)
            .unwrap()
    });
    assert_eq!(so.outputs, sb.outputs);
    assert_eq!(so.outputs, s2.outputs);
    assert_eq!(so.outputs, s4.outputs);
    let mut t = Table::new(["executor", "time", "vs serial"]);
    for (name, d) in [
        ("serial", ts),
        ("engine-barrier", tb),
        ("sharded s=2", t2),
        ("sharded s=4", t4),
    ] {
        t.row([
            name.to_string(),
            format!("{d:.1?}"),
            format!("{:.2}x", ts.as_secs_f64() / d.as_secs_f64()),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nCut fraction at 2 shards on this graph: {:.2}% ({} of {} edges). The\n\
         in-process sharded engine exists to prove the partition + ghost-port +\n\
         cut-exchange machinery under the full differential contract; the framed\n\
         subprocess transport (`deco-shardd`) carries the same machinery across\n\
         process boundaries — see `cargo test -p deco-engine --test sharded`.\n",
        plan2.cut_fraction() * 100.0,
        plan2.num_cut_edges(),
        big.num_edges(),
    );
    out
}

fn time<T>(f: impl FnOnce() -> T) -> (std::time::Duration, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed(), value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_covers_cut_and_exchange() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("cut fraction and exchange volume"));
        assert!(r.contains("four-way lineup"));
        assert!(r.contains("exch B/round"));
        assert!(r.contains("socket transports"));
        assert!(r.contains("| tcp"));
    }
}
