//! `graph-scale` — the million-edge substrate end to end: bulk CSR build
//! vs per-edge insertion, binary snapshot load vs text parse, the
//! engine lineup's wall clock on a Kronecker graph, mailbox bytes per
//! edge per round for every engine (dense arenas vs the old
//! `Option`-slot layout), the solver pipeline at scale, and the
//! process's peak RSS.
//!
//! Size is controlled by `DECO_SCALE_EDGES` (target distinct edge count,
//! default 100 000; CI's scale-smoke leg pins it, the acceptance run
//! raises it to 10^6). When `DECO_BENCH_JSON` is set, the headline
//! numbers are appended to the same line-JSON file the criterion shim
//! writes, so `bench-trend` tracks build/load times *and* bytes per edge
//! per round across runs.

use crate::records::append_trend_records;
use crate::table::Table;
use deco_engine::mailbox::{DoubleBuffer, MailboxPlan, RingBuffer};
use deco_engine::protocols::FloodMax;
use deco_engine::{
    Executor, GraphSpec, IdFlavor, ParallelExecutor, Scenario, SerialExecutor, ShardPlan,
    ShardedExecutor,
};
use deco_graph::{generators, io, Builder, GraphBuilder, NodeId};
use deco_local::PortArena;
use deco_runtime::Runtime;
use std::fmt::Write as _;
use std::time::Instant;

/// Default distinct-edge target when `DECO_SCALE_EDGES` is unset.
const DEFAULT_EDGES: usize = 100_000;

/// Per-node distinct-edge target handed to the Kronecker generator.
const EDGE_FACTOR: usize = 8;

/// The message payload of the protocol the lineup runs.
type Msg = u64;

/// Reads the `DECO_SCALE_EDGES` knob.
///
/// # Panics
///
/// Panics on a malformed value — a mistyped size must not silently run the
/// default-sized experiment.
fn target_edges() -> usize {
    match std::env::var("DECO_SCALE_EDGES") {
        Ok(v) if !v.is_empty() => v
            .parse()
            .unwrap_or_else(|_| panic!("DECO_SCALE_EDGES must be an edge count, got {v:?}")),
        _ => DEFAULT_EDGES,
    }
}

/// Runs the experiment and returns the report.
pub fn run(rt: &Runtime) -> String {
    let target = target_edges();
    // `edge_factor << scale` distinct edges; pick the scale whose target is
    // closest to the request from below-or-equal of the doubling ladder.
    let scale = (target / EDGE_FACTOR).max(2).ilog2();
    let mut out = String::from("# graph-scale — million-edge substrate\n\n");

    // Part 1: generate, then rebuild the same edge set through both
    // construction paths.
    let (t_gen, g) = time(|| generators::kronecker(scale, EDGE_FACTOR, 42));
    let pairs: Vec<(usize, usize)> = g
        .edge_list()
        .iter()
        .map(|[u, v]| (u.index(), v.index()))
        .collect();
    let n = g.num_nodes();
    let m = g.num_edges();
    let _ = writeln!(
        out,
        "kronecker(scale={scale}, edge_factor={EDGE_FACTOR}, seed=42): \
         n={n}, m={m} (target ~{} via DECO_SCALE_EDGES), max degree {}, \
         generated in {t_gen:.1?}.\n",
        target,
        g.max_degree(),
    );

    out.push_str("## build: per-edge insertion vs bulk CSR assembly\n\n");
    let (t_push, g_push) = time(|| {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &pairs {
            b.add_edge(NodeId::from(u), NodeId::from(v));
        }
        b.build().expect("valid edge set")
    });
    let (t_bulk, g_bulk) = time(|| {
        let mut b = Builder::with_capacity(n, pairs.len());
        for &(u, v) in &pairs {
            b.add_edge(u, v).expect("edges are simple");
        }
        b.build().expect("valid edge set")
    });
    assert_eq!(
        g_push.edge_list(),
        g_bulk.edge_list(),
        "same CSR either way"
    );
    let mut t = Table::new(["path", "time", "edges/s"]);
    t.row([
        "per-edge GraphBuilder".into(),
        format!("{t_push:.1?}"),
        rate(m, t_push),
    ]);
    t.row([
        "bulk Builder".into(),
        format!("{t_bulk:.1?}"),
        rate(m, t_bulk),
    ]);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nBoth paths produce identical CSR (asserted); the bulk builder runs \
         degree-count → prefix-sum → scatter in O(n+m), {:.2}x the per-edge path here.\n",
        t_push.as_secs_f64() / t_bulk.as_secs_f64(),
    );

    // Part 2: text round-trip vs binary snapshot round-trip.
    out.push_str("## load: edge-list text vs binary snapshot\n\n");
    let (t_txt_w, text) = time(|| io::to_edge_list(&g));
    let (t_txt_r, g_txt) = time(|| io::read_edge_list(text.as_bytes()).expect("own text parses"));
    let mut snap = Vec::new();
    let (t_snap_w, ()) = time(|| io::write_snapshot(&g, &mut snap).expect("vec write"));
    let (t_snap_r, g_snap) = time(|| io::read_snapshot(&snap[..]).expect("own snapshot loads"));
    assert_eq!(g_txt.edge_list(), g.edge_list());
    assert_eq!(g_snap.edge_list(), g.edge_list());
    let mut t = Table::new(["format", "bytes", "write", "read", "read edges/s"]);
    t.row([
        "edge-list text".into(),
        text.len().to_string(),
        format!("{t_txt_w:.1?}"),
        format!("{t_txt_r:.1?}"),
        rate(m, t_txt_r),
    ]);
    t.row([
        "snapshot v1".into(),
        snap.len().to_string(),
        format!("{t_snap_w:.1?}"),
        format!("{t_snap_r:.1?}"),
        rate(m, t_snap_r),
    ]);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nSnapshot load is {:.2}x text parse (no re-tokenizing, no re-sorting: \
         arrays are read and structurally validated in O(n+m)).\n",
        t_txt_r.as_secs_f64() / t_snap_r.as_secs_f64(),
    );

    // Part 3: the engine lineup on the Kronecker graph, with the mailbox
    // arenas' exact heap bytes per edge per round next to the wall clock.
    // The old `Option`-slot layouts are computed from the same geometry for
    // the diet comparison.
    out.push_str("## engine lineup: wall clock and mailbox bytes/edge/round\n\n");
    let scenario = Scenario::new(
        GraphSpec::Kronecker {
            scale,
            edge_factor: EDGE_FACTOR,
        },
        IdFlavor::Shuffled,
        2026,
    );
    let gk = scenario.graph();
    let net = scenario.network(&gk);
    let mk = gk.num_edges().max(1);
    let proto = FloodMax { radius: 2 };
    let (t_serial, serial) = time(|| SerialExecutor.execute(&net, &proto, 50).unwrap());
    let (t_engine, engine) = time(|| ParallelExecutor::auto().execute(&net, &proto, 50).unwrap());
    let (t_shard, shard) = time(|| ShardedExecutor::new(2).execute(&net, &proto, 50).unwrap());
    for (label, run) in [("engine-auto", &engine), ("sharded(2)", &shard)] {
        assert_eq!(serial.outputs, run.outputs, "{label}");
        assert_eq!(serial.rounds, run.rounds, "{label}");
        assert_eq!(serial.messages, run.messages, "{label}");
    }

    let plan = MailboxPlan::new(&gk);
    let slots = plan.num_slots();
    let sz = std::mem::size_of::<Msg>();
    let opt = std::mem::size_of::<Option<Msg>>();
    let serial_bytes = PortArena::<Msg>::new(slots).heap_bytes();
    let engine_bytes = DoubleBuffer::<Msg>::new(slots).heap_bytes();
    let async_bytes = RingBuffer::<Msg>::new(slots).heap_bytes();
    let splan = ShardPlan::new(&gk, 2);
    let cut_slots: usize = (0..splan.shards()).map(|s| splan.cut_ports(s).len()).sum();
    // Per-shard arena slices cover all `slots`; each shard additionally
    // keeps two cut-out parities in the exchange ring.
    let shard_bytes = PortArena::<Msg>::new(slots).heap_bytes()
        + 2 * PortArena::<Msg>::new(cut_slots).heap_bytes();
    let mut t = Table::new([
        "engine",
        "time",
        "rounds",
        "messages",
        "arena B",
        "B/edge/round",
        "old layout B",
        "diet",
    ]);
    let old_serial = slots * opt;
    let old_engine = 2 * slots * opt;
    let old_async = slots * std::mem::size_of::<std::sync::Mutex<[Option<Msg>; 2]>>();
    let old_shard = (slots + 2 * cut_slots) * opt;
    for (label, dur, run, bytes, old) in [
        ("serial", t_serial, &serial, serial_bytes, old_serial),
        ("engine-auto", t_engine, &engine, engine_bytes, old_engine),
        (
            "async (geometry)",
            t_serial,
            &serial,
            async_bytes,
            old_async,
        ),
        ("sharded(2)", t_shard, &shard, shard_bytes, old_shard),
    ] {
        t.row([
            label.to_string(),
            if label.starts_with("async") {
                "-".into()
            } else {
                format!("{dur:.1?}")
            },
            run.rounds.to_string(),
            run.messages.to_string(),
            bytes.to_string(),
            format!("{:.2}", bytes as f64 / mk as f64),
            old.to_string(),
            format!("{:.2}x", old as f64 / bytes as f64),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nArenas are allocated once and reused every round, so B/edge/round is \
         heap bytes over m={mk} edges: payload `size_of::<Msg>()`={sz} per port \
         plus one presence bit, vs `size_of::<Option<Msg>>()`={opt} per slot \
         before the diet. The async row is ring geometry only (its lookahead \
         cells exist per port regardless of wall clock shown elsewhere).\n",
    );

    // Part 4: the solver pipeline at scale on the ambient engine.
    out.push_str("## solver pipeline\n\n");
    let ids: Vec<u64> = net.ids().to_vec();
    let cfg = deco_core::solver::SolverConfig::default();
    let (t_solve, rep) = time(|| {
        deco_core::solver::solve_two_delta_minus_one(&gk, &ids, cfg, rt).expect("solver succeeds")
    });
    let _ = writeln!(
        out,
        "solve_two_delta_minus_one on kronecker(n={}, m={}): {} colors, \
         {} rounds charged, {} messages, {t_solve:.1?} on {}.\n",
        gk.num_nodes(),
        gk.num_edges(),
        rep.colors.distinct_colors(),
        rep.cost.actual_rounds(),
        rep.messages,
        rep.engine_descriptor,
    );

    // Part 5: peak RSS of the whole process so far — the budget CI's
    // scale-smoke leg asserts on.
    out.push_str("## memory\n\n");
    match deco_trace::peak_rss_bytes() {
        Some(rss) => {
            let _ = writeln!(
                out,
                "peak-rss-bytes: {rss} ({:.1} MiB) for the full experiment, \
                 m={m} edges.",
                rss as f64 / (1024.0 * 1024.0),
            );
        }
        None => out.push_str("peak-rss-bytes: unavailable on this platform.\n"),
    }

    // Machine-readable trend records (same file the criterion shim appends
    // to): build/load wall times in nanoseconds, arena footprints in bytes.
    append_trend_records(&[
        ("graph-scale/build-push", t_push.as_nanos() as u64),
        ("graph-scale/build-bulk", t_bulk.as_nanos() as u64),
        ("graph-scale/load-text", t_txt_r.as_nanos() as u64),
        ("graph-scale/load-snapshot", t_snap_r.as_nanos() as u64),
        (
            "graph-scale/bytes-per-edge-round/serial",
            (serial_bytes / mk) as u64,
        ),
        (
            "graph-scale/bytes-per-edge-round/engine",
            (engine_bytes / mk) as u64,
        ),
        (
            "graph-scale/bytes-per-edge-round/async",
            (async_bytes / mk) as u64,
        ),
        (
            "graph-scale/bytes-per-edge-round/sharded",
            (shard_bytes / mk) as u64,
        ),
    ]);

    out
}

fn rate(edges: usize, d: std::time::Duration) -> String {
    if d.as_secs_f64() == 0.0 {
        return "-".into();
    }
    format!("{:.1}M", edges as f64 / d.as_secs_f64() / 1e6)
}

fn time<T>(f: impl FnOnce() -> T) -> (std::time::Duration, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed(), value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_covers_build_load_engines_and_memory() {
        // Shrink the workload so the debug-mode test stays fast.
        std::env::set_var("DECO_SCALE_EDGES", "4000");
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("bulk Builder"));
        assert!(r.contains("snapshot v1"));
        assert!(r.contains("B/edge/round"));
        assert!(r.contains("solver pipeline"));
        assert!(r.contains("peak-rss-bytes"));
    }
}
