//! `solver-par` — the parallel solver recursion across the scenario
//! matrix, in the `engine-matrix` style: differential correctness (the
//! solver's colors, cost tree, and merged stats must be bit-identical to
//! the serial recursion at every thread count) plus wall-clock comparison
//! of the serial executor vs the engine executor driving the per-subspace
//! and per-class branch fan-out.

use crate::table::Table;
use crate::workloads::ids_for;
use deco_core::solver::{solve_two_delta_minus_one, SolverConfig};
use deco_engine::{GraphSpec, IdFlavor, ParallelExecutor, Scenario};
use deco_runtime::Runtime;
use std::fmt::Write as _;
use std::time::Instant;

/// Runs the experiment and returns the report.
pub fn run(rt: &Runtime) -> String {
    let mut out = String::from(
        "# solver-par — parallel solver recursion vs serial recursion\n\n\
         The solver's logically-parallel branches (Lemma 4.3 per-subspace\n\
         residuals, Lemma 4.2 per-class solves in dependency wavefronts) run\n\
         on the executor's worker threads; per-branch SolveStats merge in\n\
         branch order at every join. This experiment demands bit-identical\n\
         observables at 1/2/4 threads on every workload.\n\n",
    );

    // Part 1: differential identity sweep.
    let workloads = [
        GraphSpec::RandomRegular { n: 120, d: 8 },
        GraphSpec::RandomRegular { n: 80, d: 16 },
        GraphSpec::Gnp { n: 100, p: 0.08 },
        GraphSpec::PowerLaw { n: 150 },
        GraphSpec::TwoClusters { n: 40, d: 4 },
        GraphSpec::Cycle { n: 160 },
        GraphSpec::Complete { n: 14 },
    ];
    let num_workloads = workloads.len();
    let cfg = SolverConfig::default();
    let mut checked = 0usize;
    for (i, spec) in workloads.into_iter().enumerate() {
        let scenario = Scenario::new(spec, IdFlavor::Shuffled, 11 + i as u64);
        let g = scenario.graph();
        let ids = ids_for(&g);
        let serial =
            solve_two_delta_minus_one(&g, &ids, cfg, &Runtime::serial()).expect("serial solves");
        let lineup: Vec<Runtime> = [1usize, 2, 4]
            .into_iter()
            .map(|threads| Runtime::from(ParallelExecutor::with_threads(threads)))
            .chain(std::iter::once(*rt))
            .collect();
        for engine_rt in lineup {
            let par =
                solve_two_delta_minus_one(&g, &ids, cfg, &engine_rt).expect("parallel solves");
            assert_eq!(
                serial.colors,
                par.colors,
                "{}: colors diverge on {}",
                scenario.name,
                engine_rt.descriptor()
            );
            assert_eq!(
                serial.cost,
                par.cost,
                "{}: cost tree diverges on {}",
                scenario.name,
                engine_rt.descriptor()
            );
            assert_eq!(
                serial.solve_stats,
                par.solve_stats,
                "{}: merged stats diverge on {}",
                scenario.name,
                engine_rt.descriptor()
            );
            assert_eq!(
                serial.messages,
                par.messages,
                "{}: message totals diverge on {}",
                scenario.name,
                engine_rt.descriptor()
            );
            checked += 1;
        }
    }
    let _ = writeln!(
        out,
        "## differential sweep\n\n{num_workloads} workloads × (3 thread counts + the ambient \
         engine) = {checked} \
         parallel solves:\ncolors, cost trees, and merged SolveStats identical to the serial\n\
         recursion on every one.\n",
    );

    // Part 2: wall-clock, serial recursion vs engine-driven branches. The
    // column headers are the engines' own stable descriptors, so the table
    // stays attributable when the lineup changes.
    out.push_str("## wall-clock (branch fan-out)\n\n");
    let serial_rt = Runtime::serial();
    let engine_rt = Runtime::from(ParallelExecutor::auto());
    let mut t = Table::new([
        "workload".to_string(),
        "sweeps".to_string(),
        "space reductions".to_string(),
        serial_rt.descriptor(),
        engine_rt.descriptor(),
        "speedup".to_string(),
    ]);
    for spec in [
        GraphSpec::RandomRegular { n: 512, d: 16 },
        GraphSpec::Gnp { n: 400, p: 0.05 },
    ] {
        let scenario = Scenario::new(spec, IdFlavor::Sequential, 3);
        let g = scenario.graph();
        let ids = ids_for(&g);
        let (ts, rs) =
            time(|| solve_two_delta_minus_one(&g, &ids, cfg, &serial_rt).expect("solves"));
        let (tp, rp) =
            time(|| solve_two_delta_minus_one(&g, &ids, cfg, &engine_rt).expect("solves"));
        assert_eq!(rs.colors, rp.colors);
        t.row([
            scenario.spec.label(),
            rs.solve_stats.sweeps.to_string(),
            rs.solve_stats.space_reductions.to_string(),
            format!("{ts:.1?}"),
            format!("{tp:.1?}"),
            format!("{:.2}x", ts.as_secs_f64() / tp.as_secs_f64()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nSingle-core hosts show ~1x (the branch fan-out degrades to the\n\
         serial order); thread scaling needs a multi-core host. Determinism\n\
         is what this experiment pins — the speedup column is informative\n\
         only where hardware parallelism exists.\n",
    );

    // Part 3: where the pipeline's wall time goes, from the trace layer's
    // per-phase spans (one run scope per solve; RunReport.metrics carries
    // the digest, deco-trace::summary renders it).
    out.push_str("\n## per-phase breakdown (regular(120,8), engine-driven branches)\n\n");
    {
        let _measure = deco_trace::measure();
        let scenario = Scenario::new(
            GraphSpec::RandomRegular { n: 120, d: 8 },
            IdFlavor::Shuffled,
            11,
        );
        let g = scenario.graph();
        let ids = ids_for(&g);
        let report = solve_two_delta_minus_one(&g, &ids, cfg, &engine_rt).expect("solves");
        let metrics = report.metrics.expect("tracing on: metrics populated");
        out.push_str(&deco_trace::summary::phase_table(&metrics));
        out.push('\n');
        out.push_str(&deco_trace::summary::counter_table(&metrics));
        let _ = writeln!(
            out,
            "\nPhases nest (`pipeline` ⊇ `sweep` ⊇ `solver-branch` ⊇ engine rounds), so\n\
             totals overlap by design; compare within a level. The messages counter\n\
             aggregates every protocol execution of the pipeline and matches\n\
             RunReport.messages ({}).",
            report.messages
        );
    }
    out
}

fn time<T>(f: impl FnOnce() -> T) -> (std::time::Duration, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed(), value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_confirms_identity() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("identical to the serial"));
        assert!(r.contains("speedup"));
    }
}
