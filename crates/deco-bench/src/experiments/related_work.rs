//! `related-work` — the paper's §1 comparison as one merged table:
//! measured rounds for every *implemented* algorithm plus the solver
//! ablations (paper parameters vs Kuhn'20-shaped vs constant-p).

use crate::table::Table;
use crate::workloads::ids_for;
use deco_algos::{class_elimination, edge_adapter, greedy, luby};
use deco_core::solver::{solve_two_delta_minus_one, SolverConfig, Strategy};
use deco_graph::{generators, Graph, LineGraph};
use deco_local::{IdAssignment, Network};
use deco_runtime::Runtime;
use std::fmt::Write as _;

fn full_palette_lists(bound: u32, count: usize) -> Vec<Vec<u32>> {
    (0..count).map(|_| (0..bound).collect()).collect()
}

/// Runs the experiment and returns the report.
pub fn run(rt: &Runtime) -> String {
    let mut out = String::from(
        "# related-work — measured comparison of implemented algorithms\n\n\
         All algorithms solve (2Δ−1)-edge coloring; rounds are adaptive\n\
         LOCAL rounds as charged by each algorithm's accounting.\n\n",
    );
    let graphs: Vec<(&str, Graph)> = vec![
        ("regular(256,8)", generators::random_regular(256, 8, 1)),
        ("regular(128,16)", generators::random_regular(128, 16, 2)),
        ("gnp(300,0.04)", generators::gnp(300, 0.04, 3)),
    ];
    let mut t = Table::new([
        "graph",
        "Δ̄",
        "algorithm",
        "adaptive rounds",
        "classes used/scheduled",
        "colors",
        "deterministic?",
    ]);
    for (name, g) in &graphs {
        let bound = (2 * g.max_degree() - 1) as u32;
        let dbar = g.max_edge_degree();
        // Ours, four parameter configurations. The unclamped rows let each
        // strategy's β formula act (clamped only by β ≤ Δ̄+1, beyond which
        // defects are already zero), so the ablation differentiates.
        for (label, cfg) in [
            ("ours (practical clamps)", SolverConfig::default()),
            ("ours (paper β = log⁴cΔ̄)", SolverConfig::faithful(1.0)),
            (
                "ours (Kuhn'20-shaped β = 2^√logΔ̄)",
                SolverConfig {
                    strategy: Strategy::Kuhn20,
                    beta_cap: None,
                    p_cap: None,
                    ..SolverConfig::default()
                },
            ),
            (
                "ours (constant p=3, β=req)",
                SolverConfig {
                    strategy: Strategy::ConstantP(3),
                    beta_cap: None,
                    p_cap: None,
                    ..SolverConfig::default()
                },
            ),
        ] {
            let res = solve_two_delta_minus_one(g, &ids_for(g), cfg, rt).expect("solver succeeds");
            t.row([
                name.to_string(),
                dbar.to_string(),
                label.to_string(),
                (res.x_rounds + res.cost.actual_rounds()).to_string(),
                format!(
                    "{}/{}",
                    res.solve_stats.classes_nonempty, res.solve_stats.classes_total
                ),
                res.colors.distinct_colors().to_string(),
                "yes".to_string(),
            ]);
        }
        // Linial + class elimination: O(Δ̄² + log* n).
        {
            let x = edge_adapter::linial_edge_coloring(g, &ids_for(g), rt).expect("linial");
            let lg = LineGraph::of(g);
            let initial: Vec<u32> = g.edges().map(|e| x.coloring.get(e).unwrap()).collect();
            let lists = full_palette_lists(bound, g.num_edges());
            let (colors, rounds) = class_elimination::list_color_by_classes(
                lg.graph(),
                &lists,
                &initial,
                x.palette as u32,
            );
            let distinct = deco_graph::coloring::distinct_colors(&colors);
            t.row([
                name.to_string(),
                dbar.to_string(),
                "Lin87 + class elimination".to_string(),
                (x.rounds + rounds).to_string(),
                "-".to_string(),
                distinct.to_string(),
                "yes".to_string(),
            ]);
        }
        // Luby-style randomized.
        {
            let lg = LineGraph::of(g);
            let net = Network::new(lg.graph(), IdAssignment::Shuffled(9));
            let res =
                luby::luby_list_coloring(&net, full_palette_lists(bound, g.num_edges()), 1234, rt)
                    .expect("luby terminates");
            t.row([
                name.to_string(),
                dbar.to_string(),
                "Luby/[ABI86] randomized".to_string(),
                res.rounds.to_string(),
                "-".to_string(),
                deco_graph::coloring::distinct_colors(&res.colors).to_string(),
                "no (w.h.p.)".to_string(),
            ]);
        }
        // Greedy (sequential oracle, no round model).
        {
            let c = greedy::greedy_edge_coloring(g, greedy::EdgeOrder::ById);
            t.row([
                name.to_string(),
                dbar.to_string(),
                "greedy (centralized)".to_string(),
                "-".to_string(),
                "-".to_string(),
                c.distinct_colors().to_string(),
                "yes (sequential)".to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nAt laptop-scale Δ̄ the adaptive rounds of all recursive strategies\n\
         coincide: the defective-class structure dominates, and the β/p\n\
         formulas differ only in *scheduled* (mostly empty) classes — see\n\
         the classes used/scheduled column, where the paper's β schedules an\n\
         order of magnitude more. The asymptotic separation between the\n\
         strategies is quantified by the budget recurrences (thm41-budget).\n\
         All deterministic outputs verified proper and within 2Δ−1 colors."
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn comparison_runs_all_algorithms() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("ours (paper"));
        assert!(r.contains("Lin87 + class elimination"));
        assert!(r.contains("Luby"));
    }
}
