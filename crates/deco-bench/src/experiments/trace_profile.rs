//! `trace-profile` — where each engine's wall time goes, per phase: the
//! same pipeline run on all four engines (serial, barrier, async, sharded)
//! under the trace layer, rendered as one cross-engine per-phase wall-time
//! matrix and one counter matrix from `deco-trace::summary`. Colors,
//! rounds, and messages are re-asserted identical across the lineup inline,
//! so the profile can never drift from a correctness bug silently.

use crate::workloads::ids_for;
use deco_core::solver::{solve_two_delta_minus_one, RunReport, SolverConfig};
use deco_engine::{EngineMode, GraphSpec, IdFlavor, ParallelExecutor, Scenario, ShardedExecutor};
use deco_runtime::Runtime;
use deco_trace::{summary, Counter, Phase};
use std::fmt::Write as _;

/// The fixed engine lineup the profile sweeps.
fn lineup() -> Vec<(&'static str, Runtime)> {
    vec![
        ("serial", Runtime::serial()),
        (
            "barrier(t=2)",
            Runtime::from(ParallelExecutor::with_threads(2)),
        ),
        (
            "async(t=2)",
            Runtime::from(ParallelExecutor::with_threads(2).with_mode(EngineMode::Async)),
        ),
        ("sharded(s=2)", Runtime::from(ShardedExecutor::new(2))),
    ]
}

/// Runs the experiment and returns the report.
pub fn run(_rt: &Runtime) -> String {
    let mut out = String::from(
        "# trace-profile — per-phase wall-time breakdown across all four engines\n\n\
         One pipeline (Linial + the Theorem 4.1 solver, regular(96,8)) per engine,\n\
         traced end to end; every span, counter, and sample below comes from the\n\
         shared deco-trace layer — no engine carries bespoke stat plumbing.\n\n",
    );
    let _measure = deco_trace::measure();

    let scenario = Scenario::new(
        GraphSpec::RandomRegular { n: 96, d: 8 },
        IdFlavor::Shuffled,
        5,
    );
    let g = scenario.graph();
    let ids = ids_for(&g);
    let cfg = SolverConfig::default();

    let mut runs: Vec<(String, deco_trace::MetricsReport)> = Vec::new();
    let mut baseline: Option<RunReport> = None;
    for (name, rt) in lineup() {
        let report =
            solve_two_delta_minus_one(&g, &ids, cfg, &rt).unwrap_or_else(|e| panic!("{name}: {e}"));
        let metrics = report
            .metrics
            .clone()
            .expect("tracing on: RunReport carries metrics");
        assert!(
            metrics.phase(Phase::Pipeline).is_some(),
            "{name}: pipeline span missing"
        );
        if let Some(serial) = &baseline {
            assert_eq!(serial.colors, report.colors, "{name}: colors diverge");
            assert_eq!(serial.rounds, report.rounds, "{name}: rounds diverge");
            assert_eq!(serial.messages, report.messages, "{name}: messages diverge");
            // The traced message total is engine-uniform too: every engine
            // emits exactly one messages count per execution.
            assert_eq!(
                metrics.counter(Counter::Messages),
                serial.metrics.as_ref().unwrap().counter(Counter::Messages),
                "{name}: traced message totals diverge"
            );
        } else {
            baseline = Some(report);
        }
        runs.push((name.to_string(), metrics));
    }

    out.push_str("## per-phase wall time\n\n");
    out.push_str(&summary::phase_matrix(&runs));
    out.push_str(
        "\nPhases nest (`pipeline` contains everything; `round` contains `send`,\n\
         `deliver`, `receive`; async and sharded runs attribute whole executions\n\
         to `execute` instead of global rounds) — compare within a level. `—`\n\
         marks phases an engine never enters: only the serial runner has a\n\
         distinct `deliver` phase, only the async engine skips global rounds,\n\
         only the framed coordinator has a `cut-exchange` phase.\n\n",
    );

    out.push_str("## counters and samples\n\n");
    out.push_str(&summary::counter_matrix(&runs));
    let base = baseline.expect("lineup is non-empty");
    let _ = writeln!(
        out,
        "\nAll four engines agree on colors, rounds ({}), and messages ({}) — the\n\
         profile varies, the observables don't. Wall times are this host's only;\n\
         the structure (which phases dominate) is the portable signal.",
        base.rounds, base.messages
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_covers_all_four_engines() {
        let r = run(&Runtime::serial());
        assert!(r.contains("per-phase wall time"), "{r}");
        for engine in ["serial", "barrier(t=2)", "async(t=2)", "sharded(s=2)"] {
            assert!(r.contains(engine), "missing {engine}:\n{r}");
        }
        assert!(r.contains("pipeline"), "{r}");
        assert!(r.contains("messages"), "{r}");
    }
}
