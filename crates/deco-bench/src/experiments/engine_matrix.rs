//! `engine-matrix` — the round-execution engine across the scenario matrix:
//! differential correctness (engine ≡ serial runner, observationally) plus
//! wall-clock comparison of the serial runner vs the flat-mailbox engine at
//! one and many threads.

use crate::table::Table;
use deco_engine::protocols::{FloodMax, PortEcho};
use deco_engine::{
    Executor, GraphSpec, IdFlavor, ParallelExecutor, Scenario, ScenarioMatrix, SerialExecutor,
};
use deco_runtime::Runtime;
use std::fmt::Write as _;
use std::time::Instant;

/// Runs the experiment and returns the report.
pub fn run(_rt: &Runtime) -> String {
    let mut out = String::from(
        "# engine-matrix — parallel engine vs serial runner across the scenario matrix\n\n",
    );

    // Part 1: differential correctness sweep over the full standard matrix.
    let matrix = ScenarioMatrix::standard(2026);
    let mut checked = 0usize;
    let mut messages = 0u64;
    for s in matrix.iter() {
        let g = s.graph();
        let net = s.network(&g);
        let serial = SerialExecutor
            .execute(&net, &FloodMax { radius: 4 }, 50)
            .unwrap();
        let engine = ParallelExecutor::auto()
            .execute(&net, &FloodMax { radius: 4 }, 50)
            .unwrap();
        assert_eq!(serial.outputs, engine.outputs, "{}", s.name);
        assert_eq!(serial.rounds, engine.rounds, "{}", s.name);
        assert_eq!(serial.messages, engine.messages, "{}", s.name);
        checked += 1;
        messages += serial.messages;
    }
    let _ = writeln!(
        out,
        "## differential sweep\n\n{checked} scenarios (families × sizes × ID flavors), \
         {messages} messages delivered per executor: engine outputs, round counts, and\n\
         message counts identical to the serial reference on every scenario.\n",
    );

    // Part 2: throughput on large workloads.
    out.push_str("## throughput (large graphs)\n\n");
    let mut t = Table::new([
        "workload",
        "protocol",
        "serial",
        "engine-1t",
        "engine-auto",
        "speedup (auto vs serial)",
    ]);
    let workloads = [
        (GraphSpec::RandomRegular { n: 10_000, d: 32 }, 4u64),
        (
            GraphSpec::Gnp {
                n: 20_000,
                p: 0.001,
            },
            4,
        ),
        (GraphSpec::PowerLaw { n: 30_000 }, 4),
    ];
    for (spec, radius) in workloads {
        let scenario = Scenario::new(spec, IdFlavor::Shuffled, 7);
        let g = scenario.graph();
        let net = scenario.network(&g);
        let (st, so) = time(|| {
            SerialExecutor
                .execute(&net, &FloodMax { radius }, 50)
                .unwrap()
        });
        let (e1, r1) = time(|| {
            ParallelExecutor::with_threads(1)
                .execute(&net, &FloodMax { radius }, 50)
                .unwrap()
        });
        let (ea, ra) = time(|| {
            ParallelExecutor::auto()
                .execute(&net, &FloodMax { radius }, 50)
                .unwrap()
        });
        assert_eq!(so.outputs, r1.outputs);
        assert_eq!(so.outputs, ra.outputs);
        t.row([
            scenario.spec.label(),
            format!("flood(r={radius})"),
            format!("{st:.1?}"),
            format!("{e1:.1?}"),
            format!("{ea:.1?}"),
            format!("{:.2}x", st.as_secs_f64() / ea.as_secs_f64()),
        ]);

        let (st2, so2) = time(|| {
            SerialExecutor
                .execute(&net, &PortEcho { rounds: 3 }, 10)
                .unwrap()
        });
        let (ea2, ra2) = time(|| {
            ParallelExecutor::auto()
                .execute(&net, &PortEcho { rounds: 3 }, 10)
                .unwrap()
        });
        assert_eq!(so2.outputs, ra2.outputs);
        t.row([
            scenario.spec.label(),
            "port-echo(3)".to_string(),
            format!("{st2:.1?}"),
            "-".to_string(),
            format!("{ea2:.1?}"),
            format!("{:.2}x", st2.as_secs_f64() / ea2.as_secs_f64()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nThe engine's flat CSR mailboxes + precomputed mirror table remove the\n\
         per-round nested allocations and O(deg) delivery scans of the serial\n\
         runner; threading splits both phases over degree-balanced node ranges\n\
         with identical observable behavior.\n",
    );

    // Part 3: solver pipeline on the engine substrate.
    out.push_str("\n## Theorem 4.1 pipeline on the engine\n\n");
    let scenario = Scenario::new(
        GraphSpec::RandomRegular { n: 512, d: 16 },
        IdFlavor::Sequential,
        3,
    );
    let g = scenario.graph();
    let ids: Vec<u64> = (1..=g.num_nodes() as u64).collect();
    let cfg = deco_core::solver::SolverConfig::default();
    let serial_rt = Runtime::serial();
    let engine_rt = Runtime::from(ParallelExecutor::auto());
    let (ts, rs) = time(|| {
        deco_core::solver::solve_two_delta_minus_one(&g, &ids, cfg, &serial_rt)
            .expect("solver succeeds")
    });
    let (te, re) = time(|| {
        deco_core::solver::solve_two_delta_minus_one(&g, &ids, cfg, &engine_rt)
            .expect("solver succeeds")
    });
    assert_eq!(rs.colors, re.colors, "executor must not change results");
    let _ = writeln!(
        out,
        "regular(n=512,d=16), default config: {} {ts:.1?}, {} {te:.1?};\n\
         identical colorings ({} colors, {} rounds charged, {} messages).",
        rs.engine_descriptor,
        re.engine_descriptor,
        rs.colors.distinct_colors(),
        rs.cost.actual_rounds(),
        rs.messages,
    );
    out
}

fn time<T>(f: impl FnOnce() -> T) -> (std::time::Duration, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed(), value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_mentions_scenarios_and_speedups() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("differential sweep"));
        assert!(r.contains("identical to the serial reference"));
        assert!(r.contains("speedup"));
    }
}
