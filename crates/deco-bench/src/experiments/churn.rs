//! `churn` — dynamic graphs under seeded insert/delete traces, with a
//! differential oracle on every update.
//!
//! For every scenario family (one ID flavor — churn never reads IDs after
//! the base solve, so crossing flavors would replay identical work), the
//! experiment opens a [`Session`], replays two seeded traces — **uniform**
//! (random node pairs, toggling existence) and **hub-biased**
//! (degree-weighted endpoint choice, hammering the hottest neighborhoods) —
//! and asserts after *every* update:
//!
//! * the live coloring is complete and proper on the current snapshot,
//! * the palette stays within the `2Δ − 1` bound of the current graph —
//!   the same bound a fresh solve of that graph guarantees,
//! * the repair never escalates to a re-solve (provable at the true bound).
//!
//! At the end of each trace a fresh pipeline solve of the final graph runs
//! for the differential wall-clock comparison: recolors-per-update vs the
//! node count a fresh solve would touch, and incremental-vs-fresh time.
//! Headline numbers append to `DECO_BENCH_JSON` (see [`crate::records`]) so
//! `bench-trend` can gate regressions.
//!
//! `DECO_CHURN_SMOKE=1` switches to the smoke matrix with shorter traces
//! for the CI `churn-smoke` leg; the report's `oracle:` line is what that
//! job greps for.

use crate::records::append_trend_records;
use crate::table::Table;
use deco_core::session::Session;
use deco_core::solver::{solve_two_delta_minus_one, SolverConfig};
use deco_engine::{IdFlavor, Scenario, ScenarioMatrix};
use deco_graph::coloring::check_edge_coloring;
use deco_graph::{EdgeUpdate, MutableGraph, NodeId};
use deco_runtime::Runtime;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Write as _;
use std::time::Duration;

/// Updates per (scenario, trace kind) in the standard run. 15 families × 2
/// kinds × 25 = 750 oracle-checked updates, comfortably past the ≥ 500 the
/// acceptance bar asks for.
const UPDATES_STANDARD: usize = 25;
/// Updates per (scenario, trace kind) under `DECO_CHURN_SMOKE`.
const UPDATES_SMOKE: usize = 10;

fn smoke_mode() -> bool {
    std::env::var("DECO_CHURN_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The trace generators: both toggle existence (an existing pair becomes a
/// removal, a missing one an insertion), differing in how endpoints are
/// drawn.
#[derive(Clone, Copy)]
enum TraceKind {
    Uniform,
    HubBiased,
}

impl TraceKind {
    fn label(self) -> &'static str {
        match self {
            TraceKind::Uniform => "uniform",
            TraceKind::HubBiased => "hub-biased",
        }
    }

    fn stream(self) -> &'static str {
        match self {
            TraceKind::Uniform => "churn-uniform",
            TraceKind::HubBiased => "churn-hub",
        }
    }

    /// Draws the next update against the mirror of the live graph.
    fn next_update(self, mirror: &MutableGraph, rng: &mut StdRng) -> Option<EdgeUpdate> {
        let n = mirror.num_nodes();
        if n < 2 {
            return None;
        }
        for _ in 0..64 {
            let u = match self {
                TraceKind::Uniform => rng.gen_range(0..n),
                // Degree-weighted: hubs attract churn, like flows chasing
                // the busiest switch ports. Weight deg+1 keeps isolated
                // nodes reachable.
                TraceKind::HubBiased => {
                    let total: usize = (0..n).map(|v| mirror.degree(NodeId::from(v)) + 1).sum();
                    let mut pick = rng.gen_range(0..total);
                    (0..n)
                        .find(|&v| {
                            let w = mirror.degree(NodeId::from(v)) + 1;
                            if pick < w {
                                true
                            } else {
                                pick -= w;
                                false
                            }
                        })
                        .unwrap_or(0)
                }
            };
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let (u, v) = (NodeId::from(u), NodeId::from(v));
            return Some(if mirror.has_edge(u, v) {
                EdgeUpdate::remove(u, v)
            } else {
                EdgeUpdate::insert(u, v)
            });
        }
        None
    }
}

/// Per-trace outcome folded into the tables and the oracle line.
struct TraceRun {
    updates: u64,
    recolored: u64,
    messages: u64,
    incremental_wall: Duration,
    fresh_wall: Duration,
    final_nodes: usize,
    final_edges: usize,
}

/// Replays one seeded trace over `scenario`, oracle-checking every update.
fn run_trace(
    scenario: &Scenario,
    kind: TraceKind,
    updates: usize,
    rt: &Runtime,
) -> Result<TraceRun, String> {
    let g = scenario.graph();
    let ids: Vec<u64> = scenario.network(&g).ids().to_vec();
    let cfg = SolverConfig::default();
    let mut session = Session::open(&g, &ids, cfg, rt)
        .map_err(|e| format!("{}: base solve failed: {e}", scenario.name))?;
    let mut mirror = MutableGraph::from_graph(&g);
    let mut rng = scenario.stream(kind.stream());

    let mut out = TraceRun {
        updates: 0,
        recolored: 0,
        messages: 0,
        incremental_wall: Duration::ZERO,
        fresh_wall: Duration::ZERO,
        final_nodes: g.num_nodes(),
        final_edges: g.num_edges(),
    };
    for step in 0..updates {
        let Some(update) = kind.next_update(&mirror, &mut rng) else {
            break; // n < 2: nothing to churn
        };
        mirror.apply(update).expect("mirror tracks the session");
        let up = session
            .apply(update)
            .map_err(|e| format!("{}: update {step} ({update}) failed: {e}", scenario.name))?;
        out.updates += 1;
        out.recolored += up.recolored;
        out.messages += up.messages;
        out.incremental_wall += up.wall_time;

        // The differential oracle, after *every* update.
        let snap = session.graph().clone();
        let report = session.report();
        check_edge_coloring(&snap, &report.colors).map_err(|e| {
            format!(
                "{}/{}: improper after update {step} ({update}): {e}",
                scenario.name,
                kind.label()
            )
        })?;
        let bound = (2 * snap.max_degree()).saturating_sub(1).max(1) as u32;
        if up.palette_bound != bound {
            return Err(format!(
                "{}/{}: reported bound {} != 2Δ−1 = {bound}",
                scenario.name,
                kind.label(),
                up.palette_bound
            ));
        }
        if report.colors.max_color().is_some_and(|c| c >= bound) {
            return Err(format!(
                "{}/{}: palette exceeds the fresh-solve bound {bound} after update {step}",
                scenario.name,
                kind.label()
            ));
        }
        if session.resolves() > 0 {
            return Err(format!(
                "{}/{}: escalated to a full re-solve at the true bound",
                scenario.name,
                kind.label()
            ));
        }
    }

    // Differential timing: a fresh pipeline solve of the final graph.
    let final_graph = session.graph().clone();
    out.final_nodes = final_graph.num_nodes();
    out.final_edges = final_graph.num_edges();
    let t0 = std::time::Instant::now();
    let fresh = solve_two_delta_minus_one(&final_graph, &ids, cfg, rt)
        .map_err(|e| format!("{}: fresh solve failed: {e}", scenario.name))?;
    out.fresh_wall = t0.elapsed();
    // Same graph, same bound: the fresh solve's palette obeys the identical
    // 2Δ−1 guarantee the incremental coloring was held to above.
    let bound = (2 * final_graph.max_degree()).saturating_sub(1).max(1) as u32;
    if fresh.colors.max_color().is_some_and(|c| c >= bound) {
        return Err(format!(
            "{}: fresh solve broke its own bound",
            scenario.name
        ));
    }
    Ok(out)
}

/// Runs the experiment and returns the report.
pub fn run(rt: &Runtime) -> String {
    let smoke = smoke_mode();
    let (matrix, updates) = if smoke {
        (ScenarioMatrix::smoke(2026), UPDATES_SMOKE)
    } else {
        (ScenarioMatrix::standard(2026), UPDATES_STANDARD)
    };
    let mut out = String::from("# churn — incremental recoloring under edge churn\n\n");
    let _ = writeln!(
        out,
        "{} matrix, one session per scenario family per trace kind, {updates} \
         updates per trace, differential oracle after every update \
         (proper + within the fresh solve's 2Δ−1 bound), engine: {}.\n",
        if smoke { "smoke" } else { "standard" },
        rt.descriptor(),
    );

    let mut t = Table::new([
        "scenario",
        "trace",
        "updates",
        "recolors/upd",
        "msgs/upd",
        "inc total",
        "fresh solve",
        "fresh/inc",
    ]);
    let mut total_updates = 0u64;
    let mut failures: Vec<String> = Vec::new();
    let mut uniform_recolored = 0u64;
    let mut uniform_updates = 0u64;
    let mut uniform_nodes = 0u64;
    let mut uniform_traces = 0u64;
    let mut inc_wall = Duration::ZERO;
    let mut fresh_wall = Duration::ZERO;

    // One ID flavor: churn repairs never read the IDs again after the base
    // solve, so the other flavors would replay byte-identical repair work.
    for scenario in matrix.iter().filter(|s| s.id_flavor == IdFlavor::Shuffled) {
        for kind in [TraceKind::Uniform, TraceKind::HubBiased] {
            match run_trace(scenario, kind, updates, rt) {
                Ok(run) => {
                    total_updates += run.updates;
                    inc_wall += run.incremental_wall;
                    fresh_wall += run.fresh_wall;
                    if matches!(kind, TraceKind::Uniform) {
                        uniform_recolored += run.recolored;
                        uniform_updates += run.updates;
                        uniform_nodes += run.final_nodes as u64;
                        uniform_traces += 1;
                    }
                    let per = |x: u64| {
                        if run.updates == 0 {
                            "-".to_string()
                        } else {
                            format!("{:.2}", x as f64 / run.updates as f64)
                        }
                    };
                    let ratio = if run.incremental_wall.as_nanos() == 0 {
                        "-".into()
                    } else {
                        format!(
                            "{:.1}x",
                            run.fresh_wall.as_secs_f64() / run.incremental_wall.as_secs_f64()
                        )
                    };
                    t.row([
                        scenario.spec.label(),
                        kind.label().into(),
                        run.updates.to_string(),
                        per(run.recolored),
                        per(run.messages),
                        format!("{:.1?}", run.incremental_wall),
                        format!("{:.1?}", run.fresh_wall),
                        ratio,
                    ]);
                }
                Err(e) => failures.push(e),
            }
        }
    }
    out.push_str(&t.render());
    out.push('\n');

    // The oracle line the CI churn-smoke job greps for.
    if failures.is_empty() {
        let avg_recolors = if uniform_updates == 0 {
            0.0
        } else {
            uniform_recolored as f64 / uniform_updates as f64
        };
        // Node count averaged over uniform traces — what a fresh solve
        // re-derives state for on every update.
        let avg_nodes = if uniform_traces == 0 {
            0.0
        } else {
            uniform_nodes as f64 / uniform_traces as f64
        };
        let _ = writeln!(
            out,
            "oracle: OK — {total_updates} updates oracle-checked (proper after \
             each, palette within the fresh solve's 2Δ−1 bound, zero re-solves); \
             uniform traces recolored {avg_recolors:.2} edges/update vs \
             {avg_nodes:.0} nodes a fresh solve touches.",
        );
        // The acceptance bar: incremental repair touches at least 10x fewer
        // edges than a fresh solve has nodes, on the uniform trace. Tiny
        // families (n < 10) cannot satisfy a 10x gap by pigeonhole, so the
        // bar is the matrix-wide aggregate.
        assert!(
            avg_recolors * 10.0 <= avg_nodes.max(1.0),
            "recolors/update {avg_recolors:.2} is not 10x below the \
             fresh-solve node count {avg_nodes:.0}"
        );
    } else {
        let _ = writeln!(out, "oracle: FAILED — {} trace(s):", failures.len());
        for f in &failures {
            let _ = writeln!(out, "  - {f}");
        }
        panic!("churn oracle failed:\n{}", failures.join("\n"));
    }

    let _ = writeln!(
        out,
        "\nTotal incremental repair time {inc_wall:.1?} vs {fresh_wall:.1?} of \
         fresh end-of-trace solves ({} traces): the repair path does O(deg(e)) \
         work per update where the pipeline re-derives every node's state.",
        total_updates / updates.max(1) as u64,
    );

    append_trend_records(&[
        (
            "churn/recolors-per-update-milli",
            (uniform_recolored * 1000)
                .checked_div(uniform_updates)
                .unwrap_or(0),
        ),
        ("churn/incremental-ns", inc_wall.as_nanos() as u64),
        ("churn/fresh-ns", fresh_wall.as_nanos() as u64),
    ]);

    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke_run_passes_the_oracle() {
        std::env::set_var("DECO_CHURN_SMOKE", "1");
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("oracle: OK"), "report:\n{r}");
        assert!(r.contains("hub-biased"));
        assert!(r.contains("fresh/inc"));
    }
}
