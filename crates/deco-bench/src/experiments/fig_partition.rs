//! `fig5` — Figure 5 of the paper: list partitioning with `C = 20`,
//! `p = 4`, `|L_e| = 7`, plus a randomized validation sweep of Lemma 4.4.

use crate::table::{fnum, Table};
use deco_core::lists::{lemma44_witness, level_of, ColorList, SubspacePartition};
use deco_local::math::harmonic;
use deco_runtime::Runtime;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Runs the experiment and returns the report.
pub fn run(_rt: &Runtime) -> String {
    let mut out = String::from("# fig5 — Lemma 4.4 partition example (paper Figure 5)\n\n");

    // The paper's worked example: C = 20 split into 4 subspaces of 5;
    // L_e = {1,2,5,6,7,12,17} (1-based) = {0,1,4,5,6,11,16} (0-based).
    let part = SubspacePartition::new(20, 4);
    let list = ColorList::new(vec![0, 1, 4, 5, 6, 11, 16]);
    let sizes = part.intersection_sizes(&list);
    let mut t = Table::new(["subspace", "range", "|L ∩ C_i|"]);
    for i in 0..part.num_subspaces() {
        let (lo, hi) = part.range(i);
        t.row([
            format!("C{}", i + 1),
            format!("{{{lo}..{}}}", hi - 1),
            sizes[i as usize].to_string(),
        ]);
    }
    out.push_str(&t.render());

    let (k, indices) = lemma44_witness(&list, &part);
    let h4 = harmonic(4);
    out.push_str(&format!(
        "\npaper: I = {{1,2}} with k = 2 since |C1∩L|,|C2∩L| ≥ |L|/(k·H₄) = 7/(2·{h4:.3}) = {}\n",
        fnum(7.0 / (2.0 * h4))
    ));
    out.push_str(&format!(
        "measured: k = {k}, I = {{{}}} (1-based) — matches (k ≥ 2 with C1, C2 included)\n",
        indices
            .iter()
            .map(|i| (i + 1).to_string())
            .collect::<Vec<_>>()
            .join(",")
    ));
    let info = level_of(&list, &part);
    out.push_str(&format!(
        "level ℓ(e) = {} (largest valid level; {} subspaces meet threshold {:.3})\n",
        info.level,
        info.indices.len(),
        info.threshold
    ));

    // Randomized sweep: Lemma 4.4 must hold for every list/partition.
    let mut rng = StdRng::seed_from_u64(2020);
    let trials = 10_000;
    let mut min_k = usize::MAX;
    let mut violations = 0usize;
    let mut k_hist = [0usize; 8];
    for _ in 0..trials {
        let c = rng.gen_range(8..=512u32);
        let p = rng.gen_range(2..=c.min(64));
        let part = SubspacePartition::new(c, p);
        let len = rng.gen_range(1..=c as usize);
        let mut colors: Vec<u32> = (0..c).collect();
        colors.shuffle(&mut rng);
        colors.truncate(len);
        let list = ColorList::new(colors);
        let (k, idx) = lemma44_witness(&list, &part);
        let hq = harmonic(u64::from(part.num_subspaces()));
        let threshold = list.len() as f64 / (k as f64 * hq);
        let ok = idx.len() == k
            && idx.iter().all(|&i| {
                let (lo, hi) = part.range(i);
                list.count_in_range(lo, hi) as f64 >= threshold
            });
        if !ok {
            violations += 1;
        }
        min_k = min_k.min(k);
        let bucket = (k.ilog2() as usize).min(7);
        k_hist[bucket] += 1;
    }
    out.push_str(&format!(
        "\nrandom sweep: {trials} (list, partition) pairs, violations = {violations}, min k = {min_k}\n"
    ));
    let mut hist = Table::new(["k range", "count"]);
    for (b, &count) in k_hist.iter().enumerate() {
        if count > 0 {
            hist.row([format!("[{}, {})", 1 << b, 1 << (b + 1)), count.to_string()]);
        }
    }
    out.push_str(&hist.render());

    // Adversarial geometric list: mass concentrated on one subspace.
    let part = SubspacePartition::new(256, 16);
    let geo = ColorList::new(
        (0..16)
            .chain(16..24)
            .chain(32..36)
            .chain(64..66)
            .collect::<Vec<_>>(),
    );
    let (k_geo, _) = lemma44_witness(&geo, &part);
    out.push_str(&format!(
        "\nadversarial geometric list (sizes 16,8,4,2): k = {k_geo}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_confirms_paper_example() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(
            r.contains("violations = 0"),
            "Lemma 4.4 must hold everywhere:\n{r}"
        );
        assert!(r.contains("measured: k = "));
    }
}
