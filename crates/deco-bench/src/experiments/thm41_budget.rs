//! `thm41-budget` — the headline Theorem 4.1 claim, evaluated as
//! fixed-schedule budgets: who wins at which Δ̄, and where the crossovers
//! fall.
//!
//! Three views:
//! 1. Θ-shape curves (unit constants) for directly plottable Δ̄ ≤ 2⁶⁴;
//! 2. the log-domain comparison locating the asymptotic crossover against
//!    Kuhn'20 near Δ̄ ≈ 2^65536;
//! 3. the exact recurrence budgets with the paper's constants (α = 1).

use crate::table::{fnum, Table};
use deco_core::budget::{theta, BudgetEvaluator, BudgetParams};
use deco_runtime::Runtime;
use std::fmt::Write as _;

/// Runs the experiment and returns the report.
pub fn run(_rt: &Runtime) -> String {
    let mut out = String::from("# thm41-budget — round-complexity shape (Theorem 4.1)\n");

    // --- View 1: Θ-shape table. ---
    out.push_str("\n## Θ-shape curves (unit constants, log* n term = 5)\n\n");
    let ls = 5.0;
    let mut t = Table::new([
        "Δ̄",
        "ours log^{loglog}Δ̄",
        "Kuhn20 2^{√logΔ̄}",
        "FHK16 √Δ̄·polylog",
        "PR01 Δ̄",
        "Lin87 Δ̄²",
        "winner",
    ]);
    for k in (4..=64).step_by(6) {
        let d = 2f64.powi(k);
        let curves = [
            ("ours", theta::balliu_kuhn_olivetti(d, ls)),
            ("kuhn20", theta::kuhn20(d, ls)),
            ("fhk16", theta::fhk16(d, ls)),
            ("pr01", theta::pr01(d, ls)),
            ("lin87", theta::linial_trivial(d, ls)),
        ];
        let winner = curves
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("nonempty")
            .0;
        t.row([
            format!("2^{k}"),
            fnum(curves[0].1),
            fnum(curves[1].1),
            fnum(curves[2].1),
            fnum(curves[3].1),
            fnum(curves[4].1),
            winner.to_string(),
        ]);
    }
    out.push_str(&t.render());

    // --- View 2: log-domain crossovers. ---
    out.push_str("\n## Log-domain comparison (ln T as a function of L = log₂ Δ̄)\n\n");
    use theta::log_domain as ld;
    let mut t2 = Table::new(["L = log₂ Δ̄", "ln T ours", "ln T kuhn20", "leader"]);
    for l in [
        16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
    ] {
        let a = ld::balliu_kuhn_olivetti(l);
        let b = ld::kuhn20(l);
        t2.row([
            fnum(l),
            fnum(a),
            fnum(b),
            if a < b { "ours" } else { "kuhn20" }.to_string(),
        ]);
    }
    out.push_str(&t2.render());
    let crossover_l = (4..30)
        .map(|e| 2f64.powi(e))
        .find(|&l| ld::balliu_kuhn_olivetti(l) < ld::kuhn20(l));
    let _ = writeln!(
        out,
        "\ncrossover vs Kuhn'20: L ≈ {} (i.e. Δ̄ ≈ 2^{}), matching the analytic\n\
         solution of (log₂ L)·ln L = √L·ln 2. Against FHK16/PR01/Lin87 the\n\
         quasi-polylog curve wins for every L ≥ 16 in the log domain.",
        crossover_l.map_or("beyond range".into(), fnum),
        crossover_l.map_or("?".into(), fnum),
    );

    // --- View 3: exact recurrence budgets. ---
    out.push_str("\n## Exact fixed-schedule budgets (paper constants, α = 1, C = 2Δ̄)\n\n");
    let mut ev = BudgetEvaluator::new(BudgetParams::default());
    let mut t3 = Table::new(["Δ̄", "exact T(Δ̄,1,2Δ̄) rounds", "Θ-ours", "exact/Θ overhead"]);
    for k in [4, 8, 12, 16, 20, 24, 32, 48, 64] {
        let d = 2f64.powi(k);
        let exact = ev.t_deg1(d, 2.0 * d);
        let shape = theta::balliu_kuhn_olivetti(d, ls);
        t3.row([
            format!("2^{k}"),
            fnum(exact),
            fnum(shape),
            fnum(exact / shape),
        ]);
    }
    out.push_str(&t3.render());
    out.push_str(
        "\nReading: the *shape* reproduces the paper (quasi-polylog beats every\n\
         poly(Δ̄) baseline asymptotically; the win over Kuhn'20's 2^{O(√log Δ̄)}\n\
         is real but sits at astronomically large Δ̄ when constants are unit —\n\
         the paper's improvement is asymptotic). The exact budgets document\n\
         the constant overhead of the explicit schedule.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn budget_report_is_complete() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("Θ-shape curves"));
        assert!(r.contains("crossover vs Kuhn'20"));
        assert!(r.contains("exact"));
        // At 2^64, ours must beat fhk/pr01/lin87 even with the log* term.
        assert!(r.contains("winner"));
    }
}
