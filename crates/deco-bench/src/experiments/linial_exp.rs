//! `linial` — Linial's initial coloring \[Lin87\], the `O(log* n)` substrate
//! of §4.3: palette is O(Δ̄²) and rounds are flat in `n`.

use crate::table::Table;
use crate::workloads::{cycle_sweep, ids_for};
use deco_algos::edge_adapter;
use deco_graph::generators;
use deco_runtime::Runtime;
use std::fmt::Write as _;

/// Runs the experiment and returns the report.
pub fn run(rt: &Runtime) -> String {
    let mut out = String::from("# linial — initial O(Δ̄²)-edge-coloring in O(log* n) rounds\n\n");

    // Part 1: rounds vs n at fixed Δ (cycles: Δ̄ = 2).
    out.push_str("## rounds vs n at Δ = 2 (log*-flatness)\n\n");
    let mut t = Table::new(["n", "rounds", "palette"]);
    let mut max_rounds = 0;
    for w in cycle_sweep(&[16, 64, 256, 1024, 4096, 16384, 65536]) {
        let res = edge_adapter::linial_edge_coloring(&w.graph, &ids_for(&w.graph), rt)
            .expect("linial terminates");
        max_rounds = max_rounds.max(res.rounds);
        t.row([
            w.graph.num_nodes().to_string(),
            res.rounds.to_string(),
            res.palette.to_string(),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nrounds stay ≤ {max_rounds} while n grows 4096×: the log* n term.\n"
    );

    // Part 2: palette vs Δ̄ (random regular graphs).
    out.push_str("## palette vs Δ̄ (O(Δ̄²) guarantee)\n\n");
    let mut t2 = Table::new(["graph", "Δ̄", "palette", "palette/Δ̄²", "rounds"]);
    for d in [3usize, 6, 10, 16, 24] {
        let n = (4000 / d).max(d + 2);
        let n = if n * d % 2 == 1 { n + 1 } else { n };
        let g = generators::random_regular(n, d, 7 + d as u64);
        let res = edge_adapter::linial_edge_coloring(&g, &ids_for(&g), rt).expect("linial");
        let dbar = g.max_edge_degree() as f64;
        t2.row([
            format!("regular({n},{d})"),
            format!("{}", g.max_edge_degree()),
            res.palette.to_string(),
            format!("{:.2}", res.palette as f64 / (dbar * dbar)),
            res.rounds.to_string(),
        ]);
    }
    out.push_str(&t2.render());
    out.push_str(
        "\npalette/Δ̄² stays bounded by a small constant (the fixpoint is q²\n\
         for a prime q = Θ(Δ̄)), matching [Lin87]'s O(Δ̄²) with the concrete\n\
         polynomial-family constant.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn linial_report_runs() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("log* n term"));
    }
}
