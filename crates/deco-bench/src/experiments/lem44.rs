//! `lem44` — tightness of the harmonic partition bound (Lemma 4.4):
//! adversarial geometric lists drive `k·H_q`-normalized intersections close
//! to the bound; random lists sit far from it.

use crate::table::{fnum, Table};
use deco_core::lists::{lemma44_witness, ColorList, SubspacePartition};
use deco_local::math::harmonic;
use deco_runtime::Runtime;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::fmt::Write as _;

/// The "quality" of a witness: the k-th largest intersection divided by the
/// guaranteed threshold `|L|/(k·H_q)` (≥ 1 always; ≈ 1 means tight).
fn witness_quality(list: &ColorList, part: &SubspacePartition) -> f64 {
    let (k, idx) = lemma44_witness(list, part);
    let hq = harmonic(u64::from(part.num_subspaces()));
    let kth = idx
        .iter()
        .map(|&i| {
            let (lo, hi) = part.range(i);
            list.count_in_range(lo, hi)
        })
        .min()
        .expect("witness nonempty") as f64;
    kth / (list.len() as f64 / (k as f64 * hq))
}

/// Runs the experiment and returns the report.
pub fn run(_rt: &Runtime) -> String {
    let mut out = String::from("# lem44 — harmonic partition bound tightness (Lemma 4.4)\n\n");
    let mut t = Table::new([
        "list family",
        "C",
        "p",
        "q",
        "k",
        "quality (≥ 1, 1 = tight)",
    ]);

    // Adversarial harmonic-decay list: block i gets ~ |L|/(i·H_q) colors —
    // exactly the profile that makes the lemma tight.
    for (c, p) in [(240u32, 4u32), (240, 8), (960, 16)] {
        let part = SubspacePartition::new(c, p);
        let q = part.num_subspaces();
        let hq = harmonic(u64::from(q));
        let block = part.block_size() as usize;
        let mut colors = Vec::new();
        let budget_per_rank: Vec<usize> = (1..=q as usize)
            .map(|i| (block as f64 / (i as f64 * hq) * q as f64 / 4.0).min(block as f64) as usize)
            .collect();
        for i in 0..q {
            let (lo, _) = part.range(i);
            let take = budget_per_rank[i as usize].min(block);
            colors.extend(lo..lo + take as u32);
        }
        if colors.is_empty() {
            colors.push(0);
        }
        let list = ColorList::new(colors);
        let (k, _) = lemma44_witness(&list, &part);
        t.row([
            "harmonic decay".to_string(),
            c.to_string(),
            p.to_string(),
            q.to_string(),
            k.to_string(),
            fnum(witness_quality(&list, &part)),
        ]);
    }

    // Random lists: quality well above 1.
    let mut rng = StdRng::seed_from_u64(44);
    let mut min_quality = f64::INFINITY;
    let mut mean_quality = 0.0;
    let trials = 3000;
    for _ in 0..trials {
        let c = rng.gen_range(16..=512u32);
        let p = rng.gen_range(2..=c.min(32));
        let part = SubspacePartition::new(c, p);
        let len = rng.gen_range(1..=c as usize);
        let mut colors: Vec<u32> = (0..c).collect();
        colors.shuffle(&mut rng);
        colors.truncate(len);
        let quality = witness_quality(&ColorList::new(colors), &part);
        assert!(
            quality >= 1.0 - 1e-9,
            "Lemma 4.4 violated: quality {quality}"
        );
        min_quality = min_quality.min(quality);
        mean_quality += quality / trials as f64;
    }
    t.row([
        format!("uniform random × {trials}"),
        "16..512".to_string(),
        "2..32".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("min {}, mean {}", fnum(min_quality), fnum(mean_quality)),
    ]);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nquality = (k-th largest intersection) / (|L|/(k·H_q)): the lemma\n\
         guarantees ≥ 1. Harmonic-decay adversarial lists approach the bound;\n\
         uniform lists sit far above it — the harmonic normalization is what\n\
         makes the bound universal."
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn bound_is_never_violated() {
        let r = super::run(&deco_runtime::Runtime::serial());
        assert!(r.contains("quality ="));
    }
}
