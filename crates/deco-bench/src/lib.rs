//! # deco-bench — experiment harness and benchmarks
//!
//! Regenerates every figure and quantitative claim of the paper (the
//! experiment index lives in `DESIGN.md` §4). Run
//! `cargo run -p deco-bench --release --bin experiments -- all` to produce
//! the reports embedded in `EXPERIMENTS.md`, or pass an experiment id
//! (`fig5`, `thm41-budget`, …) for a single one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod records;
pub mod table;
pub mod workloads;
