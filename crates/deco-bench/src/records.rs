//! Machine-readable trend records shared by the experiments.
//!
//! The criterion shim writes one JSON object per line to the file named by
//! `DECO_BENCH_JSON`; experiments append their headline numbers to the same
//! file in the same shape, so `bench-trend` joins benchmark and experiment
//! series by name without a second format.

use std::fmt::Write as _;

/// Appends `(name, value)` records to the `DECO_BENCH_JSON` file in the
/// criterion shim's line format, so `bench-trend` joins them by name. The
/// value lands in `mean_ns`/`min_ns` (nanoseconds for timing records, raw
/// counts or bytes for the rest — the tool compares numbers, the name
/// carries the unit). Silently skipped when the variable is unset; write
/// failures are reported but never fail the experiment.
pub fn append_trend_records(records: &[(&str, u64)]) {
    let Ok(path) = std::env::var("DECO_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut buf = String::new();
    for (name, value) in records {
        let _ = writeln!(
            buf,
            "{{\"name\":\"{name}\",\"mean_ns\":{value},\"min_ns\":{value},\"iters\":1}}"
        );
    }
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, buf.as_bytes()))
    {
        eprintln!("warning: could not append bench records to {path}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the env variable is process-global and the
    // test harness is multithreaded.
    #[test]
    fn appends_line_json_records_and_skips_when_unset() {
        let dir = std::env::temp_dir().join("deco-records-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trend.json");
        let _ = std::fs::remove_file(&path);
        std::env::set_var("DECO_BENCH_JSON", &path);
        append_trend_records(&[("a/b", 7), ("c", 9)]);
        append_trend_records(&[("d", 11)]);
        std::env::remove_var("DECO_BENCH_JSON");
        append_trend_records(&[("ignored", 1)]); // unset: must be a no-op
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"name\":\"a/b\",\"mean_ns\":7,\"min_ns\":7,\"iters\":1}"
        );
        assert!(lines[2].contains("\"name\":\"d\""));
        assert!(!text.contains("ignored"));
        let _ = std::fs::remove_file(&path);
    }
}
