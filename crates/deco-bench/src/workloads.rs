//! Named graph workloads shared by the experiments and Criterion benches.
//!
//! The paper's claims quantify over all graphs; the measured experiments
//! sample the standard families: random regular (the homogeneous-degree
//! stress case), Erdős–Rényi, bipartite left-regular (switch scheduling),
//! power-law (skewed degrees), and structured extremes (torus, complete).

use deco_core::instance::ListInstance;
use deco_core::solver::SolveError;
use deco_graph::coloring::Color;
use deco_graph::{generators, Graph};
use deco_local::CostNode;

/// A named, reproducible workload graph.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name used in experiment tables.
    pub name: String,
    /// The graph.
    pub graph: Graph,
}

impl Workload {
    fn new(name: impl Into<String>, graph: Graph) -> Workload {
        Workload {
            name: name.into(),
            graph,
        }
    }
}

/// Sequential node IDs `1..=n` for a graph (the experiments' default).
pub fn ids_for(g: &Graph) -> Vec<u64> {
    (1..=g.num_nodes() as u64).collect()
}

/// Greedy [`deco_core::space::AssignSolver`] used by experiments that
/// exercise the Lemma 4.3 reduction in isolation — valid because the
/// recursive assignment instances are (deg+1)-list instances.
pub fn greedy_assign(
    inst: &ListInstance,
    _x: &[u32],
) -> Result<(Vec<Color>, CostNode), SolveError> {
    let lists: Vec<Vec<Color>> = inst.lists().iter().map(|l| l.as_slice().to_vec()).collect();
    let coloring = deco_algos::greedy::greedy_list_edge_coloring(
        inst.graph(),
        &lists,
        deco_algos::greedy::EdgeOrder::ById,
    )
    .expect("assignment instances are (deg+1)-list");
    Ok((
        inst.graph()
            .edges()
            .map(|e| coloring.get(e).unwrap())
            .collect(),
        CostNode::leaf("g", 1),
    ))
}

/// The standard mixed suite at a given scale (`n` ≈ nodes per graph).
pub fn mixed_suite(n: usize, seed: u64) -> Vec<Workload> {
    let d = 8.min(n - 1);
    vec![
        Workload::new(
            format!("regular(n={n},d={d})"),
            generators::random_regular(n, d, seed),
        ),
        Workload::new(
            format!("gnp(n={n},p=8/n)"),
            generators::gnp(n, (8.0 / n as f64).min(1.0), seed + 1),
        ),
        Workload::new(
            format!("bipartite(n={n},d=6)"),
            generators::random_bipartite_left_regular(n / 2, n / 2, 6.min(n / 2), seed + 2),
        ),
        Workload::new(
            format!("powerlaw(n={n})"),
            generators::power_law(n, 2.5, (n as f64).sqrt().min(64.0), seed + 3),
        ),
        Workload::new(format!("tree(n={n})"), generators::random_tree(n, seed + 4)),
    ]
}

/// Regular graphs with increasing degree at (roughly) fixed edge count — the
/// Δ-scaling suite for the headline experiment.
pub fn degree_sweep(degrees: &[usize], edges_target: usize, seed: u64) -> Vec<Workload> {
    degrees
        .iter()
        .map(|&d| {
            let mut n = (2 * edges_target / d).max(d + 1);
            if n * d % 2 == 1 {
                n += 1;
            }
            Workload::new(
                format!("regular(d={d})"),
                generators::random_regular(n, d, seed + d as u64),
            )
        })
        .collect()
}

/// A component-skewed workload for the barrier-free engine: one dominant
/// random-regular component holding roughly half the nodes, a geometric
/// tail of ever-smaller cycles, and a sprinkling of isolated nodes. Under
/// a global barrier every small component idles through the dominant
/// component's rounds; barrier-free, each finishes on its own clock —
/// this is the workload where rounds-in-flight and barrier-wait-eliminated
/// are most visible.
pub fn skewed_components(n: usize, seed: u64) -> Workload {
    let n = n.max(16);
    let big = n / 2;
    let d = 6.min(big - 1);
    let mut parts = vec![generators::random_regular(
        big - (big * d) % 2, // keep n*d even for the regular generator
        d,
        seed,
    )];
    // Geometric tail: n/4, n/8, … down to tiny cycles.
    let mut size = n / 4;
    while size >= 3 {
        parts.push(generators::cycle(size));
        size /= 2;
    }
    parts.push(deco_graph::Graph::empty(5));
    Workload::new(
        format!("skewed-components(n={n})"),
        generators::disjoint_union(&parts),
    )
}

/// Cycle graphs of increasing size — the `log* n` flatness suite.
pub fn cycle_sweep(sizes: &[usize]) -> Vec<Workload> {
    sizes
        .iter()
        .map(|&n| Workload::new(format!("cycle(n={n})"), generators::cycle(n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_suite_has_expected_families() {
        let suite = mixed_suite(64, 1);
        assert_eq!(suite.len(), 5);
        for w in &suite {
            assert!(w.graph.num_nodes() > 0, "{} empty", w.name);
        }
    }

    #[test]
    fn degree_sweep_hits_targets() {
        let suite = degree_sweep(&[4, 8, 16], 512, 2);
        for (w, &d) in suite.iter().zip([4usize, 8, 16].iter()) {
            assert_eq!(w.graph.max_degree(), d);
            let m = w.graph.num_edges();
            assert!(
                (256..=1200).contains(&m),
                "edge count {m} off target for d={d}"
            );
        }
    }

    #[test]
    fn skewed_components_mixes_scales() {
        let w = skewed_components(200, 3);
        let g = &w.graph;
        let (_, components) = deco_graph::traversal::connected_components(g);
        // Dominant component + geometric cycle tail + 5 isolated nodes.
        assert!(components >= 8, "got {components} components");
        let isolated = g.nodes().filter(|&v| g.degree(v) == 0).count();
        assert_eq!(isolated, 5);
        assert!(g.max_degree() >= 6, "dominant component is dense-ish");
        // Deterministic in the seed.
        assert_eq!(g.edge_list(), skewed_components(200, 3).graph.edge_list());
    }

    #[test]
    fn ids_are_sequential() {
        let g = generators::path(5);
        assert_eq!(ids_for(&g), vec![1, 2, 3, 4, 5]);
    }
}
