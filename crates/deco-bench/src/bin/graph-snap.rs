//! `graph-snap` — generate, convert, and inspect graph files.
//!
//! ```text
//! graph-snap gen kronecker <scale> <edge_factor> <seed> <out>
//! graph-snap convert <in> <out>
//! graph-snap info <path>
//! ```
//!
//! File format is chosen by extension: `.snap` is the binary CSR snapshot
//! (magic `DECOSNAP`, version 1, O(read) loading with full structural
//! validation), anything else is edge-list text (`p <n> <m>` header plus
//! one `u v` pair per line, streamed through a buffered reader).
//! `convert` moves between them in either direction; `info` prints the
//! graph's shape without keeping anything but the CSR in memory.
//!
//! Exit codes: `0` success, `2` usage error or unreadable/malformed input
//! (the message names what was wrong).

use deco_graph::{generators, io, Graph};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["gen", "kronecker", scale, edge_factor, seed, out] => {
            let scale = parse(scale, "scale");
            let edge_factor = parse(edge_factor, "edge_factor");
            let seed = parse(seed, "seed");
            let g = generators::kronecker(scale as u32, edge_factor as usize, seed);
            write(&g, out);
            eprintln!("wrote {}: {g}", out);
        }
        ["convert", input, out] => {
            let g = read(input);
            write(&g, out);
            eprintln!("wrote {}: {g}", out);
        }
        ["info", path] => {
            let g = read(path);
            let isolated = g.nodes().filter(|&v| g.degree(v) == 0).count();
            println!(
                "{path}: {} nodes, {} edges, max degree {}, degree sum {}, {} isolated",
                g.num_nodes(),
                g.num_edges(),
                g.max_degree(),
                g.degree_sum(),
                isolated,
            );
        }
        _ => {
            eprintln!(
                "usage:\n  graph-snap gen kronecker <scale> <edge_factor> <seed> <out>\n  \
                 graph-snap convert <in> <out>\n  graph-snap info <path>\n\
                 (.snap = binary snapshot, anything else = edge-list text)"
            );
            exit(2);
        }
    }
}

fn parse(s: &str, what: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{what} must be a number, got {s:?}");
        exit(2);
    })
}

fn read(path: &str) -> Graph {
    let result = if path.ends_with(".snap") {
        io::read_snapshot_file(path).map_err(|e| e.to_string())
    } else {
        io::read_edge_list_file(path).map_err(|e| e.to_string())
    };
    result.unwrap_or_else(|e| {
        eprintln!("could not read {path}: {e}");
        exit(2);
    })
}

fn write(g: &Graph, path: &str) {
    let result = if path.ends_with(".snap") {
        io::write_snapshot_file(g, path).map_err(|e| e.to_string())
    } else {
        std::fs::write(path, io::to_edge_list(g)).map_err(|e| e.to_string())
    };
    if let Err(e) = result {
        eprintln!("could not write {path}: {e}");
        exit(2);
    }
}
