//! `bench-trend` — compares two `DECO_BENCH_JSON` files (line-JSON records
//! written by the criterion shim, one `{"name":…,"mean_ns":…,"min_ns":…,
//! "iters":…}` object per line) and flags regressions.
//!
//! ```text
//! bench-trend <baseline.json> <current.json> [--threshold <pct>]
//! ```
//!
//! Benchmarks present in both files are joined by name and their mean
//! times compared; a benchmark whose mean grew by more than the threshold
//! (default 10%) is a regression. Exit codes: `0` no regressions, `1` at
//! least one regression, `2` usage / unreadable file / malformed record.
//! CI runs this as a soft step (`continue-on-error`) against the previous
//! run's baseline — wall times on shared runners are noisy, so the trend
//! table is the signal and the exit code is advisory.

use deco_bench::table::Table;
use deco_trace::json::{parse_object, JsonValue};
use std::process::ExitCode;

/// One benchmark record from a `DECO_BENCH_JSON` file.
#[derive(Debug, Clone, PartialEq)]
struct BenchRecord {
    name: String,
    mean_ns: u64,
    min_ns: u64,
    iters: u64,
}

/// Parses one line of a bench JSON file.
fn parse_record(line: &str) -> Result<BenchRecord, String> {
    let fields = parse_object(line)?;
    let mut name = None;
    let mut mean_ns = None;
    let mut min_ns = None;
    let mut iters = None;
    for (key, value) in fields {
        match (key.as_str(), value) {
            ("name", JsonValue::String(s)) => name = Some(s),
            ("mean_ns", JsonValue::Number(n)) if is_count(n) => mean_ns = Some(n as u64),
            ("min_ns", JsonValue::Number(n)) if is_count(n) => min_ns = Some(n as u64),
            ("iters", JsonValue::Number(n)) if is_count(n) => iters = Some(n as u64),
            (k, v) => return Err(format!("unexpected field {k:?} = {v:?}")),
        }
    }
    Ok(BenchRecord {
        name: name.ok_or("missing \"name\"")?,
        mean_ns: mean_ns.ok_or("missing \"mean_ns\"")?,
        min_ns: min_ns.ok_or("missing \"min_ns\"")?,
        iters: iters.ok_or("missing \"iters\"")?,
    })
}

fn is_count(n: f64) -> bool {
    n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64
}

/// Parses a whole bench file; blank lines are skipped, errors carry the
/// 1-based line number. A name appearing twice keeps the last record (the
/// shim appends, so reruns in one file supersede earlier rows).
fn parse_file(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut records: Vec<BenchRecord> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = parse_record(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        if let Some(prev) = records.iter_mut().find(|r| r.name == rec.name) {
            *prev = rec;
        } else {
            records.push(rec);
        }
    }
    Ok(records)
}

/// The verdict for one benchmark name across the two files.
#[derive(Debug, Clone, PartialEq)]
enum Verdict {
    /// In both files; `delta_pct` is the mean-time growth in percent.
    Compared { delta_pct: f64, regressed: bool },
    /// Only in the current file.
    New,
    /// Only in the baseline file.
    Removed,
}

/// Joins baseline and current records by name, in current-file order with
/// removed baselines appended, and renders each against the threshold.
fn compare(
    baseline: &[BenchRecord],
    current: &[BenchRecord],
    threshold_pct: f64,
) -> Vec<(String, Option<u64>, Option<u64>, Verdict)> {
    let mut rows = Vec::new();
    for cur in current {
        let base = baseline.iter().find(|b| b.name == cur.name);
        let verdict = match base {
            Some(b) => {
                let delta_pct = if b.mean_ns == 0 {
                    if cur.mean_ns == 0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (cur.mean_ns as f64 - b.mean_ns as f64) / b.mean_ns as f64 * 100.0
                };
                Verdict::Compared {
                    delta_pct,
                    regressed: delta_pct > threshold_pct,
                }
            }
            None => Verdict::New,
        };
        rows.push((
            cur.name.clone(),
            base.map(|b| b.mean_ns),
            Some(cur.mean_ns),
            verdict,
        ));
    }
    for b in baseline {
        if !current.iter().any(|c| c.name == b.name) {
            rows.push((b.name.clone(), Some(b.mean_ns), None, Verdict::Removed));
        }
    }
    rows
}

fn fmt_ns(ns: Option<u64>) -> String {
    match ns {
        Some(ns) => deco_trace::summary::fmt_nanos(ns),
        None => "—".to_string(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: bench-trend <baseline.json> <current.json> [--threshold <pct>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold_pct = 10.0f64;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--threshold" {
            let Some(raw) = it.next() else {
                return usage();
            };
            match raw.parse::<f64>() {
                Ok(pct) if pct.is_finite() && pct >= 0.0 => threshold_pct = pct,
                _ => {
                    eprintln!(
                        "bench-trend: --threshold must be a non-negative percent, got {raw:?}"
                    );
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage();
    };

    let mut files = Vec::new();
    for path in [baseline_path, current_path] {
        match std::fs::read_to_string(path) {
            Ok(text) => match parse_file(&text) {
                Ok(records) => files.push(records),
                Err(e) => {
                    eprintln!("bench-trend: {path}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("bench-trend: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let (baseline, current) = (&files[0], &files[1]);

    let rows = compare(baseline, current, threshold_pct);
    let mut table = Table::new(["benchmark", "baseline", "current", "delta", "verdict"]);
    let mut regressions = 0usize;
    for (name, base, cur, verdict) in &rows {
        let (delta, label) = match verdict {
            Verdict::Compared {
                delta_pct,
                regressed,
            } => {
                if *regressed {
                    regressions += 1;
                }
                (
                    format!("{delta_pct:+.1}%"),
                    if *regressed { "REGRESSED" } else { "ok" },
                )
            }
            Verdict::New => ("—".to_string(), "new"),
            Verdict::Removed => ("—".to_string(), "removed"),
        };
        table.row([
            name.clone(),
            fmt_ns(*base),
            fmt_ns(*cur),
            delta,
            label.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\n{} benchmarks compared, threshold +{threshold_pct:.1}%: {regressions} regression(s)",
        rows.iter()
            .filter(|(_, _, _, v)| matches!(v, Verdict::Compared { .. }))
            .count()
    );
    if regressions > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shim_records() {
        let rec = parse_record(
            r#"{"name":"solver/regular(120,8)","mean_ns":1500,"min_ns":1400,"iters":32}"#,
        )
        .unwrap();
        assert_eq!(rec.name, "solver/regular(120,8)");
        assert_eq!(rec.mean_ns, 1500);
        assert_eq!(rec.min_ns, 1400);
        assert_eq!(rec.iters, 32);
    }

    #[test]
    fn rejects_malformed_records() {
        for bad in [
            "",
            "not json",
            r#"{"name":"x","mean_ns":1500,"min_ns":1400}"#, // missing iters
            r#"{"mean_ns":1500,"min_ns":1400,"iters":1}"#,  // missing name
            r#"{"name":"x","mean_ns":-3,"min_ns":1,"iters":1}"#, // negative
            r#"{"name":"x","mean_ns":1.5,"min_ns":1,"iters":1}"#, // fractional
            r#"{"name":"x","mean_ns":1,"min_ns":1,"iters":1,"extra":true}"#,
        ] {
            assert!(parse_record(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn later_duplicate_wins() {
        let recs = parse_file(
            "{\"name\":\"a\",\"mean_ns\":10,\"min_ns\":9,\"iters\":1}\n\
             \n\
             {\"name\":\"a\",\"mean_ns\":20,\"min_ns\":19,\"iters\":1}\n",
        )
        .unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].mean_ns, 20);
    }

    #[test]
    fn compare_flags_only_past_threshold() {
        let base = parse_file(
            "{\"name\":\"a\",\"mean_ns\":100,\"min_ns\":90,\"iters\":5}\n\
             {\"name\":\"b\",\"mean_ns\":100,\"min_ns\":90,\"iters\":5}\n\
             {\"name\":\"gone\",\"mean_ns\":50,\"min_ns\":40,\"iters\":5}\n",
        )
        .unwrap();
        let cur = parse_file(
            "{\"name\":\"a\",\"mean_ns\":109,\"min_ns\":90,\"iters\":5}\n\
             {\"name\":\"b\",\"mean_ns\":125,\"min_ns\":90,\"iters\":5}\n\
             {\"name\":\"fresh\",\"mean_ns\":10,\"min_ns\":9,\"iters\":5}\n",
        )
        .unwrap();
        let rows = compare(&base, &cur, 10.0);
        assert_eq!(rows.len(), 4);
        assert!(matches!(
            rows[0].3,
            Verdict::Compared {
                regressed: false,
                ..
            }
        ));
        assert!(matches!(
            rows[1].3,
            Verdict::Compared {
                regressed: true,
                ..
            }
        ));
        assert_eq!(rows[2].3, Verdict::New);
        assert_eq!(rows[3].3, Verdict::Removed);
    }

    #[test]
    fn zero_baseline_is_not_divided_by() {
        let base = vec![BenchRecord {
            name: "z".into(),
            mean_ns: 0,
            min_ns: 0,
            iters: 1,
        }];
        let mut cur = base.clone();
        let rows = compare(&base, &cur, 10.0);
        assert!(matches!(
            rows[0].3,
            Verdict::Compared {
                regressed: false,
                ..
            }
        ));
        cur[0].mean_ns = 5;
        let rows = compare(&base, &cur, 10.0);
        assert!(matches!(
            rows[0].3,
            Verdict::Compared {
                regressed: true,
                ..
            }
        ));
    }
}
