//! CLI dispatcher for the experiment harness.
//!
//! Usage: `experiments [all | <id> ...]`; with no arguments, lists the ids.

use deco_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments [all | <id> ...]\navailable experiments:");
        for (id, _) in experiments::all() {
            eprintln!("  {id}");
        }
        std::process::exit(2);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::all().into_iter().map(|(id, _)| id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match experiments::by_id(id) {
            Some(runner) => {
                let start = std::time::Instant::now();
                println!("{}", runner());
                println!("[{id} completed in {:?}]\n", start.elapsed());
            }
            None => {
                eprintln!("unknown experiment: {id}");
                std::process::exit(2);
            }
        }
    }
}
