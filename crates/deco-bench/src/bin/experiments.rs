//! CLI dispatcher for the experiment harness.
//!
//! Usage: `experiments [all | <id> ...]`; with no arguments, lists the ids.
//!
//! The ambient engine comes from the environment (`DECO_ENGINE_*`,
//! `DECO_SHARD_TRANSPORT`) via [`Runtime::from_env`]; a malformed variable
//! is reported to stderr — naming the variable and the offending value —
//! and the harness exits instead of silently running on an engine nobody
//! pinned.

use deco_bench::experiments;
use deco_runtime::Runtime;

fn main() {
    let rt = match Runtime::from_env() {
        Ok(rt) => rt,
        Err(err) => {
            // err carries the variable name and the offending value
            // (e.g. "DECO_ENGINE_THREADS must be a thread count (0 or
            // empty = auto), got \"three\"").
            eprintln!("invalid engine environment: {err}");
            std::process::exit(2);
        }
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments [all | <id> ...]\navailable experiments:");
        for (id, _) in experiments::all() {
            eprintln!("  {id}");
        }
        std::process::exit(2);
    }
    eprintln!("[engine: {}]", rt.descriptor());
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::all().into_iter().map(|(id, _)| id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match experiments::by_id(id) {
            Some(runner) => {
                let start = std::time::Instant::now();
                println!("{}", runner(&rt));
                println!("[{id} completed in {:?}]\n", start.elapsed());
            }
            None => {
                eprintln!("unknown experiment: {id}");
                std::process::exit(2);
            }
        }
    }
}
