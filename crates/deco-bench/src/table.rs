//! Minimal aligned-table formatter for experiment output (markdown-pipe
//! style, so tables paste directly into EXPERIMENTS.md).

/// An in-memory table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned markdown table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for i in 0..cols {
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                line.push(' ');
                line.push_str(cell);
                line.push_str(&" ".repeat(pad + 1));
                line.push('|');
            }
            line.push('\n');
            line
        };
        let mut out = fmt_row(&self.headers);
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Formats a float compactly: integers without decimals, large values in
/// scientific notation.
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    if x.abs() >= 1e7 {
        format!("{x:.2e}")
    } else if (x.fract()).abs() < 1e-9 {
        format!("{:.0}", x)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["a", "bbbb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        assert!(s.contains("| a   | bbbb |"));
        assert!(s.contains("|-----|------|"));
        assert!(s.contains("| 333 | 4    |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_bad_arity() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(3.0), "3");
        assert_eq!(fnum(3.25), "3.25");
        assert_eq!(fnum(1.234e9), "1.23e9");
        assert_eq!(fnum(f64::INFINITY), "inf");
    }
}
