//! Component benchmarks: one Criterion target per paper artifact —
//! defective coloring (§4.1 / def-col), space reduction (Lemma 4.3 /
//! lem43), sweep (Lemma 4.2 / lem42), partition levels (Lemma 4.4 / fig5),
//! and budget evaluation (thm41-budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deco_algos::greedy;
use deco_core::budget::{BudgetEvaluator, BudgetParams};
use deco_core::defective::defective_edge_coloring;
use deco_core::instance::{self, ListInstance};
use deco_core::lists::{level_of, ColorList, SubspacePartition};
use deco_core::solver::{SolveBranch, SolveError, SolveStats};
use deco_core::{slack, space};
use deco_graph::coloring::Color;
use deco_graph::generators;
use deco_local::CostNode;
use deco_runtime::Runtime;
use rand::prelude::*;
use rand::rngs::StdRng;

fn x_coloring(g: &deco_graph::Graph) -> Vec<u32> {
    let c = greedy::greedy_edge_coloring(g, greedy::EdgeOrder::ById);
    g.edges().map(|e| c.get(e).unwrap()).collect()
}

fn x_palette(x: &[u32]) -> u32 {
    x.iter().max().map_or(2, |m| m + 1)
}

fn greedy_colors(inst: &ListInstance) -> Vec<Color> {
    let lists: Vec<Vec<Color>> = inst.lists().iter().map(|l| l.as_slice().to_vec()).collect();
    let coloring = greedy::greedy_list_edge_coloring(inst.graph(), &lists, greedy::EdgeOrder::ById)
        .expect("feasible");
    inst.graph()
        .edges()
        .map(|e| coloring.get(e).unwrap())
        .collect()
}

fn greedy_inner(inst: &ListInstance, _x: &[u32]) -> Result<SolveBranch, SolveError> {
    Ok(SolveBranch {
        colors: greedy_colors(inst),
        cost: CostNode::leaf("g", 1),
        stats: SolveStats::default(),
    })
}

fn greedy_assign(inst: &ListInstance, _x: &[u32]) -> Result<(Vec<Color>, CostNode), SolveError> {
    Ok((greedy_colors(inst), CostNode::leaf("g", 1)))
}

fn bench_defective(c: &mut Criterion) {
    let mut group = c.benchmark_group("defective-coloring");
    for beta in [1u32, 2, 4] {
        let g = generators::random_regular(400, 12, 3);
        let x = x_coloring(&g);
        let xp = x_palette(&x);
        group.bench_with_input(BenchmarkId::from_parameter(beta), &beta, |b, &beta| {
            b.iter(|| defective_edge_coloring(&g, beta, &x, xp, &Runtime::serial()).num_colors);
        });
    }
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let g = generators::random_regular(200, 10, 5);
    let inst = instance::two_delta_minus_one(&g);
    let x = x_coloring(&g);
    let xp = x_palette(&x);
    c.bench_function("lemma42-sweep", |b| {
        b.iter(|| {
            slack::sweep(&inst, &x, xp, 1, &Runtime::serial(), &greedy_inner)
                .expect("sweep succeeds")
                .stats
                .colored
        });
    });
}

fn bench_space_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma43-space-reduction");
    for p in [4u32, 8] {
        let g = generators::random_regular(120, 10, 7);
        let inst = instance::random_with_slack(&g, 4000, 120.0, 9);
        let x = x_coloring(&g);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let mut assign = greedy_assign;
                let assign: &mut space::AssignSolver<'_> = &mut assign;
                space::reduce_color_space(&inst, p, &x, assign)
                    .expect("reduction succeeds")
                    .sub_instances
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_levels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let part = SubspacePartition::new(4096, 32);
    let lists: Vec<ColorList> = (0..256)
        .map(|_| {
            let len = rng.gen_range(1..=2048usize);
            let mut cs: Vec<u32> = (0..4096).collect();
            cs.shuffle(&mut rng);
            cs.truncate(len);
            ColorList::new(cs)
        })
        .collect();
    c.bench_function("lemma44-level-of-256-lists", |b| {
        b.iter(|| {
            lists
                .iter()
                .map(|l| level_of(l, &part).level)
                .max()
                .expect("nonempty")
        });
    });
}

fn bench_budget_eval(c: &mut Criterion) {
    c.bench_function("thm41-budget-eval-2^64", |b| {
        b.iter(|| {
            let mut ev = BudgetEvaluator::new(BudgetParams::default());
            ev.t_deg1(2f64.powi(64), 2f64.powi(65))
        });
    });
}

criterion_group!(
    benches,
    bench_defective,
    bench_sweep,
    bench_space_reduction,
    bench_levels,
    bench_budget_eval
);
criterion_main!(benches);
