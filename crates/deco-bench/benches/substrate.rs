//! Substrate benchmarks: the building blocks underneath the solver —
//! Linial's protocol (the `linial` experiment), the Luby baseline, class
//! elimination, generators, and line-graph construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deco_algos::{class_elimination, edge_adapter, luby};
use deco_graph::{generators, LineGraph};
use deco_local::{IdAssignment, Network};
use deco_runtime::Runtime;

fn ids(n: usize) -> Vec<u64> {
    (1..=n as u64).collect()
}

fn bench_linial_edge(c: &mut Criterion) {
    let mut group = c.benchmark_group("linial-edge-coloring");
    group.sample_size(10);
    for n in [256usize, 1024] {
        let g = generators::random_regular(n, 8, 13);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                edge_adapter::linial_edge_coloring(g, &ids(g.num_nodes()), &Runtime::serial())
                    .expect("terminates")
                    .palette
            });
        });
    }
    group.finish();
}

fn bench_luby(c: &mut Criterion) {
    let mut group = c.benchmark_group("luby-edge-coloring");
    group.sample_size(10);
    let g = generators::random_regular(512, 8, 17);
    let lg = LineGraph::of(&g);
    let bound = (2 * g.max_degree() - 1) as u32;
    let lists: Vec<Vec<u32>> = lg.graph().nodes().map(|_| (0..bound).collect()).collect();
    group.bench_function("regular(512,8)", |b| {
        b.iter(|| {
            let net = Network::new(lg.graph(), IdAssignment::Shuffled(3));
            luby::luby_list_coloring(&net, lists.clone(), 7, &Runtime::serial())
                .expect("terminates")
                .rounds
        });
    });
    group.finish();
}

fn bench_class_elimination(c: &mut Criterion) {
    let g = generators::random_regular(512, 8, 19);
    let lg = LineGraph::of(&g);
    let x = edge_adapter::linial_edge_coloring(&g, &ids(g.num_nodes()), &Runtime::serial())
        .expect("terminates");
    let initial: Vec<u32> = g.edges().map(|e| x.coloring.get(e).unwrap()).collect();
    let bound = (2 * g.max_degree() - 1) as u32;
    let lists: Vec<Vec<u32>> = lg.graph().nodes().map(|_| (0..bound).collect()).collect();
    c.bench_function("class-elimination regular(512,8)", |b| {
        b.iter(|| {
            class_elimination::list_color_by_classes(lg.graph(), &lists, &initial, x.palette as u32)
                .1
        });
    });
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.bench_function("random_regular(2048,8)", |b| {
        b.iter(|| generators::random_regular(2048, 8, 7).num_edges());
    });
    group.bench_function("gnp(4096,0.002)", |b| {
        b.iter(|| generators::gnp(4096, 0.002, 7).num_edges());
    });
    group.bench_function("power_law(4096)", |b| {
        b.iter(|| generators::power_law(4096, 2.5, 64.0, 7).num_edges());
    });
    group.finish();
}

fn bench_line_graph(c: &mut Criterion) {
    let g = generators::random_regular(2048, 8, 29);
    c.bench_function("line-graph regular(2048,8)", |b| {
        b.iter(|| LineGraph::of(&g).graph().num_edges());
    });
}

criterion_group!(
    benches,
    bench_linial_edge,
    bench_luby,
    bench_class_elimination,
    bench_generators,
    bench_line_graph
);
criterion_main!(benches);
