//! End-to-end solver benchmarks: the `thm41-measured` and `related-work`
//! experiments as Criterion targets (wall-time per solve, by Δ and by
//! parameter strategy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deco_core::solver::{solve_two_delta_minus_one, SolverConfig, Strategy};
use deco_graph::generators;
use deco_runtime::Runtime;

fn ids(n: usize) -> Vec<u64> {
    (1..=n as u64).collect()
}

/// Solve time as a function of Δ at roughly fixed edge count.
fn bench_solver_by_degree(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/degree-sweep");
    group.sample_size(10);
    for d in [4usize, 8, 16, 32] {
        let n = (4096 / d).max(d + 2);
        let n = if n * d % 2 == 1 { n + 1 } else { n };
        let g = generators::random_regular(n, d, 17 + d as u64);
        group.bench_with_input(BenchmarkId::from_parameter(d), &g, |b, g| {
            b.iter(|| {
                let res = solve_two_delta_minus_one(
                    g,
                    &ids(g.num_nodes()),
                    SolverConfig::default(),
                    &Runtime::serial(),
                )
                .expect("solver succeeds");
                assert!(res.colors.is_complete());
                res.cost.actual_rounds()
            });
        });
    }
    group.finish();
}

/// Solve time by parameter strategy (the related-work ablation).
fn bench_solver_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/strategy-ablation");
    group.sample_size(10);
    let g = generators::random_regular(256, 12, 23);
    for (name, strategy) in [
        ("paper", Strategy::Paper),
        ("kuhn20", Strategy::Kuhn20),
        ("constant-p3", Strategy::ConstantP(3)),
    ] {
        let cfg = SolverConfig {
            strategy,
            ..SolverConfig::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let res =
                    solve_two_delta_minus_one(&g, &ids(g.num_nodes()), cfg, &Runtime::serial())
                        .expect("solver succeeds");
                res.cost.actual_rounds()
            });
        });
    }
    group.finish();
}

/// Solve time as a function of n at fixed Δ (the log* n story: work should
/// scale ~linearly in m, rounds stay flat).
fn bench_solver_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/n-sweep");
    group.sample_size(10);
    for n in [128usize, 512, 2048] {
        let g = generators::random_regular(n, 8, 31);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let res = solve_two_delta_minus_one(
                    g,
                    &ids(g.num_nodes()),
                    SolverConfig::default(),
                    &Runtime::serial(),
                )
                .expect("solver succeeds");
                res.cost.actual_rounds()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_solver_by_degree,
    bench_solver_strategies,
    bench_solver_by_n
);
criterion_main!(benches);
