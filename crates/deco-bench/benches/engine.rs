//! Engine-vs-serial substrate benchmarks: the same protocols on the same
//! large networks, executed by the serial reference runner, the engine
//! pinned to one thread (flat-mailbox fast path only), and the engine at
//! hardware parallelism. Outputs are asserted identical inside each
//! iteration, so the numbers can never drift apart from a correctness bug
//! silently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deco_bench::workloads;
use deco_engine::protocols::{FloodMax, PortEcho, StaggeredSum};
use deco_engine::{AsyncExecutor, Executor, ParallelExecutor, SerialExecutor, ShardedExecutor};
use deco_graph::generators;
use deco_local::{IdAssignment, Network};

/// The headline workload from the acceptance bar: random regular with
/// n = 10⁴, Δ = 32.
fn large_graph() -> deco_graph::Graph {
    generators::random_regular(10_000, 32, 41)
}

fn bench_flood_engine_vs_serial(c: &mut Criterion) {
    let g = large_graph();
    let net = Network::new(&g, IdAssignment::Shuffled(9));
    let protocol = FloodMax { radius: 4 };
    let mut group = c.benchmark_group("flood/regular(10k,32)");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            SerialExecutor
                .execute(&net, &protocol, 50)
                .unwrap()
                .messages
        })
    });
    group.bench_function("engine-1t", |b| {
        b.iter(|| {
            ParallelExecutor::with_threads(1)
                .execute(&net, &protocol, 50)
                .unwrap()
                .messages
        })
    });
    group.bench_function("engine-auto", |b| {
        b.iter(|| {
            ParallelExecutor::auto()
                .execute(&net, &protocol, 50)
                .unwrap()
                .messages
        })
    });
    group.finish();
}

fn bench_port_echo_thread_scaling(c: &mut Criterion) {
    let g = large_graph();
    let net = Network::new(&g, IdAssignment::Sequential);
    let protocol = PortEcho { rounds: 4 };
    let baseline = SerialExecutor.execute(&net, &protocol, 10).unwrap();
    let mut group = c.benchmark_group("port-echo/regular(10k,32)");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            SerialExecutor
                .execute(&net, &protocol, 10)
                .unwrap()
                .messages
        })
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("engine", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let out = ParallelExecutor::with_threads(threads)
                        .execute(&net, &protocol, 10)
                        .unwrap();
                    assert_eq!(out.outputs, baseline.outputs);
                    out.messages
                })
            },
        );
    }
    group.finish();
}

fn bench_solver_pipeline_on_engine(c: &mut Criterion) {
    use deco_core::solver::{solve_two_delta_minus_one, SolverConfig};
    use deco_runtime::Runtime;
    let g = generators::random_regular(512, 16, 23);
    let ids: Vec<u64> = (1..=g.num_nodes() as u64).collect();
    let mut group = c.benchmark_group("solver/regular(512,16)");
    group.sample_size(10);
    let serial_rt = Runtime::serial();
    group.bench_function(serial_rt.descriptor(), |b| {
        b.iter(|| {
            solve_two_delta_minus_one(&g, &ids, SolverConfig::default(), &serial_rt)
                .expect("solver succeeds")
                .cost
                .actual_rounds()
        })
    });
    let engine_rt = Runtime::from(ParallelExecutor::auto());
    group.bench_function(engine_rt.descriptor(), |b| {
        b.iter(|| {
            solve_two_delta_minus_one(&g, &ids, SolverConfig::default(), &engine_rt)
                .expect("solver succeeds")
                .cost
                .actual_rounds()
        })
    });
    group.finish();
}

/// Barrier vs barrier-free on the workload built for asynchrony: one
/// dominant component plus a geometric tail of small ones. The staggered
/// protocol halts components at different local rounds, so the async
/// engine's skipped barrier waits are the whole story; outputs are
/// asserted identical against the serial baseline inside each iteration.
fn bench_async_component_skew(c: &mut Criterion) {
    let w = workloads::skewed_components(6000, 17);
    let net = Network::new(&w.graph, IdAssignment::Shuffled(7));
    let protocol = StaggeredSum { spread: 19 };
    let baseline = SerialExecutor.execute(&net, &protocol, 50).unwrap();
    let mut group = c.benchmark_group("async/skewed-components(6k)");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            SerialExecutor
                .execute(&net, &protocol, 50)
                .unwrap()
                .messages
        })
    });
    group.bench_function("engine-barrier", |b| {
        b.iter(|| {
            let out = ParallelExecutor::auto()
                .execute(&net, &protocol, 50)
                .unwrap();
            assert_eq!(out.outputs, baseline.outputs);
            out.messages
        })
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("engine-async", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let out = AsyncExecutor::with_threads(threads)
                        .execute(&net, &protocol, 50)
                        .unwrap();
                    assert_eq!(out.outputs, baseline.outputs);
                    out.messages
                })
            },
        );
    }
    group.finish();
}

/// Sharded execution on the headline workload: the partition, ghost-port,
/// and cut-exchange machinery at 1/2/4 shards against the serial and
/// barrier baselines. On a 1-CPU host this tracks the exchange overhead
/// (shards pay one boundary swap per round); on multi-core it tracks the
/// scaling. Outputs are asserted identical inside each iteration.
fn bench_sharded_cut_exchange(c: &mut Criterion) {
    let g = large_graph();
    let net = Network::new(&g, IdAssignment::Shuffled(13));
    let protocol = FloodMax { radius: 4 };
    let baseline = SerialExecutor.execute(&net, &protocol, 50).unwrap();
    let mut group = c.benchmark_group("sharded/regular(10k,32)");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            SerialExecutor
                .execute(&net, &protocol, 50)
                .unwrap()
                .messages
        })
    });
    group.bench_function("engine-barrier", |b| {
        b.iter(|| {
            ParallelExecutor::auto()
                .execute(&net, &protocol, 50)
                .unwrap()
                .messages
        })
    });
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("engine-sharded", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let out = ShardedExecutor::new(shards)
                        .execute(&net, &protocol, 50)
                        .unwrap();
                    assert_eq!(out.outputs, baseline.outputs);
                    out.messages
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_flood_engine_vs_serial,
    bench_port_echo_thread_scaling,
    bench_solver_pipeline_on_engine,
    bench_async_component_skew,
    bench_sharded_cut_exchange
);
criterion_main!(benches);
