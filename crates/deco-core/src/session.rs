//! Session-style solving: open once, apply edge updates, read live reports.
//!
//! A [`Session`] is the dynamic-graph entry point. [`Session::open`] runs
//! the full Theorem 4.1 pipeline once to establish a base coloring, then
//! every [`Session::apply`] routes through the incremental repair path
//! ([`crate::repair`]) instead of re-running the pipeline: an insert costs
//! one greedy probe of the edge's ball, a removal at most a palette-shrink
//! sweep. The escalation ladder (ball recolor, then a scoped re-solve of
//! the current snapshot on the session's [`Runtime`]) is wired in but
//! unreachable at the true `2Δ − 1` bound — the repair module's docs carry
//! the proof sketch.
//!
//! The one-shot [`solve_two_delta_minus_one`](crate::solver::solve_two_delta_minus_one)
//! is a thin wrapper over open + report, so static and dynamic callers
//! exercise the same pipeline.
//!
//! ```
//! use deco_core::session::Session;
//! use deco_core::solver::SolverConfig;
//! use deco_graph::{generators, EdgeUpdate};
//! use deco_runtime::Runtime;
//!
//! let g = generators::random_regular(20, 4, 3);
//! let ids: Vec<u64> = (1..=20).collect();
//! let mut session = Session::open(&g, &ids, SolverConfig::default(), &Runtime::serial())
//!     .expect("solver succeeds");
//! let up = session.apply(EdgeUpdate::insert(0usize, 2usize)).expect("repair succeeds");
//! assert_eq!(up.recolored, 1); // one greedy recolor, no pipeline re-run
//! let report = session.report();
//! assert_eq!(report.colors.uncolored_count(), 0);
//! ```

use crate::repair::{self, LiveColoring};
use crate::solver::{solve_pipeline, RunReport, SolveError, SolverConfig};
use deco_graph::{EdgeUpdate, Graph, MutableGraph, MutateError};
use deco_local::CostNode;
use deco_runtime::Runtime;
use std::fmt;
use std::time::{Duration, Instant};

/// Failure of a session operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The solver failed structurally (base solve or an escalated re-solve).
    Solve(SolveError),
    /// The graph mutation was rejected; the session state is unchanged.
    Mutate(MutateError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Solve(e) => e.fmt(f),
            SessionError::Mutate(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Solve(e) => Some(e),
            SessionError::Mutate(e) => Some(e),
        }
    }
}

impl From<SolveError> for SessionError {
    fn from(e: SolveError) -> SessionError {
        SessionError::Solve(e)
    }
}

impl From<MutateError> for SessionError {
    fn from(e: MutateError) -> SessionError {
        SessionError::Mutate(e)
    }
}

/// What one [`Session::apply`] did.
///
/// Everything except [`UpdateReport::wall_time`] is deterministic and
/// engine-independent — replaying the same trace on any engine yields the
/// same sequence of [`UpdateReport::observables`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateReport {
    /// The update that was applied.
    pub update: EdgeUpdate,
    /// Edges whose color changed (1 for a plain insert, 0 for a removal
    /// that did not shrink the palette bound).
    pub recolored: u64,
    /// The live coloring's palette high-water mark after the update
    /// (smallest `C` with every color `< C`).
    pub palette_max: u32,
    /// The `2Δ − 1` palette bound of the post-update graph. Always
    /// `≥ palette_max`.
    pub palette_bound: u32,
    /// Whether the repair escalated past the greedy single-edge step.
    pub escalated: bool,
    /// Color-probe messages the repair delivered (engine-independent).
    pub messages: u64,
    /// Wall-clock duration of the update. The only nondeterministic field.
    pub wall_time: Duration,
}

impl UpdateReport {
    /// The deterministic fields, for replay-equality assertions: everything
    /// but `wall_time`.
    pub fn observables(&self) -> (EdgeUpdate, u64, u32, u32, bool, u64) {
        (
            self.update,
            self.recolored,
            self.palette_max,
            self.palette_bound,
            self.escalated,
            self.messages,
        )
    }
}

/// A live `(2Δ − 1)`-edge-coloring session over a mutable graph. See the
/// module docs.
#[derive(Debug, Clone)]
pub struct Session {
    config: SolverConfig,
    rt: Runtime,
    node_ids: Vec<u64>,
    graph: MutableGraph,
    live: LiveColoring,
    base: RunReport,
    updates: u64,
    repair_rounds: u64,
    repair_messages: u64,
    recolored_total: u64,
    resolves: u64,
    repair_wall: Duration,
}

impl Session {
    /// Opens a session: solves the static instance once on `rt` and adopts
    /// the coloring as live state. `node_ids` are the distinct node
    /// identifiers the pipeline's Linial stage uses; the node set is fixed
    /// for the session's lifetime (churn is on edges).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] when the base solve fails structurally.
    pub fn open(
        g: &Graph,
        node_ids: &[u64],
        config: SolverConfig,
        rt: &Runtime,
    ) -> Result<Session, SolveError> {
        let inst = crate::instance::two_delta_minus_one(g);
        let base = solve_pipeline(g, inst, node_ids, config, rt)?;
        let live = LiveColoring::from_graph(g, &base.colors);
        Ok(Session {
            config,
            rt: *rt,
            node_ids: node_ids.to_vec(),
            graph: MutableGraph::from_graph(g),
            live,
            base,
            updates: 0,
            repair_rounds: 0,
            repair_messages: 0,
            recolored_total: 0,
            resolves: 0,
            repair_wall: Duration::ZERO,
        })
    }

    /// Applies one edge update and repairs the live coloring incrementally.
    ///
    /// # Errors
    ///
    /// [`SessionError::Mutate`] when the update is invalid (the session is
    /// unchanged); [`SessionError::Solve`] when an escalated re-solve fails
    /// structurally.
    pub fn apply(&mut self, update: EdgeUpdate) -> Result<UpdateReport, SessionError> {
        let start = Instant::now();
        let mut rep = match update {
            EdgeUpdate::Insert { u, v } => {
                self.graph.insert_edge(u, v)?;
                let bound = repair::palette_bound(self.graph.max_degree());
                repair::repair_insert(&self.graph, &mut self.live, u, v, bound)
            }
            EdgeUpdate::Remove { u, v } => {
                self.graph.remove_edge(u, v)?;
                self.live.clear(u, v);
                let bound = repair::palette_bound(self.graph.max_degree());
                repair::repair_shrink(&self.graph, &mut self.live, bound)
            }
        };
        if rep.exhausted {
            self.resolve_from_scratch(&mut rep)?;
        }
        self.updates += 1;
        self.recolored_total += rep.recolored;
        self.repair_messages += rep.messages;
        // Round accounting: each greedy recoloring is one sequential LOCAL
        // step in the worst case — deterministic, merged into the session
        // cost tree by `report`.
        self.repair_rounds += rep.recolored;
        let wall_time = start.elapsed();
        self.repair_wall += wall_time;
        Ok(UpdateReport {
            update,
            recolored: rep.recolored,
            palette_max: self.live.palette_max(),
            palette_bound: repair::palette_bound(self.graph.max_degree()),
            escalated: rep.escalated,
            messages: rep.messages,
            wall_time,
        })
    }

    /// Level-2 escalation: re-solve the current snapshot through the full
    /// pipeline on the session's runtime and adopt its coloring.
    /// Unreachable at the true `2Δ − 1` bound; kept correct for callers of
    /// the repair layer that pin tighter palettes.
    fn resolve_from_scratch(&mut self, rep: &mut repair::Repair) -> Result<(), SessionError> {
        let snap = self.graph.snapshot().clone();
        let inst = crate::instance::two_delta_minus_one(&snap);
        let fresh = solve_pipeline(&snap, inst, &self.node_ids, self.config, &self.rt)?;
        rep.recolored = snap.num_edges() as u64;
        rep.messages += fresh.messages;
        self.repair_rounds += fresh.rounds;
        self.live = LiveColoring::from_graph(&snap, &fresh.colors);
        self.resolves += 1;
        Ok(())
    }

    /// A [`RunReport`] describing the session so far: the base solve plus
    /// every incremental repair, with the live coloring projected onto the
    /// current snapshot's edge ids. With zero updates this is exactly the
    /// base solve's report — which is what makes the one-shot solve a thin
    /// wrapper over open + report.
    pub fn report(&mut self) -> RunReport {
        let colors = self.live.to_coloring(self.graph.snapshot());
        let mut report = self.base.clone();
        report.colors = colors;
        if self.updates > 0 {
            report.rounds = self.base.rounds + self.repair_rounds;
            report.messages = self.base.messages + self.repair_messages;
            report.wall_time = self.base.wall_time + self.repair_wall;
            report.cost = CostNode::seq(
                format!("session({} updates)", self.updates),
                vec![
                    self.base.cost.clone(),
                    CostNode::leaf("incremental repairs", self.repair_rounds),
                ],
            );
        }
        report
    }

    /// The current CSR snapshot (rebuilt on demand, cached between updates).
    pub fn graph(&mut self) -> &Graph {
        self.graph.snapshot()
    }

    /// Number of updates applied so far.
    pub fn num_updates(&self) -> u64 {
        self.updates
    }

    /// Total edges recolored across all updates.
    pub fn recolored_total(&self) -> u64 {
        self.recolored_total
    }

    /// Times the session escalated to a full re-solve (0 at the true bound).
    pub fn resolves(&self) -> u64 {
        self.resolves
    }

    /// The live palette high-water mark.
    pub fn palette_max(&self) -> u32 {
        self.live.palette_max()
    }

    /// The `2Δ − 1` bound of the current graph.
    pub fn palette_bound(&self) -> u32 {
        repair::palette_bound(self.graph.max_degree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve_two_delta_minus_one;
    use deco_graph::coloring::check_edge_coloring;
    use deco_graph::generators;
    use deco_graph::NodeId;

    fn ids_for(g: &Graph) -> Vec<u64> {
        (1..=g.num_nodes() as u64).collect()
    }

    #[test]
    fn zero_update_report_matches_the_one_shot_solve() {
        let g = generators::random_regular(24, 6, 13);
        let rt = Runtime::serial();
        let one_shot =
            solve_two_delta_minus_one(&g, &ids_for(&g), SolverConfig::default(), &rt).unwrap();
        let mut s = Session::open(&g, &ids_for(&g), SolverConfig::default(), &rt).unwrap();
        let report = s.report();
        assert_eq!(report.colors, one_shot.colors);
        assert_eq!(report.rounds, one_shot.rounds);
        assert_eq!(report.messages, one_shot.messages);
        assert_eq!(report.cost, one_shot.cost);
        assert_eq!(report.solve_stats, one_shot.solve_stats);
    }

    #[test]
    fn applies_inserts_and_removes_keeping_the_coloring_proper() {
        let g = generators::gnp(20, 0.2, 5);
        let rt = Runtime::serial();
        let mut s = Session::open(&g, &ids_for(&g), SolverConfig::default(), &rt).unwrap();
        let missing = (0..20u32)
            .flat_map(|u| (u + 1..20u32).map(move |v| (u, v)))
            .find(|&(u, v)| {
                s.graph
                    .to_graph()
                    .edge_between(NodeId(u), NodeId(v))
                    .is_none()
            })
            .unwrap();
        let up = s
            .apply(EdgeUpdate::insert(missing.0, missing.1))
            .expect("insert repairs");
        assert_eq!(up.recolored, 1);
        assert!(!up.escalated);
        assert!(up.palette_max <= up.palette_bound);
        let existing = *s.graph.edge_list().first().unwrap();
        let down = s
            .apply(EdgeUpdate::remove(existing[0], existing[1]))
            .expect("remove repairs");
        assert!(down.palette_max <= down.palette_bound);
        let report = s.report();
        let snap = s.graph().clone();
        check_edge_coloring(&snap, &report.colors).expect("proper after churn");
        assert_eq!(s.num_updates(), 2);
        assert_eq!(s.resolves(), 0, "true bound never re-solves");
    }

    #[test]
    fn session_report_keeps_the_rounds_cost_invariant() {
        let g = generators::random_regular(20, 4, 7);
        let rt = Runtime::serial();
        let mut s = Session::open(&g, &ids_for(&g), SolverConfig::default(), &rt).unwrap();
        s.apply(EdgeUpdate::insert(0u32, 2u32)).ok();
        s.apply(EdgeUpdate::insert(0u32, 5u32)).ok();
        let report = s.report();
        assert_eq!(report.rounds, report.x_rounds + report.cost.actual_rounds());
        assert!(report.cost.render().contains("incremental repairs"));
    }

    #[test]
    fn invalid_updates_leave_the_session_unchanged() {
        let g = generators::cycle(6);
        let rt = Runtime::serial();
        let mut s = Session::open(&g, &ids_for(&g), SolverConfig::default(), &rt).unwrap();
        let before = s.report();
        assert!(matches!(
            s.apply(EdgeUpdate::insert(3u32, 3u32)),
            Err(SessionError::Mutate(MutateError::Invalid(_)))
        ));
        assert!(matches!(
            s.apply(EdgeUpdate::remove(0u32, 3u32)),
            Err(SessionError::Mutate(MutateError::MissingEdge { .. }))
        ));
        assert_eq!(s.num_updates(), 0);
        assert_eq!(s.report().colors, before.colors);
    }

    #[test]
    fn update_observables_are_deterministic_across_replays() {
        let g = generators::random_regular(18, 4, 21);
        let trace = [
            EdgeUpdate::insert(0u32, 9u32),
            EdgeUpdate::remove(0u32, 9u32),
            EdgeUpdate::insert(1u32, 11u32),
            EdgeUpdate::insert(2u32, 12u32),
            EdgeUpdate::remove(1u32, 11u32),
        ];
        let rt = Runtime::serial();
        let run = |rt: &Runtime| {
            let mut s = Session::open(&g, &ids_for(&g), SolverConfig::default(), rt).unwrap();
            trace
                .iter()
                .map(|&u| s.apply(u).map(|r| r.observables()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&rt), run(&rt));
    }

    #[test]
    fn session_error_formats_and_chains() {
        let solve: SessionError = SolveError::DepthExceeded { depth: 1, limit: 1 }.into();
        assert!(solve.to_string().contains("depth 1"));
        let mutate: SessionError = MutateError::MissingEdge {
            u: NodeId(0),
            v: NodeId(1),
        }
        .into();
        assert!(mutate.to_string().contains("not in the graph"));
        assert!(std::error::Error::source(&mutate).is_some());
    }
}
