//! # deco-core — distributed (deg(e)+1)-list edge coloring in
//! quasi-polylogarithmic-in-Δ rounds
//!
//! Executable reproduction of *Distributed Edge Coloring in Time
//! Quasi-Polylogarithmic in Delta* (Balliu, Kuhn, Olivetti; PODC 2020):
//! a deterministic LOCAL algorithm solving (deg(e)+1)-list edge coloring —
//! and therefore (2Δ−1)-edge coloring — in `log^{O(log log Δ)} Δ + O(log* n)`
//! rounds.
//!
//! Module map (paper section → module):
//!
//! | Paper | Module |
//! |---|---|
//! | §4.1 defective edge coloring | [`defective`] |
//! | Lemma 4.2 (slack reduction) | [`slack`] |
//! | Lemma 4.4 (harmonic partition bound) | [`lists`] |
//! | Lemma 4.3 (color space reduction) | [`space`] |
//! | Theorem 4.1 (the solver) | [`solver`] |
//! | Round-complexity recurrences | [`budget`] |
//!
//! ## Quickstart
//!
//! ```
//! use deco_core::solver::{solve_two_delta_minus_one, SolverConfig};
//! use deco_graph::generators;
//! use deco_runtime::Runtime;
//!
//! let g = generators::random_regular(40, 6, 7);
//! let ids: Vec<u64> = (1..=40).collect();
//! let rt = Runtime::serial(); // or Runtime::from_env() / Runtime::builder()
//! let report = solve_two_delta_minus_one(&g, &ids, SolverConfig::default(), &rt)
//!     .expect("solver succeeds");
//! assert!(report.colors.distinct_colors() <= 2 * 6 - 1);
//! assert_eq!(report.engine_descriptor, "serial");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod defective;
pub mod instance;
pub mod jsonl;
pub mod lists;
pub mod repair;
pub mod session;
pub mod slack;
pub mod solver;
pub mod space;

pub use instance::ListInstance;
pub use jsonl::{RunReportLine, UpdateReportLine};
pub use lists::{ColorList, SubspacePartition};
pub use session::{Session, SessionError, UpdateReport};
pub use solver::{RunReport, SolveBranch, SolveError, SolveStats, Solver, SolverConfig, Strategy};
