//! Stable line-JSON encodings for run artifacts: [`RunReport`],
//! [`UpdateReport`], and [`SolveError`] as single flat JSON lines that
//! parse back, in the `deco-trace::json` style (hand-rolled writer, flat
//! objects, canonical field order).
//!
//! This is the report half of the serving wire protocol (`deco-serve`
//! embeds these fields in its response frames), but it stands alone:
//! experiments can append report lines to artifact files and re-read them
//! with the same codec, exactly like `DECO_BENCH_JSON` records.
//!
//! A [`RunReport`] is not fully reconstructible from a flat line (the
//! [`CostNode`](deco_local::CostNode) tree and optional trace metrics are
//! nested), so the codec round-trips through explicit wire structs —
//! [`RunReportLine`] and [`UpdateReportLine`] — that carry every
//! *observable* field: colors, rounds, messages, palettes, solver
//! counters, engine attribution, wall time. Two runs are
//! observable-identical iff their lines are equal (modulo the `wall_ns`
//! timing fields, the one legitimately nondeterministic part).
//!
//! ```
//! use deco_core::jsonl::RunReportLine;
//! use deco_core::solver::{solve_two_delta_minus_one, SolverConfig};
//! use deco_graph::generators;
//! use deco_runtime::Runtime;
//!
//! let g = generators::random_regular(20, 4, 3);
//! let ids: Vec<u64> = (1..=20).collect();
//! let report =
//!     solve_two_delta_minus_one(&g, &ids, SolverConfig::default(), &Runtime::serial()).unwrap();
//! let line = RunReportLine::from_report(&report).encode();
//! let parsed = RunReportLine::parse(&line).expect("round-trips");
//! assert_eq!(parsed, RunReportLine::from_report(&report));
//! assert_eq!(parsed.coloring().as_slice(), report.colors.as_slice());
//! ```

use crate::session::UpdateReport;
use crate::solver::{RunReport, SolveError, SolveStats};
use deco_engine::shard::framed::ShardFailure;
use deco_graph::coloring::EdgeColoring;
use deco_graph::EdgeUpdate;
use deco_trace::json::{Fields, ObjectWriter};
use std::time::Duration;

/// The `kind` tag of an encoded [`RunReportLine`].
pub const KIND_RUN_REPORT: &str = "run_report";
/// The `kind` tag of an encoded [`UpdateReportLine`].
pub const KIND_UPDATE_REPORT: &str = "update_report";
/// The `kind` tag of an encoded [`SolveError`].
pub const KIND_SOLVE_ERROR: &str = "solve_error";

/// Every observable field of a [`RunReport`], as flat line-JSON data. The
/// nested cost tree is represented by its total
/// ([`RunReportLine::cost_rounds`]), which together with
/// [`RunReportLine::x_rounds`] preserves the `rounds = x_rounds +
/// cost.actual_rounds()` invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReportLine {
    /// One entry per edge: the color, or `None` for an uncolored edge
    /// (complete solves have none).
    pub colors: Vec<Option<u32>>,
    /// Total charged LOCAL rounds.
    pub rounds: u64,
    /// Total messages delivered (engine-independent).
    pub messages: u64,
    /// The engine descriptor the run is attributed to.
    pub engine: String,
    /// Wall-clock nanoseconds — the only nondeterministic field.
    pub wall_ns: u64,
    /// Palette of the initial `X`-edge-coloring.
    pub x_palette: u32,
    /// Rounds of the initial coloring.
    pub x_rounds: u64,
    /// `actual_rounds()` of the solve's cost tree.
    pub cost_rounds: u64,
    /// Counters of the solver recursion.
    pub stats: SolveStats,
}

impl RunReportLine {
    /// Projects a [`RunReport`] onto its wire line.
    pub fn from_report(report: &RunReport) -> RunReportLine {
        RunReportLine {
            colors: report.colors.as_slice().to_vec(),
            rounds: report.rounds,
            messages: report.messages,
            engine: report.engine_descriptor.clone(),
            wall_ns: duration_ns(report.wall_time),
            x_palette: report.x_palette,
            x_rounds: report.x_rounds,
            cost_rounds: report.cost.actual_rounds(),
            stats: report.solve_stats.clone(),
        }
    }

    /// The colors as an [`EdgeColoring`] (edge ids are positions).
    pub fn coloring(&self) -> EdgeColoring {
        EdgeColoring::from_vec(self.colors.clone())
    }

    /// Writes the fields into an in-progress object, so a wire protocol
    /// can prepend its own framing fields to the same line.
    pub fn write_fields(&self, w: &mut ObjectWriter) {
        w.string("colors", &encode_colors(&self.colors))
            .u64("rounds", self.rounds)
            .u64("messages", self.messages)
            .string("engine", &self.engine)
            .u64("wall_ns", self.wall_ns)
            .u64("x_palette", u64::from(self.x_palette))
            .u64("x_rounds", self.x_rounds)
            .u64("cost_rounds", self.cost_rounds);
        write_stats(w, &self.stats);
    }

    /// Encodes the standalone line: `{"kind":"run_report",...}`.
    pub fn encode(&self) -> String {
        let mut w = ObjectWriter::new();
        w.string("kind", KIND_RUN_REPORT);
        self.write_fields(&mut w);
        w.finish()
    }

    /// Reads the fields back from a parsed object (framing fields from an
    /// embedding protocol are ignored).
    ///
    /// # Errors
    ///
    /// A description naming the missing or mistyped field.
    pub fn from_fields(fields: &Fields) -> Result<RunReportLine, String> {
        Ok(RunReportLine {
            colors: parse_colors(fields.str("colors")?)?,
            rounds: fields.u64("rounds")?,
            messages: fields.u64("messages")?,
            engine: fields.str("engine")?.to_string(),
            wall_ns: fields.u64("wall_ns")?,
            x_palette: parse_u32(fields, "x_palette")?,
            x_rounds: fields.u64("x_rounds")?,
            cost_rounds: fields.u64("cost_rounds")?,
            stats: parse_stats(fields)?,
        })
    }

    /// Parses a standalone line produced by [`RunReportLine::encode`].
    ///
    /// # Errors
    ///
    /// A description of the first syntax or schema problem.
    pub fn parse(line: &str) -> Result<RunReportLine, String> {
        let fields = Fields::parse(line)?;
        expect_kind(&fields, KIND_RUN_REPORT)?;
        RunReportLine::from_fields(&fields)
    }
}

/// An [`UpdateReport`] as flat line-JSON data. Unlike [`RunReportLine`]
/// this is lossless: [`UpdateReportLine::to_report`] rebuilds the exact
/// [`UpdateReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateReportLine {
    /// The applied update.
    pub update: EdgeUpdate,
    /// Edges whose color changed.
    pub recolored: u64,
    /// Palette high-water mark after the update.
    pub palette_max: u32,
    /// The `2Δ − 1` bound of the post-update graph.
    pub palette_bound: u32,
    /// Whether the repair escalated past the greedy step.
    pub escalated: bool,
    /// Color-probe messages delivered by the repair.
    pub messages: u64,
    /// Wall-clock nanoseconds — the only nondeterministic field.
    pub wall_ns: u64,
}

impl UpdateReportLine {
    /// Projects an [`UpdateReport`] onto its wire line.
    pub fn from_report(report: &UpdateReport) -> UpdateReportLine {
        UpdateReportLine {
            update: report.update,
            recolored: report.recolored,
            palette_max: report.palette_max,
            palette_bound: report.palette_bound,
            escalated: report.escalated,
            messages: report.messages,
            wall_ns: duration_ns(report.wall_time),
        }
    }

    /// Rebuilds the [`UpdateReport`].
    pub fn to_report(&self) -> UpdateReport {
        UpdateReport {
            update: self.update,
            recolored: self.recolored,
            palette_max: self.palette_max,
            palette_bound: self.palette_bound,
            escalated: self.escalated,
            messages: self.messages,
            wall_time: Duration::from_nanos(self.wall_ns),
        }
    }

    /// Writes the fields into an in-progress object (see
    /// [`RunReportLine::write_fields`]).
    pub fn write_fields(&self, w: &mut ObjectWriter) {
        let (u, v) = self.update.endpoints();
        let op = if self.update.is_insert() {
            "insert"
        } else {
            "remove"
        };
        w.string("op", op)
            .u64("u", u64::from(u.0))
            .u64("v", u64::from(v.0))
            .u64("recolored", self.recolored)
            .u64("palette_max", u64::from(self.palette_max))
            .u64("palette_bound", u64::from(self.palette_bound))
            .bool("escalated", self.escalated)
            .u64("messages", self.messages)
            .u64("wall_ns", self.wall_ns);
    }

    /// Encodes the standalone line: `{"kind":"update_report",...}`.
    pub fn encode(&self) -> String {
        let mut w = ObjectWriter::new();
        w.string("kind", KIND_UPDATE_REPORT);
        self.write_fields(&mut w);
        w.finish()
    }

    /// Reads the fields back from a parsed object.
    ///
    /// # Errors
    ///
    /// A description naming the missing or mistyped field.
    pub fn from_fields(fields: &Fields) -> Result<UpdateReportLine, String> {
        let u = parse_u32(fields, "u")?;
        let v = parse_u32(fields, "v")?;
        let update = match fields.str("op")? {
            "insert" => EdgeUpdate::insert(u, v),
            "remove" => EdgeUpdate::remove(u, v),
            other => return Err(format!("unknown update op {other:?}")),
        };
        Ok(UpdateReportLine {
            update,
            recolored: fields.u64("recolored")?,
            palette_max: parse_u32(fields, "palette_max")?,
            palette_bound: parse_u32(fields, "palette_bound")?,
            escalated: fields.bool("escalated")?,
            messages: fields.u64("messages")?,
            wall_ns: fields.u64("wall_ns")?,
        })
    }

    /// Parses a standalone line produced by [`UpdateReportLine::encode`].
    ///
    /// # Errors
    ///
    /// A description of the first syntax or schema problem.
    pub fn parse(line: &str) -> Result<UpdateReportLine, String> {
        let fields = Fields::parse(line)?;
        expect_kind(&fields, KIND_UPDATE_REPORT)?;
        UpdateReportLine::from_fields(&fields)
    }
}

/// Encodes a [`SolveError`] as `{"kind":"solve_error",...}` — lossless;
/// [`parse_solve_error`] rebuilds the exact value.
pub fn encode_solve_error(err: &SolveError) -> String {
    let mut w = ObjectWriter::new();
    w.string("kind", KIND_SOLVE_ERROR);
    write_solve_error_fields(&mut w, err);
    w.finish()
}

/// Writes a [`SolveError`]'s fields into an in-progress object (see
/// [`RunReportLine::write_fields`]).
pub fn write_solve_error_fields(w: &mut ObjectWriter, err: &SolveError) {
    match *err {
        SolveError::DepthExceeded { depth, limit } => {
            w.string("error", "depth_exceeded")
                .u64("depth", u64::from(depth))
                .u64("limit", u64::from(limit));
        }
        SolveError::ShardFailed { shard, cause } => {
            w.string("error", "shard_failed").u64("shard", shard as u64);
            match cause {
                ShardFailure::Timeout { budget_ms } => {
                    w.string("cause", "timeout").u64("budget_ms", budget_ms);
                }
                ShardFailure::Disconnected => {
                    w.string("cause", "disconnected");
                }
                ShardFailure::Malformed => {
                    w.string("cause", "malformed");
                }
            }
        }
    }
}

/// Reads a [`SolveError`] back from a parsed object.
///
/// # Errors
///
/// A description naming the missing or mistyped field.
pub fn solve_error_from_fields(fields: &Fields) -> Result<SolveError, String> {
    match fields.str("error")? {
        "depth_exceeded" => Ok(SolveError::DepthExceeded {
            depth: parse_u32(fields, "depth")?,
            limit: parse_u32(fields, "limit")?,
        }),
        "shard_failed" => {
            let shard = usize::try_from(fields.u64("shard")?)
                .map_err(|_| "field \"shard\" out of range".to_string())?;
            let cause = match fields.str("cause")? {
                "timeout" => ShardFailure::Timeout {
                    budget_ms: fields.u64("budget_ms")?,
                },
                "disconnected" => ShardFailure::Disconnected,
                "malformed" => ShardFailure::Malformed,
                other => return Err(format!("unknown shard failure cause {other:?}")),
            };
            Ok(SolveError::ShardFailed { shard, cause })
        }
        other => Err(format!("unknown solve error {other:?}")),
    }
}

/// Parses a standalone line produced by [`encode_solve_error`].
///
/// # Errors
///
/// A description of the first syntax or schema problem.
pub fn parse_solve_error(line: &str) -> Result<SolveError, String> {
    let fields = Fields::parse(line)?;
    expect_kind(&fields, KIND_SOLVE_ERROR)?;
    solve_error_from_fields(&fields)
}

/// Colors as a compact string: one token per edge, `-` for uncolored,
/// comma-separated (`"3,1,-,0"`); the empty coloring is the empty string.
fn encode_colors(colors: &[Option<u32>]) -> String {
    let mut out = String::with_capacity(colors.len() * 2);
    for (i, c) in colors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match c {
            Some(c) => {
                use std::fmt::Write as _;
                let _ = write!(out, "{c}");
            }
            None => out.push('-'),
        }
    }
    out
}

fn parse_colors(raw: &str) -> Result<Vec<Option<u32>>, String> {
    if raw.is_empty() {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|tok| match tok {
            "-" => Ok(None),
            _ => tok
                .parse::<u32>()
                .map(Some)
                .map_err(|_| format!("bad color token {tok:?}")),
        })
        .collect()
}

fn write_stats(w: &mut ObjectWriter, stats: &SolveStats) {
    w.u64("stats_sweeps", stats.sweeps)
        .u64("stats_classes_nonempty", stats.classes_nonempty)
        .u64("stats_classes_total", stats.classes_total)
        .u64("stats_space_reductions", stats.space_reductions)
        .u64("stats_assign_solves", stats.assign_solves)
        .u64("stats_slack_fallbacks", stats.slack_fallbacks)
        .u64("stats_base_cases", stats.base_cases)
        .f64("stats_eq2_worst_ratio", stats.eq2_worst_ratio)
        .u64("stats_max_depth_seen", u64::from(stats.max_depth_seen))
        .u64("stats_messages", stats.messages);
}

fn parse_stats(fields: &Fields) -> Result<SolveStats, String> {
    Ok(SolveStats {
        sweeps: fields.u64("stats_sweeps")?,
        classes_nonempty: fields.u64("stats_classes_nonempty")?,
        classes_total: fields.u64("stats_classes_total")?,
        space_reductions: fields.u64("stats_space_reductions")?,
        assign_solves: fields.u64("stats_assign_solves")?,
        slack_fallbacks: fields.u64("stats_slack_fallbacks")?,
        base_cases: fields.u64("stats_base_cases")?,
        eq2_worst_ratio: fields.f64("stats_eq2_worst_ratio")?,
        max_depth_seen: parse_u32(fields, "stats_max_depth_seen")?,
        messages: fields.u64("stats_messages")?,
    })
}

fn parse_u32(fields: &Fields, key: &str) -> Result<u32, String> {
    u32::try_from(fields.u64(key)?).map_err(|_| format!("field {key:?} out of u32 range"))
}

fn expect_kind(fields: &Fields, kind: &str) -> Result<(), String> {
    let got = fields.str("kind")?;
    if got == kind {
        Ok(())
    } else {
        Err(format!("expected kind {kind:?}, got {got:?}"))
    }
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_two_delta_minus_one, SolverConfig};
    use deco_graph::generators;
    use deco_runtime::Runtime;

    fn sample_report() -> RunReport {
        let g = generators::random_regular(24, 4, 9);
        let ids: Vec<u64> = (1..=24).collect();
        solve_two_delta_minus_one(&g, &ids, SolverConfig::default(), &Runtime::serial()).unwrap()
    }

    #[test]
    fn run_report_line_round_trips() {
        let report = sample_report();
        let line = RunReportLine::from_report(&report);
        let encoded = line.encode();
        assert!(encoded.starts_with("{\"kind\":\"run_report\""));
        let parsed = RunReportLine::parse(&encoded).unwrap();
        assert_eq!(parsed, line);
        assert_eq!(parsed.coloring().as_slice(), report.colors.as_slice());
        assert_eq!(parsed.rounds, parsed.x_rounds + parsed.cost_rounds);
        // Re-encoding the parsed line is byte-identical: one canonical
        // encoding per report.
        assert_eq!(parsed.encode(), encoded);
    }

    #[test]
    fn run_report_line_keeps_uncolored_edges() {
        let report = sample_report();
        let mut line = RunReportLine::from_report(&report);
        line.colors[3] = None;
        let parsed = RunReportLine::parse(&line.encode()).unwrap();
        assert_eq!(parsed.colors[3], None);
        assert_eq!(parsed, line);
    }

    #[test]
    fn update_report_line_round_trips_losslessly() {
        let reports = [
            UpdateReport {
                update: EdgeUpdate::insert(3u32, 7u32),
                recolored: 1,
                palette_max: 5,
                palette_bound: 7,
                escalated: false,
                messages: 12,
                wall_time: Duration::from_nanos(987_654_321),
            },
            UpdateReport {
                update: EdgeUpdate::remove(0u32, 1u32),
                recolored: 0,
                palette_max: 3,
                palette_bound: 3,
                escalated: true,
                messages: 0,
                wall_time: Duration::ZERO,
            },
        ];
        for report in reports {
            let line = UpdateReportLine::from_report(&report);
            let parsed = UpdateReportLine::parse(&line.encode()).unwrap();
            assert_eq!(parsed, line);
            assert_eq!(parsed.to_report(), report);
        }
    }

    #[test]
    fn solve_errors_round_trip_exactly() {
        let errors = [
            SolveError::DepthExceeded { depth: 9, limit: 8 },
            SolveError::ShardFailed {
                shard: 2,
                cause: ShardFailure::Timeout { budget_ms: 5000 },
            },
            SolveError::ShardFailed {
                shard: 0,
                cause: ShardFailure::Disconnected,
            },
            SolveError::ShardFailed {
                shard: 3,
                cause: ShardFailure::Malformed,
            },
        ];
        for err in errors {
            let line = encode_solve_error(&err);
            assert_eq!(parse_solve_error(&line).unwrap(), err, "{line}");
        }
    }

    #[test]
    fn malformed_lines_are_named_errors() {
        type Parser = fn(&str) -> Option<String>;
        let run: Parser = |l| RunReportLine::parse(l).err();
        let upd: Parser = |l| UpdateReportLine::parse(l).err();
        let sol: Parser = |l| parse_solve_error(l).err();
        for (parse, line, needle) in [
            (run, "nonsense", "expected a JSON object"),
            (run, "{\"kind\":\"other\"}", "expected kind"),
            (run, "{\"kind\":\"run_report\"}", "missing field"),
            (
                upd,
                "{\"kind\":\"update_report\",\"op\":\"warp\",\"u\":0,\"v\":1}",
                "unknown update op",
            ),
            (
                sol,
                "{\"kind\":\"solve_error\",\"error\":\"gremlins\"}",
                "unknown solve error",
            ),
            (
                sol,
                "{\"kind\":\"solve_error\",\"error\":\"shard_failed\",\"shard\":1,\"cause\":\"cosmic\"}",
                "unknown shard failure cause",
            ),
        ] {
            let err = parse(line).expect("parse must fail");
            assert!(err.contains(needle), "line {line:?}: {err}");
        }
    }

    #[test]
    fn colors_codec_handles_empty_and_rejects_garbage() {
        assert_eq!(encode_colors(&[]), "");
        assert_eq!(parse_colors("").unwrap(), Vec::<Option<u32>>::new());
        assert_eq!(parse_colors("1,-,0").unwrap(), vec![Some(1), None, Some(0)]);
        assert!(parse_colors("1,x").unwrap_err().contains("bad color"));
    }
}
