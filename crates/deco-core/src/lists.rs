//! Color lists and color-space partitions.
//!
//! Lists are sorted, deduplicated color vectors over a palette `{0, …, C−1}`.
//! A [`SubspacePartition`] splits the palette into `q ≤ 2p` contiguous
//! blocks of size ≤ `C/p` (the partition Lemma 4.3 requires; the paper notes
//! such a partition always exists). [`level_of`] computes the "level" `ℓ(e)`
//! of a list relative to a partition, the quantity at the heart of
//! Lemma 4.4.

use deco_graph::coloring::Color;
use deco_local::math::{floor_log2, harmonic};
use std::fmt;

/// A sorted, duplicate-free list of candidate colors for one edge.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ColorList {
    colors: Vec<Color>,
}

impl ColorList {
    /// Builds a list from arbitrary colors (sorted and deduplicated).
    pub fn new(mut colors: Vec<Color>) -> ColorList {
        colors.sort_unstable();
        colors.dedup();
        ColorList { colors }
    }

    /// The contiguous list `{lo, …, hi−1}`.
    pub fn range(lo: Color, hi: Color) -> ColorList {
        ColorList {
            colors: (lo..hi).collect(),
        }
    }

    /// Number of colors in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Whether `c` is in the list.
    pub fn contains(&self, c: Color) -> bool {
        self.colors.binary_search(&c).is_ok()
    }

    /// Iterates over the colors in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Color> + '_ {
        self.colors.iter().copied()
    }

    /// The smallest color, if any.
    pub fn first(&self) -> Option<Color> {
        self.colors.first().copied()
    }

    /// Removes `c` if present; returns whether it was present.
    pub fn remove(&mut self, c: Color) -> bool {
        match self.colors.binary_search(&c) {
            Ok(i) => {
                self.colors.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Removes every color in `forbidden` (need not be sorted).
    pub fn remove_all(&mut self, forbidden: &[Color]) {
        if forbidden.is_empty() {
            return;
        }
        let mut f = forbidden.to_vec();
        f.sort_unstable();
        self.colors.retain(|c| f.binary_search(c).is_err());
    }

    /// Number of colors in `self ∩ [lo, hi)` (O(log n) via binary search —
    /// the partition blocks are contiguous, so intersections are ranges).
    pub fn count_in_range(&self, lo: Color, hi: Color) -> usize {
        let a = self.colors.partition_point(|&c| c < lo);
        let b = self.colors.partition_point(|&c| c < hi);
        b - a
    }

    /// The sub-list `self ∩ [lo, hi)`.
    pub fn restrict_to_range(&self, lo: Color, hi: Color) -> ColorList {
        let a = self.colors.partition_point(|&c| c < lo);
        let b = self.colors.partition_point(|&c| c < hi);
        ColorList {
            colors: self.colors[a..b].to_vec(),
        }
    }

    /// The raw sorted slice.
    pub fn as_slice(&self) -> &[Color] {
        &self.colors
    }

    /// Consumes the list, returning the sorted color vector.
    pub fn into_vec(self) -> Vec<Color> {
        self.colors
    }
}

impl FromIterator<Color> for ColorList {
    fn from_iter<I: IntoIterator<Item = Color>>(iter: I) -> Self {
        ColorList::new(iter.into_iter().collect())
    }
}

impl fmt::Display for ColorList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.colors.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

/// A partition of the palette `{0, …, C−1}` into `q` contiguous blocks
/// `C_1, …, C_q` of uniform size (the last may be smaller).
///
/// Constructed by [`SubspacePartition::new`] to satisfy Lemma 4.3's
/// requirements: `q ≤ 2p` blocks, each of size at most `C/p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubspacePartition {
    palette: u32,
    block: u32,
    q: u32,
}

impl SubspacePartition {
    /// Partitions a palette of size `palette` for parameter `p ∈ [2, palette]`.
    ///
    /// Block size is `max(1, ⌊C/p⌋)`, which yields `q ≤ 2p` blocks of size
    /// ≤ `C/p` (for `p` dividing `C` this is exactly `p` blocks of size
    /// `C/p`, matching the paper's Figure 5 example).
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ p ≤ palette`.
    pub fn new(palette: u32, p: u32) -> SubspacePartition {
        assert!(p >= 2, "p must be at least 2");
        assert!(p <= palette, "p must be at most the palette size");
        let block = (palette / p).max(1);
        let q = palette.div_ceil(block);
        debug_assert!(q <= 2 * p, "q={q} exceeds 2p={}", 2 * p);
        debug_assert!(block as u64 * p as u64 <= palette as u64 || block == 1);
        SubspacePartition { palette, block, q }
    }

    /// Number of blocks `q` (`≤ 2p`).
    #[inline]
    pub fn num_subspaces(&self) -> u32 {
        self.q
    }

    /// Palette size `C`.
    #[inline]
    pub fn palette(&self) -> u32 {
        self.palette
    }

    /// Uniform block size (last block may be smaller).
    #[inline]
    pub fn block_size(&self) -> u32 {
        self.block
    }

    /// The color range `[lo, hi)` of block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ q`.
    pub fn range(&self, i: u32) -> (Color, Color) {
        assert!(i < self.q, "subspace index out of range");
        let lo = i * self.block;
        let hi = ((i + 1) * self.block).min(self.palette);
        (lo, hi)
    }

    /// The block containing color `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the palette.
    pub fn subspace_of(&self, c: Color) -> u32 {
        assert!(c < self.palette, "color outside palette");
        c / self.block
    }

    /// `|list ∩ C_i|` for every block `i`, in one pass.
    pub fn intersection_sizes(&self, list: &ColorList) -> Vec<usize> {
        let mut sizes = vec![0usize; self.q as usize];
        for c in list.iter() {
            sizes[self.subspace_of(c) as usize] += 1;
        }
        sizes
    }
}

/// Outcome of the Lemma 4.4 analysis for one list.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelInfo {
    /// The level `ℓ(e)`: the largest `ℓ` such that at least `2^ℓ` blocks
    /// have intersection ≥ `|L|/(2^{ℓ+1}·H_q)`.
    pub level: u32,
    /// Indices of blocks meeting the level-`ℓ` threshold, sorted by
    /// decreasing intersection size.
    pub indices: Vec<u32>,
    /// The threshold `|L|/(2^{ℓ+1}·H_q)` used at this level.
    pub threshold: f64,
}

/// Computes the level `ℓ(e)` of a nonempty list relative to a partition.
///
/// Lemma 4.4 guarantees an integer `k` with `k` blocks of intersection
/// ≥ `|L|/(k·H_q)`; taking `ℓ = ⌊log₂ k⌋` always yields a valid level, so
/// the maximum over valid levels exists.
///
/// # Panics
///
/// Panics if `list` is empty.
pub fn level_of(list: &ColorList, partition: &SubspacePartition) -> LevelInfo {
    assert!(!list.is_empty(), "level is undefined for an empty list");
    let q = partition.num_subspaces() as u64;
    let hq = harmonic(q);
    let len = list.len() as f64;
    let sizes = partition.intersection_sizes(list);
    // Blocks sorted by decreasing intersection.
    let mut order: Vec<u32> = (0..partition.num_subspaces()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(sizes[i as usize]));

    let max_level = floor_log2(q);
    for level in (0..=max_level).rev() {
        let threshold = len / (2f64.powi(level as i32 + 1) * hq);
        let need = 1usize << level;
        let have = order
            .iter()
            .take_while(|&&i| sizes[i as usize] as f64 >= threshold)
            .count();
        if have >= need {
            return LevelInfo {
                level,
                indices: order.into_iter().take(have).collect(),
                threshold,
            };
        }
    }
    unreachable!("Lemma 4.4 guarantees some level is valid");
}

/// Direct statement of Lemma 4.4: the largest `k` such that `k` blocks all
/// have intersection ≥ `|L|/(k·H_q)`; returns `(k, indices)`.
///
/// # Panics
///
/// Panics if `list` is empty.
pub fn lemma44_witness(list: &ColorList, partition: &SubspacePartition) -> (usize, Vec<u32>) {
    assert!(!list.is_empty(), "witness is undefined for an empty list");
    let q = partition.num_subspaces() as u64;
    let hq = harmonic(q);
    let len = list.len() as f64;
    let sizes = partition.intersection_sizes(list);
    let mut order: Vec<u32> = (0..partition.num_subspaces()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(sizes[i as usize]));
    let mut best: Option<usize> = None;
    for k in 1..=order.len() {
        let kth = sizes[order[k - 1] as usize] as f64;
        if kth >= len / (k as f64 * hq) {
            best = Some(k);
        }
    }
    let k = best.expect("Lemma 4.4: some k is always valid");
    (k, order.into_iter().take(k).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_basics() {
        let mut l = ColorList::new(vec![5, 1, 3, 3, 1]);
        assert_eq!(l.as_slice(), &[1, 3, 5]);
        assert_eq!(l.len(), 3);
        assert!(l.contains(3));
        assert!(!l.contains(2));
        assert!(l.remove(3));
        assert!(!l.remove(3));
        assert_eq!(l.len(), 2);
        l.remove_all(&[5, 9]);
        assert_eq!(l.as_slice(), &[1]);
        assert_eq!(l.first(), Some(1));
        assert_eq!(l.to_string(), "{1}");
    }

    #[test]
    fn range_queries() {
        let l = ColorList::range(0, 10);
        assert_eq!(l.count_in_range(3, 7), 4);
        assert_eq!(l.restrict_to_range(8, 20).as_slice(), &[8, 9]);
        assert_eq!(l.count_in_range(10, 20), 0);
    }

    #[test]
    fn partition_matches_figure5_shape() {
        // C = 20, p = 4 → exactly 4 blocks of 5, as in the paper's Figure 5.
        let part = SubspacePartition::new(20, 4);
        assert_eq!(part.num_subspaces(), 4);
        assert_eq!(part.block_size(), 5);
        assert_eq!(part.range(0), (0, 5));
        assert_eq!(part.range(3), (15, 20));
        assert_eq!(part.subspace_of(0), 0);
        assert_eq!(part.subspace_of(19), 3);
    }

    #[test]
    fn partition_respects_lemma43_bounds() {
        for (c, p) in [(100u32, 7u32), (17, 4), (5, 2), (1000, 31), (8, 8), (9, 4)] {
            let part = SubspacePartition::new(c, p);
            assert!(
                part.num_subspaces() <= 2 * p,
                "q too large for C={c}, p={p}"
            );
            for i in 0..part.num_subspaces() {
                let (lo, hi) = part.range(i);
                assert!(hi > lo, "empty block");
                assert!(
                    (hi - lo) as f64 <= c as f64 / p as f64 || hi - lo == 1,
                    "block too large for C={c}, p={p}"
                );
            }
            // Blocks tile the palette.
            let total: u32 = (0..part.num_subspaces())
                .map(|i| {
                    let (lo, hi) = part.range(i);
                    hi - lo
                })
                .sum();
            assert_eq!(total, c);
        }
    }

    #[test]
    fn figure5_worked_example() {
        // Figure 5: C = 20, p = 4, L_e = {1,2,5,6,7,12,17} (1-based in the
        // paper; 0-based here: {0,1,4,5,6,11,16}). |L| = 7.
        // Intersections: C1 = {0..5} → 3, C2 = {5..10} → 2, C3 = {10..15} → 1,
        // C4 = {15..20} → 1. The paper finds I = {1, 2} (k = 2) since
        // |C1∩L|, |C2∩L| ≥ 7/(2·H₄) = 1.68.
        let part = SubspacePartition::new(20, 4);
        let list = ColorList::new(vec![0, 1, 4, 5, 6, 11, 16]);
        let (k, indices) = lemma44_witness(&list, &part);
        assert!(k >= 2, "paper's example has k = 2, got {k}");
        assert!(indices.contains(&0) && indices.contains(&1));
        // `level_of` picks the *largest* valid level; here even ℓ = 2 is
        // valid (all 4 blocks have intersection ≥ 7/(8·H₄) = 0.42, i.e. ≥ 1),
        // which only gives the assignment more freedom.
        let info = level_of(&list, &part);
        assert_eq!(info.level, 2);
        assert_eq!(info.indices.len(), 4);
        assert_eq!(info.indices[0], 0); // sorted by decreasing intersection
        assert_eq!(info.indices[1], 1);
    }

    #[test]
    fn level_indices_meet_threshold() {
        let part = SubspacePartition::new(64, 8);
        let list = ColorList::new((0..64).step_by(3).collect());
        let info = level_of(&list, &part);
        assert!(!info.indices.is_empty());
        assert!(info.indices.len() >= 1 << info.level);
        for &i in &info.indices {
            let (lo, hi) = part.range(i);
            assert!(list.count_in_range(lo, hi) as f64 >= info.threshold);
        }
    }

    #[test]
    fn uniform_list_gets_max_level() {
        // A list spread across all blocks: level should be ⌊log₂ q⌋.
        let part = SubspacePartition::new(64, 8);
        let list = ColorList::range(0, 64);
        let info = level_of(&list, &part);
        assert_eq!(info.level, floor_log2(u64::from(part.num_subspaces())));
    }

    #[test]
    fn concentrated_list_gets_low_level() {
        // All colors in one block: only 1 block has a large intersection.
        let part = SubspacePartition::new(64, 8);
        let list = ColorList::range(0, 8);
        let info = level_of(&list, &part);
        assert_eq!(info.level, 0);
        assert_eq!(info.indices[0], 0);
    }

    #[test]
    fn intersection_sizes_sum_to_list_len() {
        let part = SubspacePartition::new(30, 4);
        let list = ColorList::new(vec![0, 3, 7, 8, 15, 22, 29]);
        let sizes = part.intersection_sizes(&list);
        assert_eq!(sizes.iter().sum::<usize>(), list.len());
    }

    #[test]
    #[should_panic(expected = "p must be at least 2")]
    fn rejects_p_below_2() {
        let _ = SubspacePartition::new(10, 1);
    }

    #[test]
    #[should_panic(expected = "empty list")]
    fn level_rejects_empty_list() {
        let part = SubspacePartition::new(10, 2);
        let _ = level_of(&ColorList::default(), &part);
    }
}
