//! List edge coloring problem instances — the paper's `P(Δ̄, S, C)` family.
//!
//! An instance bundles a conflict graph with one [`ColorList`] per edge and
//! the palette size `C`. The *slack* of an edge is `|L_e| / deg(e)`; the
//! instance family `P(Δ̄, S, C)` requires `|L_e| > S·deg(e)` for every edge.
//! `S = 1` is the (deg(e)+1)-list edge coloring problem, the paper's main
//! object.

use crate::lists::ColorList;
use deco_graph::coloring::{Color, EdgeColoring};
use deco_graph::{EdgeId, Graph};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::fmt;

/// A list edge coloring instance: graph + per-edge lists + palette bound.
#[derive(Debug, Clone)]
pub struct ListInstance {
    graph: Graph,
    lists: Vec<ColorList>,
    palette: u32,
}

/// Why an instance failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// `lists` length differs from the edge count.
    WrongListCount {
        /// Number of lists supplied.
        lists: usize,
        /// Number of edges in the graph.
        edges: usize,
    },
    /// Some list contains a color outside the palette.
    ColorOutOfPalette {
        /// The offending edge.
        edge: EdgeId,
        /// The out-of-range color.
        color: Color,
    },
    /// Some list is too small for the requested slack.
    InsufficientSlack {
        /// The offending edge.
        edge: EdgeId,
        /// The list size found.
        list_len: usize,
        /// The minimum size required (`> slack · deg(e)`).
        required_exclusive: f64,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::WrongListCount { lists, edges } => {
                write!(f, "{lists} lists supplied for {edges} edges")
            }
            InstanceError::ColorOutOfPalette { edge, color } => {
                write!(f, "edge {edge} lists color {color} outside the palette")
            }
            InstanceError::InsufficientSlack {
                edge,
                list_len,
                required_exclusive,
            } => {
                write!(
                    f,
                    "edge {edge} has a list of {list_len} colors, needs more than \
                     {required_exclusive}"
                )
            }
        }
    }
}

impl std::error::Error for InstanceError {}

impl ListInstance {
    /// Builds an instance, validating palette membership and the `S = 1`
    /// ((deg+1)-list) slack requirement.
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError`] if the lists are malformed or too small.
    pub fn new(graph: Graph, lists: Vec<ColorList>, palette: u32) -> Result<Self, InstanceError> {
        if lists.len() != graph.num_edges() {
            return Err(InstanceError::WrongListCount {
                lists: lists.len(),
                edges: graph.num_edges(),
            });
        }
        let inst = ListInstance {
            graph,
            lists,
            palette,
        };
        inst.validate_palette()?;
        inst.validate_slack(1.0)?;
        Ok(inst)
    }

    /// Builds an instance without slack validation (palette membership is
    /// still the caller's responsibility; checked in debug builds).
    pub fn new_unchecked(graph: Graph, lists: Vec<ColorList>, palette: u32) -> Self {
        assert_eq!(lists.len(), graph.num_edges(), "one list per edge");
        let inst = ListInstance {
            graph,
            lists,
            palette,
        };
        debug_assert!(inst.validate_palette().is_ok());
        inst
    }

    /// The conflict graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The list of edge `e`.
    #[inline]
    pub fn list(&self, e: EdgeId) -> &ColorList {
        &self.lists[e.index()]
    }

    /// All lists, indexed by edge.
    #[inline]
    pub fn lists(&self) -> &[ColorList] {
        &self.lists
    }

    /// Mutable access to the list of edge `e` (for residual updates).
    #[inline]
    pub fn list_mut(&mut self, e: EdgeId) -> &mut ColorList {
        &mut self.lists[e.index()]
    }

    /// Palette size `C`; all list colors are `< C`.
    #[inline]
    pub fn palette(&self) -> u32 {
        self.palette
    }

    /// Maximum edge degree Δ̄ of the instance graph.
    pub fn max_edge_degree(&self) -> usize {
        self.graph.max_edge_degree()
    }

    /// Checks every list color is inside the palette.
    ///
    /// # Errors
    ///
    /// Returns the first [`InstanceError::ColorOutOfPalette`] found.
    pub fn validate_palette(&self) -> Result<(), InstanceError> {
        for e in self.graph.edges() {
            for c in self.lists[e.index()].iter() {
                if c >= self.palette {
                    return Err(InstanceError::ColorOutOfPalette { edge: e, color: c });
                }
            }
        }
        Ok(())
    }

    /// Checks the instance is in `P(Δ̄, slack, C)`: `|L_e| > slack · deg(e)`
    /// for every edge `e`.
    ///
    /// # Errors
    ///
    /// Returns the first [`InstanceError::InsufficientSlack`] found.
    pub fn validate_slack(&self, slack: f64) -> Result<(), InstanceError> {
        self.validate_list_count()?;
        for e in self.graph.edges() {
            let need = slack * self.graph.edge_degree(e) as f64;
            let len = self.lists[e.index()].len();
            if (len as f64) <= need {
                return Err(InstanceError::InsufficientSlack {
                    edge: e,
                    list_len: len,
                    required_exclusive: need,
                });
            }
        }
        Ok(())
    }

    fn validate_list_count(&self) -> Result<(), InstanceError> {
        if self.lists.len() != self.graph.num_edges() {
            return Err(InstanceError::WrongListCount {
                lists: self.lists.len(),
                edges: self.graph.num_edges(),
            });
        }
        Ok(())
    }

    /// The minimum slack over edges: `min_e |L_e| / deg(e)` (∞ if every edge
    /// has degree 0 or the graph is edgeless).
    pub fn min_slack(&self) -> f64 {
        self.graph
            .edges()
            .filter(|&e| self.graph.edge_degree(e) > 0)
            .map(|e| self.lists[e.index()].len() as f64 / self.graph.edge_degree(e) as f64)
            .fold(f64::INFINITY, f64::min)
    }

    /// Checks that `coloring` solves this instance: complete, proper, and
    /// every color taken from the edge's list.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn check_solution(&self, coloring: &EdgeColoring) -> Result<(), String> {
        deco_graph::coloring::check_edge_coloring(&self.graph, coloring)
            .map_err(|v| v.to_string())?;
        for e in self.graph.edges() {
            let c = coloring.get(e).expect("completeness checked above");
            if !self.lists[e.index()].contains(c) {
                return Err(format!("edge {e} colored {c}, not in its list"));
            }
        }
        Ok(())
    }
}

/// The classic `(2Δ−1)`-edge coloring instance: every edge gets the full
/// palette `{0, …, 2Δ−2}`. This is a `(deg(e)+1)`-list instance because
/// `deg(e) ≤ 2Δ−2`.
pub fn two_delta_minus_one(g: &Graph) -> ListInstance {
    let palette = (2 * g.max_degree()).saturating_sub(1).max(1) as u32;
    let lists = g.edges().map(|_| ColorList::range(0, palette)).collect();
    ListInstance::new(g.clone(), lists, palette).expect("full palette always has slack 1")
}

/// A random `(deg(e)+1)`-list instance: each edge independently draws
/// `deg(e)+1` distinct colors from `{0, …, palette−1}`.
///
/// # Panics
///
/// Panics if `palette ≤ Δ̄` (some edge could not fill its list).
pub fn random_deg_plus_one(g: &Graph, palette: u32, seed: u64) -> ListInstance {
    let dbar = g.max_edge_degree() as u32;
    assert!(palette > dbar, "palette {palette} must exceed Δ̄ = {dbar}");
    let mut rng = StdRng::seed_from_u64(seed);
    let lists = g
        .edges()
        .map(|e| {
            let need = g.edge_degree(e) + 1;
            let mut all: Vec<Color> = (0..palette).collect();
            all.shuffle(&mut rng);
            all.truncate(need);
            ColorList::new(all)
        })
        .collect();
    ListInstance::new(g.clone(), lists, palette).expect("deg+1 lists by construction")
}

/// A random instance with slack `s`: each edge draws
/// `⌊s·deg(e)⌋ + 1` distinct colors.
///
/// # Panics
///
/// Panics if the palette cannot accommodate the largest required list.
pub fn random_with_slack(g: &Graph, palette: u32, s: f64, seed: u64) -> ListInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let lists: Vec<ColorList> = g
        .edges()
        .map(|e| {
            let need = (s * g.edge_degree(e) as f64).floor() as usize + 1;
            assert!(
                need <= palette as usize,
                "palette {palette} too small for slack-{s} list of size {need}"
            );
            let mut all: Vec<Color> = (0..palette).collect();
            all.shuffle(&mut rng);
            all.truncate(need);
            ColorList::new(all)
        })
        .collect();
    let inst = ListInstance::new_unchecked(g.clone(), lists, palette);
    debug_assert!(inst.validate_slack(s).is_ok());
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    #[test]
    fn two_delta_instance_is_valid() {
        let g = generators::random_regular(20, 4, 1);
        let inst = two_delta_minus_one(&g);
        assert_eq!(inst.palette(), 7);
        assert!(inst.validate_slack(1.0).is_ok());
        assert!(inst.min_slack() >= 7.0 / 6.0 - 1e-9);
    }

    #[test]
    fn random_instance_has_deg_plus_one_lists() {
        let g = generators::gnp(30, 0.2, 2);
        let inst = random_deg_plus_one(&g, 2 * g.max_edge_degree() as u32 + 5, 3);
        for e in g.edges() {
            assert_eq!(inst.list(e).len(), g.edge_degree(e) + 1);
        }
        assert!(inst.validate_slack(1.0).is_ok());
    }

    #[test]
    fn slack_validation_catches_small_lists() {
        let g = generators::path(3); // two adjacent edges, deg = 1 each
        let lists = vec![ColorList::new(vec![0]), ColorList::new(vec![1, 2])];
        let err = ListInstance::new(g, lists, 3).unwrap_err();
        assert!(matches!(err, InstanceError::InsufficientSlack { .. }));
    }

    #[test]
    fn palette_validation_catches_stray_colors() {
        let g = generators::path(3);
        let lists = vec![ColorList::new(vec![0, 99]), ColorList::new(vec![1, 2])];
        let err = ListInstance::new(g, lists, 3).unwrap_err();
        assert!(matches!(
            err,
            InstanceError::ColorOutOfPalette { color: 99, .. }
        ));
    }

    #[test]
    fn check_solution_accepts_and_rejects() {
        let g = generators::path(3);
        let inst = two_delta_minus_one(&g);
        let good = EdgeColoring::from_complete(vec![0, 1]);
        assert!(inst.check_solution(&good).is_ok());
        let improper = EdgeColoring::from_complete(vec![0, 0]);
        assert!(inst.check_solution(&improper).is_err());
        let incomplete = EdgeColoring::uncolored(2);
        assert!(inst.check_solution(&incomplete).is_err());
    }

    #[test]
    fn check_solution_rejects_off_list_colors() {
        let g = generators::path(3);
        let lists = vec![ColorList::new(vec![0, 1]), ColorList::new(vec![2, 3])];
        let inst = ListInstance::new(g, lists, 4).unwrap();
        let off_list = EdgeColoring::from_complete(vec![0, 1]); // 1 not in list of e1
        assert!(inst.check_solution(&off_list).is_err());
    }

    #[test]
    fn slack_instances() {
        let g = generators::random_regular(16, 3, 5);
        let inst = random_with_slack(&g, 60, 3.0, 7);
        assert!(inst.validate_slack(3.0).is_ok());
        assert!(inst.min_slack() > 3.0);
    }

    #[test]
    fn min_slack_of_edgeless_graph_is_infinite() {
        let inst = two_delta_minus_one(&Graph::empty(4));
        assert!(inst.min_slack().is_infinite());
    }
}
